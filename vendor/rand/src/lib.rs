//! Vendored stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_range` and `Rng::random_bool`.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched; this crate keeps the workspace buildable with
//! identical call sites. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is exactly what the
//! reproducible circuit generators and vector sets need. It makes no
//! cryptographic claims.

#![forbid(unsafe_code)]

/// Types samplable by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.uniform_u64(span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.uniform_u64(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit source every other method derives from.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, span)` by rejection sampling (no modulo bias).
    fn uniform_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// A uniformly distributed value of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let ones = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&ones), "{ones}");
    }
}
