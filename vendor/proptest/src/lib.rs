//! Vendored stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no network access to crates.io, so the
//! real `proptest` cannot be fetched; this crate keeps the property tests
//! runnable with identical call sites.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs as-is;
//! * **deterministic seeding** — every test function runs the same case
//!   sequence on every invocation (good for CI reproducibility);
//! * regex string strategies support the operators actually used here
//!   (literals, escapes, classes, groups, alternation, `* + ?` and
//!   `{m,n}` repetition, and the `\PC` "printable" class).
//!
//! Supported surface: the [`proptest!`] macro with `#![proptest_config]`,
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! [`prop_oneof!`], [`Strategy`] with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, `&str` regex strategies,
//! [`collection::vec`] and [`any`].

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// Everything a property test typically imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case (does not count against `cases`) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// A strategy choosing uniformly among the listed sub-strategies (which
/// must share a value type; each arm is boxed).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property_test(
                    &config,
                    stringify!($name),
                    |runner: &mut $crate::TestRunner| {
                        $(let $arg = $crate::Strategy::new_value(&($strat), runner);)+
                        let inputs = {
                            let mut s = String::new();
                            $(
                                s.push_str(stringify!($arg));
                                s.push_str(" = ");
                                s.push_str(&format!("{:?}", &$arg));
                                s.push_str("; ");
                            )+
                            s
                        };
                        let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                        (outcome, inputs)
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Driver behind [`proptest!`]; runs cases until `config.cases` accepted
/// inputs have passed or a case fails.
pub fn run_property_test<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRunner) -> (Result<(), TestCaseError>, String),
{
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(10).max(config.cases);
    while accepted < config.cases && attempts < max_attempts {
        let mut runner = TestRunner::for_case(name, attempts);
        attempts += 1;
        let (outcome, inputs) = case(&mut runner);
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property test `{name}` failed at case {attempts}:\n  {msg}\n  inputs: {inputs}"
                );
            }
        }
    }
}
