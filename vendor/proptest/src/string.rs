//! String generation from a regex-like pattern.
//!
//! Supports the operator subset the workspace's tests use: literal
//! characters, `\`-escaped literals, character classes `[a-z 0-9_]`
//! (ranges and literal members), groups `( ... )` with alternation `|`,
//! the quantifiers `*`, `+`, `?` and `{m}` / `{m,}` / `{m,n}`, and the
//! Unicode-property escapes `\PC` (generated as printable ASCII) and
//! `\pL` (generated as ASCII letters). Unbounded quantifiers draw a
//! length in `0..=8` (`+`: `1..=8`).

use crate::test_runner::TestRunner;

#[derive(Clone, Debug)]
enum Node {
    /// A sequence of alternatives; generation picks one uniformly.
    Alt(Vec<Vec<Node>>),
    /// One literal character.
    Literal(char),
    /// A set of candidate characters.
    Class(Vec<char>),
    /// A repeated node with an inclusive repetition range.
    Repeat(Box<Node>, u32, u32),
}

const UNBOUNDED_MAX: u32 = 8;

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax the subset does not cover (a test-authoring error).
pub fn generate_from_pattern(pattern: &str, runner: &mut TestRunner) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let node = parse_alternation(&chars, &mut pos);
    assert!(
        pos == chars.len(),
        "unparsed trailing pattern input at {pos} in {pattern:?}"
    );
    let mut out = String::new();
    generate(&node, runner, &mut out);
    out
}

fn generate(node: &Node, runner: &mut TestRunner, out: &mut String) {
    match node {
        Node::Alt(arms) => {
            let arm = &arms[runner.index(arms.len())];
            for n in arm {
                generate(n, runner, out);
            }
        }
        Node::Literal(c) => out.push(*c),
        Node::Class(set) => out.push(set[runner.index(set.len())]),
        Node::Repeat(inner, lo, hi) => {
            let n = *lo as u64 + runner.below((*hi - *lo + 1) as u64);
            for _ in 0..n {
                generate(inner, runner, out);
            }
        }
    }
}

fn parse_alternation(chars: &[char], pos: &mut usize) -> Node {
    let mut arms = vec![parse_concat(chars, pos)];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        arms.push(parse_concat(chars, pos));
    }
    Node::Alt(arms)
}

fn parse_concat(chars: &[char], pos: &mut usize) -> Vec<Node> {
    let mut seq = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        let atom = parse_atom(chars, pos);
        seq.push(parse_quantifier(atom, chars, pos));
    }
    seq
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alternation(chars, pos);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unclosed group in pattern"
            );
            *pos += 1;
            inner
        }
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '\\' => {
            *pos += 1;
            parse_escape(chars, pos)
        }
        '.' => {
            *pos += 1;
            Node::Class(printable_ascii())
        }
        c => {
            *pos += 1;
            Node::Literal(c)
        }
    }
}

fn parse_quantifier(atom: Node, chars: &[char], pos: &mut usize) -> Node {
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, UNBOUNDED_MAX)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, UNBOUNDED_MAX)
        }
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        '{' => {
            *pos += 1;
            let lo = parse_number(chars, pos);
            let hi = if chars[*pos] == ',' {
                *pos += 1;
                if chars[*pos] == '}' {
                    lo + UNBOUNDED_MAX
                } else {
                    parse_number(chars, pos)
                }
            } else {
                lo
            };
            assert!(chars[*pos] == '}', "malformed {{m,n}} quantifier");
            *pos += 1;
            Node::Repeat(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    while chars[*pos].is_ascii_digit() {
        *pos += 1;
    }
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .expect("number in quantifier")
}

fn parse_class(chars: &[char], pos: &mut usize) -> Node {
    let mut set = Vec::new();
    let negated = chars[*pos] == '^';
    if negated {
        *pos += 1;
    }
    while chars[*pos] != ']' {
        let c = if chars[*pos] == '\\' {
            *pos += 1;
            let e = chars[*pos];
            *pos += 1;
            e
        } else {
            let c = chars[*pos];
            *pos += 1;
            c
        };
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            *pos += 1;
            let end = chars[*pos];
            *pos += 1;
            for v in c as u32..=end as u32 {
                if let Some(ch) = char::from_u32(v) {
                    set.push(ch);
                }
            }
        } else {
            set.push(c);
        }
    }
    *pos += 1;
    if negated {
        let excluded = set;
        let set: Vec<char> = printable_ascii()
            .into_iter()
            .filter(|c| !excluded.contains(c))
            .collect();
        assert!(!set.is_empty(), "negated class excludes everything");
        Node::Class(set)
    } else {
        assert!(!set.is_empty(), "empty character class");
        Node::Class(set)
    }
}

fn parse_escape(chars: &[char], pos: &mut usize) -> Node {
    let c = chars[*pos];
    *pos += 1;
    match c {
        // Unicode property classes: generated from representative ASCII.
        'P' | 'p' => {
            let name = if chars[*pos] == '{' {
                *pos += 1;
                let start = *pos;
                while chars[*pos] != '}' {
                    *pos += 1;
                }
                let n: String = chars[start..*pos].iter().collect();
                *pos += 1;
                n
            } else {
                let n = chars[*pos].to_string();
                *pos += 1;
                n
            };
            match (c, name.as_str()) {
                // \PC: "not Other" — anything printable.
                ('P', "C") => Node::Class(printable_ascii()),
                ('p', "L") => Node::Class(('a'..='z').chain('A'..='Z').collect()),
                _ => Node::Class(printable_ascii()),
            }
        }
        'n' => Node::Literal('\n'),
        't' => Node::Literal('\t'),
        'r' => Node::Literal('\r'),
        'd' => Node::Class(('0'..='9').collect()),
        'w' => Node::Class(
            ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain(std::iter::once('_'))
                .collect(),
        ),
        's' => Node::Class(vec![' ', '\t', '\n']),
        other => Node::Literal(other),
    }
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7F).map(char::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, case: u32) -> String {
        let mut r = TestRunner::for_case("string-gen", case);
        generate_from_pattern(pattern, &mut r)
    }

    #[test]
    fn literals_and_escapes() {
        assert_eq!(gen("abc", 0), "abc");
        assert_eq!(gen("INPUT\\(x\\)", 0), "INPUT(x)");
        assert_eq!(gen("", 0), "");
    }

    #[test]
    fn classes_and_counted_repeats() {
        for case in 0..200 {
            let s = gen("[a-z]{1,3}", case);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn alternation_groups_and_optionals() {
        for case in 0..200 {
            let s = gen("(AND|OR|NOT)\\([a-z](, [a-z])?\\)", case);
            assert!(
                s.starts_with("AND(") || s.starts_with("OR(") || s.starts_with("NOT("),
                "{s:?}"
            );
            assert!(s.ends_with(')'));
        }
    }

    #[test]
    fn star_and_property_class() {
        for case in 0..200 {
            let s = gen("\\PC*", case);
            assert!(s.len() <= UNBOUNDED_MAX as usize);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }
}
