//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + runner.below(span) as usize;
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let s = vec(0u64..10, 2..5);
        let mut r = TestRunner::for_case("vec", 0);
        for _ in 0..500 {
            let v = s.new_value(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }
}
