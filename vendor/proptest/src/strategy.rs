//! The [`Strategy`] trait and the combinators used by this workspace's
//! property tests. No shrinking: a strategy is just a deterministic
//! function from runner state to a value.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::string::generate_from_pattern;
use crate::test_runner::TestRunner;

/// A source of generated values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one layer of branches. `depth` bounds
    /// the nesting; `_desired_size` and `_expected_branch_size` are
    /// accepted for source compatibility with real proptest.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            let leaf = leaf.clone();
            // Lean towards leaves as generation gets deeper so expression
            // sizes stay bounded even without proptest's size accounting.
            current = BoxedStrategy::from_fn(move |runner: &mut TestRunner| {
                let take_leaf = runner.depth >= depth || runner.chance(0.25);
                if take_leaf {
                    leaf.new_value(runner)
                } else {
                    runner.depth += 1;
                    let v = branch.new_value(runner);
                    runner.depth -= 1;
                    v
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |runner: &mut TestRunner| self.new_value(runner))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<V> {
    gen: Rc<dyn Fn(&mut TestRunner) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<V> BoxedStrategy<V> {
    /// Wraps a generation closure.
    pub fn from_fn(f: impl Fn(&mut TestRunner) -> V + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, runner: &mut TestRunner) -> V {
        (self.gen)(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Uniform choice among boxed sub-strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds the union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, runner: &mut TestRunner) -> V {
        let i = runner.index(self.arms.len());
        self.arms[i].new_value(runner)
    }
}

/// Constant strategy (`Just`), for completeness.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn new_value(&self, _runner: &mut TestRunner) -> V {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + runner.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return runner.next_u64() as $t;
                }
                (start as i128 + runner.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` strategies generate strings matching the pattern as a regex
/// (the operator subset documented in [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        generate_from_pattern(self, runner)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Full-domain generation for primitives (the `any::<T>()` entry point).
pub trait ArbitraryValue: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        TestRunner::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = runner();
        for _ in 0..1_000 {
            let v = (1u64..5).new_value(&mut r);
            assert!((1..5).contains(&v));
            let (a, b) = ((0u32..3), (10usize..12)).new_value(&mut r);
            assert!(a < 3 && (10..12).contains(&b));
        }
    }

    #[test]
    fn map_and_union() {
        let mut r = runner();
        let s = crate::prop_oneof![
            (0u32..5).prop_map(|v| v * 10),
            (0u32..5).prop_map(|v| v + 100),
        ];
        for _ in 0..100 {
            let v = s.new_value(&mut r);
            assert!(v % 10 == 0 && v < 50 || (100..105).contains(&v), "{v}");
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum T {
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn size(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let s = (0u32..4)
            .prop_map(T::Leaf)
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut r = runner();
        for _ in 0..200 {
            let t = s.new_value(&mut r);
            assert!(size(&t) <= 2usize.pow(6));
        }
    }
}
