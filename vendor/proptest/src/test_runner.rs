//! Test-case execution state: configuration, per-case RNG and the
//! error type `prop_assert!` and friends return.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test runs.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; failure persistence is not
    /// implemented (no `proptest-regressions` files are written).
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases, everything else default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the case (and the test) fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is discarded.
    Reject,
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-case generation state handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRunner {
    state: [u64; 4],
    /// Recursion guard used by `prop_recursive` strategies.
    pub(crate) depth: u32,
}

impl TestRunner {
    /// Deterministic runner for case number `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index, then
        // expanded through SplitMix64 into xoshiro256++ state.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRunner {
            state: [next(), next(), next(), next()],
            depth: 0,
        }
    }

    /// The raw 64-bit source (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, span)` (rejection sampling, no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty range");
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform `usize` index below `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic_per_name_and_case() {
        let mut a = TestRunner::for_case("t", 3);
        let mut b = TestRunner::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRunner::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRunner::for_case("below", 0);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
