//! Vendored stand-in for the subset of the `criterion` benchmarking API
//! this workspace uses. The build environment has no network access to
//! crates.io, so the real `criterion` cannot be fetched; this crate keeps
//! the `benches/` targets compiling and producing useful wall-clock
//! numbers with identical call sites.
//!
//! Differences from real criterion: no statistical analysis, no HTML
//! reports, no regression detection — each benchmark is timed over
//! `sample_size` samples and the per-iteration mean, minimum and maximum
//! are printed. When invoked with `--test` (as `cargo test --benches`
//! does) every benchmark body runs exactly once so the tier-1 test gate
//! stays fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one parameterized benchmark instance.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Samples recorded by `iter` (one duration per sample).
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, running it once per sample (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: Option<&str>, name: &str, samples: &[Duration], test_mode: bool) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if test_mode {
        println!("test {full} ... ok (ran once, --test mode)");
        return;
    }
    if samples.is_empty() {
        println!("{full:<40} no samples (closure never called iter?)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{full:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        report(None, &name, &b.samples, self.test_mode);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.effective_sample_size(),
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        report(
            Some(&self.name),
            &name,
            &b.samples,
            self.criterion.test_mode,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.into_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.effective_sample_size(),
            test_mode: self.criterion.test_mode,
        };
        f(&mut b, input);
        report(
            Some(&self.name),
            &name,
            &b.samples,
            self.criterion.test_mode,
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut runs = 0u32;
        c.bench_function("counter", |b| {
            b.iter(|| runs += 1);
        });
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion {
            sample_size: 50,
            test_mode: false,
        };
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, _| {
            b.iter(|| runs += 1);
        });
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 10,
            test_mode: true,
        };
        let mut runs = 0u32;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
