//! The campaign-level determinism and robustness guarantees, end to end:
//! byte-identical canonical reports across thread counts and across
//! kill-and-resume at *every* cut point, on generated-circuit campaigns.

use std::path::PathBuf;
use std::time::Duration;

use fires_jobs::{report, resume, run, CampaignSpec, Injection, RunnerConfig};
use proptest::prelude::*;

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fires-det-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("job.jsonl")
}

/// Runs `spec` to completion in one go and returns the canonical report
/// text.
fn uninterrupted(spec: &CampaignSpec, name: &str, threads: usize) -> String {
    let path = temp_journal(name);
    let summary = run(
        spec,
        &path,
        &RunnerConfig {
            threads,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(summary.complete());
    report(&path).unwrap().canonical_text()
}

#[test]
fn thread_count_does_not_change_the_report() {
    let spec = CampaignSpec::from_circuits("det", ["s27", "fig3", "s208_like"]);
    let serial = uninterrupted(&spec, "serial", 1);
    let threaded = uninterrupted(&spec, "threaded", 8);
    assert_eq!(serial, threaded);
    // And the serial report is itself reproducible.
    assert_eq!(serial, uninterrupted(&spec, "serial2", 1));
}

#[test]
fn kill_and_resume_matches_uninterrupted_at_every_cut() {
    let spec = CampaignSpec::from_circuits("cut", ["s27", "fig3"]);
    let baseline = uninterrupted(&spec, "cut-base", 1);
    // Total units is small (a handful of stems); cut at every point. A
    // real SIGKILL usually lands mid-append, so leave a torn record
    // fragment after every cut — resume must repair it, and the final
    // journal must read back clean.
    for cut in 0..8 {
        let path = temp_journal(&format!("cut-{cut}"));
        let first = run(
            &spec,
            &path,
            &RunnerConfig {
                max_units: Some(cut),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(first.executed, cut.min(first.executed + first.remaining));
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"kind\":\"unit\",\"task\":0,\"ste").unwrap();
        }
        let second = resume(&path, &RunnerConfig::default()).unwrap();
        assert!(second.complete());
        assert_eq!(second.skipped, first.executed);
        assert_eq!(report(&path).unwrap().canonical_text(), baseline);
    }
}

/// The deterministic face of a campaign's merged profiles: per-rule step
/// counts, unattributed steps and the frame-offset / blame-size
/// distributions. Apportioned nanos are timing and `DistCache` hit
/// counts depend on how workers shared their caches, so neither belongs
/// in an equality claim across schedules.
fn profile_fingerprint(report: &fires_jobs::CampaignReport) -> Vec<String> {
    use fires_obs::ALL_RULES;
    report
        .tasks
        .iter()
        .map(|t| {
            let p = t.profile.as_ref().expect("traced build journals profiles");
            let steps: Vec<String> = ALL_RULES
                .iter()
                .map(|&r| format!("{}={}", r.name(), p.steps(r)))
                .collect();
            format!(
                "{}: {} unattributed={} frames={} blames={}",
                t.name,
                steps.join(","),
                p.unattributed_steps(),
                p.frame_offsets().to_json().to_pretty(),
                p.blame_sizes().to_json().to_pretty(),
            )
        })
        .collect()
}

#[test]
fn kill_and_resume_preserves_the_merged_profile() {
    let spec = CampaignSpec::from_circuits("prof", ["s27", "fig3"]);
    let base_path = temp_journal("prof-base");
    run(&spec, &base_path, &RunnerConfig::default()).unwrap();
    let baseline = report(&base_path).unwrap();
    assert!(
        baseline.tasks[0]
            .profile
            .as_ref()
            .is_some_and(|p| p.total_steps() > 0),
        "uninterrupted run must record a nonempty profile"
    );
    let base_fp = profile_fingerprint(&baseline);
    // Kill after a few units (torn tail and all), resume on a different
    // thread count: the profiles merged out of the fragments must agree
    // with the uninterrupted run on every deterministic field.
    for cut in [1, 4] {
        let path = temp_journal(&format!("prof-cut-{cut}"));
        run(
            &spec,
            &path,
            &RunnerConfig {
                max_units: Some(cut),
                ..Default::default()
            },
        )
        .unwrap();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"{\"kind\":\"unit\",\"task\":0,\"ste").unwrap();
        }
        let second = resume(
            &path,
            &RunnerConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(second.complete());
        assert_eq!(profile_fingerprint(&report(&path).unwrap()), base_fp);
    }
}

#[test]
fn failures_then_clean_rerun_still_deterministic() {
    // A campaign with one panicked and one timed-out unit merges
    // deterministically too: the failed units are *counted*, and the
    // counts are part of the canonical form.
    fn inject(task: usize, stem: usize) -> Injection {
        match (task, stem) {
            (0, 1) => Injection::Panic,
            (1, 0) => Injection::Sleep(Duration::from_millis(50)),
            _ => Injection::Run,
        }
    }
    let spec = CampaignSpec::from_circuits("faulty", ["s27", "fig3"]);
    let rc = RunnerConfig {
        stem_deadline: Some(Duration::from_millis(10)),
        inject: Some(inject),
        ..Default::default()
    };
    let texts: Vec<String> = (0..2)
        .map(|i| {
            let path = temp_journal(&format!("faulty-{i}"));
            let summary = run(&spec, &path, &rc).unwrap();
            assert!(summary.complete());
            assert_eq!(summary.panicked, 1);
            assert_eq!(summary.timed_out, 1);
            report(&path).unwrap().canonical_text()
        })
        .collect();
    assert_eq!(texts[0], texts[1]);
    // The failure counts are visible in the canonical report.
    assert!(texts[0].contains("\"units_panicked\": 1"));
    assert!(texts[0].contains("\"units_timed_out\": 1"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// For any kill point and any pair of thread counts, interrupted +
    /// resumed produces the same canonical report bytes as an
    /// uninterrupted serial run.
    #[test]
    fn resumed_campaigns_merge_identically(
        cut in 0usize..6,
        threads_before in 1usize..4,
        threads_after in 1usize..4,
        case in 0u32..100,
    ) {
        let spec = CampaignSpec::from_circuits("prop", ["s27", "fig3"]);
        let baseline = uninterrupted(&spec, &format!("prop-base-{case}"), 1);
        let path = temp_journal(&format!("prop-{case}-{cut}-{threads_before}-{threads_after}"));
        run(
            &spec,
            &path,
            &RunnerConfig {
                threads: threads_before,
                max_units: Some(cut),
                ..Default::default()
            },
        )
        .unwrap();
        let second = resume(
            &path,
            &RunnerConfig {
                threads: threads_after,
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert!(second.complete());
        prop_assert_eq!(report(&path).unwrap().canonical_text(), baseline.clone());
    }
}
