//! End-to-end chaos testing through the public API: campaigns executed
//! under deterministic fault injection ([`ChaosPlan`]) — panics, journal
//! IO errors, delays, mid-run kills — must converge to the *byte
//! identical* canonical report of a fault-free run, as long as the
//! retry policy gives every unit a chance to eventually succeed.

use std::path::PathBuf;
use std::time::Duration;

use fires_jobs::{report, resume, run, CampaignSpec, ChaosPlan, RunnerConfig};

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fires-chaos-{}-{}", std::process::id(), tag));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campaign.jsonl");
    let _ = std::fs::remove_file(&path);
    path
}

fn spec() -> CampaignSpec {
    CampaignSpec::from_circuits("chaos", ["fig3", "s27"])
}

fn canonical_of(journal: &std::path::Path) -> String {
    report(journal).unwrap().canonical_text()
}

/// The fault-free baseline every chaos variant must reproduce.
fn baseline() -> String {
    let journal = temp_journal("baseline");
    let summary = run(&spec(), &journal, &RunnerConfig::default()).unwrap();
    assert!(summary.complete());
    canonical_of(&journal)
}

#[test]
fn chaos_run_converges_to_the_fault_free_report() {
    let baseline = baseline();
    let journal = temp_journal("full");
    let rc = RunnerConfig {
        threads: 2,
        retries: 8,
        backoff: Duration::from_millis(1),
        chaos: Some(
            ChaosPlan::new(0xDAC1996)
                .with_unit_panics(250)
                .with_journal_errors(200)
                .with_delays(150, 2),
        ),
        ..RunnerConfig::default()
    };
    let summary = run(&spec(), &journal, &rc).unwrap();
    assert!(
        summary.complete(),
        "chaos run did not complete: {summary:?}"
    );
    assert_eq!(summary.panicked, 0, "a unit exhausted its retries");
    assert!(summary.retried > 0, "plan injected no faults; raise rates");
    assert_eq!(canonical_of(&journal), baseline);
}

#[test]
fn killed_then_resumed_chaos_run_converges() {
    let baseline = baseline();
    let journal = temp_journal("resumed");
    let chaos = Some(
        ChaosPlan::new(0xF1FE)
            .with_unit_panics(300)
            .with_journal_errors(250),
    );
    let cut = RunnerConfig {
        max_units: Some(2), // deterministic stand-in for a mid-run kill
        retries: 8,
        backoff: Duration::from_millis(1),
        chaos,
        ..RunnerConfig::default()
    };
    let first = run(&spec(), &journal, &cut).unwrap();
    assert!(!first.complete());
    // The resume runs under a *different* chaos seed: convergence must
    // not depend on replaying the same fault schedule.
    let rc = RunnerConfig {
        retries: 8,
        backoff: Duration::from_millis(1),
        chaos: Some(
            ChaosPlan::new(0xBADC0FFE)
                .with_unit_panics(300)
                .with_journal_errors(250),
        ),
        ..RunnerConfig::default()
    };
    let second = resume(&journal, &rc).unwrap();
    assert!(second.complete(), "resume did not finish: {second:?}");
    assert_eq!(second.panicked, 0);
    assert_eq!(canonical_of(&journal), baseline);
}

#[test]
fn chaos_is_reproducible_run_to_run() {
    // Same seed, same spec, serial execution: the *observable degradation*
    // (how many retries happened) is identical, not just the end report.
    let mut summaries = Vec::new();
    for tag in ["repro-a", "repro-b"] {
        let journal = temp_journal(tag);
        let rc = RunnerConfig {
            retries: 8,
            backoff: Duration::from_millis(1),
            chaos: Some(ChaosPlan::new(42).with_unit_panics(400)),
            ..RunnerConfig::default()
        };
        summaries.push(run(&spec(), &journal, &rc).unwrap());
    }
    assert_eq!(summaries[0].retried, summaries[1].retried);
    assert_eq!(summaries[0].executed, summaries[1].executed);
}

#[test]
fn unretried_chaos_panics_degrade_but_never_abort() {
    // No retries: injected panics become quarantined units, the campaign
    // still completes and the report carries the damage honestly.
    let journal = temp_journal("quarantine");
    let rc = RunnerConfig {
        chaos: Some(ChaosPlan::new(7).with_unit_panics(500)),
        ..RunnerConfig::default()
    };
    let summary = run(&spec(), &journal, &rc).unwrap();
    assert!(summary.complete());
    assert!(summary.panicked > 0, "rate 500 permille injected nothing");
    let merged = report(&journal).unwrap();
    let panicked: usize = merged.tasks.iter().map(|t| t.units_panicked).sum();
    assert_eq!(panicked, summary.panicked);
    // Degraded reports are still deterministic and renderable.
    assert_eq!(canonical_of(&journal), merged.canonical_text());
    let _ = merged.render_table();
}
