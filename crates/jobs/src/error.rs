//! Error type of the campaign layer.

use std::fmt;

/// Anything that can go wrong while specifying, journaling or running a
/// campaign.
#[derive(Debug)]
#[non_exhaustive]
pub enum JobError {
    /// Filesystem trouble (journal create/append/read).
    Io {
        /// The path involved.
        path: std::path::PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A journal exists but cannot be interpreted (bad JSON mid-file,
    /// wrong schema version, missing header, ...).
    Journal {
        /// What was wrong.
        message: String,
    },
    /// A task names a circuit no generator knows.
    UnknownCircuit {
        /// The unresolvable name.
        name: String,
    },
    /// The campaign spec itself is unusable (no tasks, bad config, ...).
    Spec {
        /// What was wrong.
        message: String,
    },
    /// A resumed journal does not match the circuits this build generates
    /// (content hash or stem count changed), so its unit indices cannot
    /// be trusted.
    Mismatch {
        /// The offending task's circuit name.
        circuit: String,
        /// What differed.
        message: String,
    },
    /// Configuration rejected by `fires-core`.
    Core(fires_core::CoreError),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            JobError::Journal { message } => write!(f, "malformed journal: {message}"),
            JobError::UnknownCircuit { name } => {
                write!(f, "unknown circuit {name:?} (see `fires run --list`)")
            }
            JobError::Spec { message } => write!(f, "invalid campaign spec: {message}"),
            JobError::Mismatch { circuit, message } => {
                write!(
                    f,
                    "journal does not match this build for {circuit:?}: {message}"
                )
            }
            JobError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Io { source, .. } => Some(source),
            JobError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fires_core::CoreError> for JobError {
    fn from(e: fires_core::CoreError) -> Self {
        JobError::Core(e)
    }
}

impl JobError {
    pub(crate) fn io(path: impl Into<std::path::PathBuf>, source: std::io::Error) -> Self {
        JobError::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn journal(message: impl Into<String>) -> Self {
        JobError::Journal {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = JobError::UnknownCircuit {
            name: "s999".into(),
        };
        assert!(e.to_string().contains("s999"));
        let e = JobError::Mismatch {
            circuit: "s27".into(),
            message: "hash changed".into(),
        };
        assert!(e.to_string().contains("hash changed"));
    }
}
