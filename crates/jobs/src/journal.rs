//! The append-only on-disk campaign journal.
//!
//! One JSON document per line (JSONL). The first line is a header
//! carrying the schema version, the campaign spec and, per task, the
//! circuit's structural content hash and stem count — enough for a later
//! process to prove the journal still indexes the same work units. Every
//! following line is one completed work unit:
//!
//! ```json
//! {"kind":"header","schema":2,"spec":{...},"tasks":[{"circuit":"s27","hash":"93ab...","stems":9}]}
//! {"kind":"unit","task":0,"stem":3,"status":"ok","faults":[[12,1,0,0]],"marks":41,"frames":5,"retries":0,"seconds":0.002,"phases":[["implication",0.001]],"metrics":{...}}
//! {"kind":"event","seq":0,"task":0,"stem":4,"attempt":0,"what":"unit-retry","detail":"attempt panicked; caches rebuilt"}
//! {"kind":"unit","task":0,"stem":4,"status":"panic","faults":[],"marks":0,"frames":0,"retries":1,"seconds":0.001,"phases":[],"metrics":{...}}
//! ```
//!
//! `unit` records are **terminal**: one per `(task, stem)`, whatever its
//! outcome. `event` records narrate retries and degradations on the way
//! there — pure observability, ignored by the canonical merge.
//!
//! Units are journaled as **indices** into the task's canonical stem
//! order ([`Fires::stems`](fires_core::Fires::stems)); fault lines are
//! raw [`LineId`](fires_netlist::LineId) indices. Both are stable across
//! processes for a structurally identical circuit, which the header
//! hashes verify on resume.
//!
//! Every append is flushed before the runner considers the unit done, so
//! a crash loses at most the unit being written. A torn final line (the
//! crash landed mid-write: not complete JSON, no trailing newline) is
//! detected and dropped by [`read`] and physically removed by
//! [`Journal::append_to`] before a resume appends anything after it. A
//! line that *does* parse as complete JSON but is not a well-formed unit
//! record is corruption, not a tear — a hard error wherever it sits.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

use fires_core::{ExhaustionReason, IdentifiedFault};
use fires_netlist::{Fault, LineId, StuckValue};
use fires_obs::{Json, RuleProfile, RunMetrics};

use crate::error::JobError;
use crate::spec::{CampaignSpec, ResolvedTask};

/// Version of the journal layout. Bump on any change to the record
/// shapes *or* to anything they index into (the canonical stem order,
/// the content-hash recipe).
///
/// Schema 2 added the `exhausted` unit status, the `retries`/`reason`
/// unit fields, `event` records and the spec's `step_budget` override.
/// Schema 3 added periodic `progress` heartbeat records — pure
/// observability, ignored by the canonical merge — so a live `fires
/// watch` can report throughput and worker occupancy without guessing.
/// Schema-2 journals contain a strict subset of the schema-3 record
/// kinds, so [`read`] accepts both (see [`JOURNAL_SCHEMA_MIN`]); note a
/// schema-2 journal *resumed* by this build gains progress records and
/// is no longer readable by schema-2-only builds.
/// Schema 4 added the monotonic `seq` field on `event` records —
/// assigned by the [`Journal`] at append time and continued across
/// resumes — so interleaved retry events from concurrent workers can be
/// totally ordered on replay. Older journals' events read back with
/// `seq` 0 (see [`EventRecord::seq`]); a resumed older journal gains
/// sequenced events from 1 onward.
pub const JOURNAL_SCHEMA: u64 = 4;

/// Oldest journal schema [`read`] still accepts.
pub const JOURNAL_SCHEMA_MIN: u64 = 2;

/// Per-task identity facts stored in the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskFingerprint {
    /// Resolved circuit name.
    pub circuit: String,
    /// Structural content hash of the generated circuit.
    pub hash: u64,
    /// Number of fanout stems, i.e. work units, of this task.
    pub stems: usize,
}

/// The journal's first line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// The campaign spec, verbatim, so `fires resume <journal>` needs no
    /// other input.
    pub spec: CampaignSpec,
    /// One fingerprint per task, in spec order.
    pub tasks: Vec<TaskFingerprint>,
}

/// How a work unit ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitStatus {
    /// Completed normally; its faults are merged into the report.
    Ok,
    /// The stem's analysis panicked (after exhausting its retries, if
    /// any); recorded and skipped, the campaign carries on.
    Panic,
    /// The stem overran its wall-clock deadline.
    Timeout,
    /// The stem hit a [`Budget`](fires_core::Budget) limit: its partial
    /// fault sets are journaled for observability but are **non-final**
    /// and excluded from the merged redundancy claims.
    Exhausted,
}

impl UnitStatus {
    fn as_str(self) -> &'static str {
        match self {
            UnitStatus::Ok => "ok",
            UnitStatus::Panic => "panic",
            UnitStatus::Timeout => "timeout",
            UnitStatus::Exhausted => "exhausted",
        }
    }

    fn parse(s: &str) -> Option<UnitStatus> {
        match s {
            "ok" => Some(UnitStatus::Ok),
            "panic" => Some(UnitStatus::Panic),
            "timeout" => Some(UnitStatus::Timeout),
            "exhausted" => Some(UnitStatus::Exhausted),
            _ => None,
        }
    }
}

/// One journaled work unit: a (task, stem) pair and what it produced.
#[derive(Clone, Debug, PartialEq)]
pub struct UnitRecord {
    /// Index into the header's task list.
    pub task: usize,
    /// Index into the task's canonical stem order.
    pub stem: usize,
    /// Outcome.
    pub status: UnitStatus,
    /// Identified faults as `(line, stuck-at-one, c, frame)`. Empty
    /// unless `status` is `Ok` or `Exhausted`; for `Exhausted` units
    /// these are the *partial*, non-final fault sets — kept for
    /// observability, never merged into redundancy claims.
    pub faults: Vec<(u32, bool, u32, i32)>,
    /// Uncontrollability marks the stem's two processes derived.
    pub marks: u64,
    /// Frames spanned by the wider process.
    pub frames: u64,
    /// How many failed attempts preceded this terminal record (0 on the
    /// happy path). Excluded from the canonical report: a retried-then-ok
    /// unit must merge identically to a first-try-ok one.
    pub retries: u64,
    /// Which budget limit stopped the unit; `Some` exactly when `status`
    /// is `Exhausted`.
    pub reason: Option<ExhaustionReason>,
    /// Wall-clock seconds this unit took (observability only; excluded
    /// from the canonical report).
    pub seconds: f64,
    /// Per-phase seconds from the stem's [`PhaseClock`] breakdown
    /// (observability only; excluded from the canonical report).
    ///
    /// [`PhaseClock`]: fires_obs::PhaseClock
    pub phases: Vec<(String, f64)>,
    /// Engine metrics the unit recorded (counters, maxima, histograms).
    /// Deterministic per unit but excluded from the canonical report,
    /// which keeps only the result-bearing fields.
    pub metrics: RunMetrics,
    /// Per-rule engine hotspot profile for this unit. `None` for units
    /// run without the `tracing` feature and for journals written before
    /// the profiler existed; observability only, excluded from the
    /// canonical report.
    pub profile: Option<RuleProfile>,
}

impl UnitRecord {
    /// The journaled faults as core [`IdentifiedFault`]s, attributed to
    /// `stem` (the unit's stem line).
    pub fn identified(&self, stem: LineId) -> Vec<IdentifiedFault> {
        self.faults
            .iter()
            .map(|&(line, stuck_one, c, frame)| IdentifiedFault {
                fault: Fault::new(LineId::new(line as usize), StuckValue::from_bool(stuck_one)),
                c,
                frame,
                stem,
            })
            .collect()
    }
}

fn header_to_json(header: &JournalHeader) -> Json {
    let mut tasks = Vec::with_capacity(header.tasks.len());
    for t in &header.tasks {
        let mut j = Json::object();
        // The hash is journaled as a hex *string*: Json numbers are f64
        // and would silently round u64 values above 2^53.
        j.set("circuit", t.circuit.clone())
            .set("hash", format!("{:016x}", t.hash))
            .set("stems", t.stems as u64);
        tasks.push(j);
    }
    let mut j = Json::object();
    j.set("kind", "header")
        .set("schema", JOURNAL_SCHEMA)
        .set("spec", header.spec.to_json())
        .set("tasks", Json::Arr(tasks));
    j
}

fn header_from_json(j: &Json) -> Result<JournalHeader, JobError> {
    let schema = j
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or_else(|| JobError::journal("header has no schema version"))?;
    if !(JOURNAL_SCHEMA_MIN..=JOURNAL_SCHEMA).contains(&schema) {
        return Err(JobError::journal(format!(
            "journal schema {schema} unsupported (this build reads \
             {JOURNAL_SCHEMA_MIN}..={JOURNAL_SCHEMA})"
        )));
    }
    let spec = CampaignSpec::from_json(
        j.get("spec")
            .ok_or_else(|| JobError::journal("header has no spec"))?,
    )?;
    let tasks = j
        .get("tasks")
        .and_then(Json::as_arr)
        .ok_or_else(|| JobError::journal("header has no task fingerprints"))?
        .iter()
        .map(|t| {
            let circuit = t
                .get("circuit")
                .and_then(Json::as_str)
                .ok_or_else(|| JobError::journal("fingerprint has no circuit"))?
                .to_string();
            let hash = t
                .get("hash")
                .and_then(Json::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| JobError::journal("fingerprint hash is not hex"))?;
            let stems = t
                .get("stems")
                .and_then(Json::as_u64)
                .ok_or_else(|| JobError::journal("fingerprint has no stem count"))?
                as usize;
            Ok(TaskFingerprint {
                circuit,
                hash,
                stems,
            })
        })
        .collect::<Result<Vec<_>, JobError>>()?;
    Ok(JournalHeader { spec, tasks })
}

fn unit_to_json(u: &UnitRecord) -> Json {
    let faults = u
        .faults
        .iter()
        .map(|&(line, stuck, c, frame)| {
            Json::Arr(vec![
                Json::Num(line as f64),
                Json::Num(if stuck { 1.0 } else { 0.0 }),
                Json::Num(c as f64),
                Json::Num(frame as f64),
            ])
        })
        .collect();
    let phases = u
        .phases
        .iter()
        .map(|(name, secs)| Json::Arr(vec![Json::Str(name.clone()), Json::Num(*secs)]))
        .collect();
    let mut j = Json::object();
    j.set("kind", "unit")
        .set("task", u.task as u64)
        .set("stem", u.stem as u64)
        .set("status", u.status.as_str())
        .set("faults", Json::Arr(faults))
        .set("marks", u.marks)
        .set("frames", u.frames)
        .set("retries", u.retries)
        .set("seconds", u.seconds)
        .set("phases", Json::Arr(phases))
        .set("metrics", u.metrics.to_json());
    if let Some(reason) = u.reason {
        j.set("reason", reason.as_str());
    }
    if let Some(profile) = &u.profile {
        j.set("profile", profile.to_json());
    }
    j
}

fn unit_from_json(j: &Json) -> Result<UnitRecord, JobError> {
    let int = |name: &str| {
        j.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| JobError::journal(format!("unit record field {name:?} missing")))
    };
    let status = j
        .get("status")
        .and_then(Json::as_str)
        .and_then(UnitStatus::parse)
        .ok_or_else(|| JobError::journal("unit record has no valid status"))?;
    let faults = j
        .get("faults")
        .and_then(Json::as_arr)
        .ok_or_else(|| JobError::journal("unit record has no fault array"))?
        .iter()
        .map(|f| {
            let f = f
                .as_arr()
                .filter(|f| f.len() == 4)
                .ok_or_else(|| JobError::journal("fault entry is not a 4-element array"))?;
            let num = |i: usize| {
                f[i].as_f64()
                    .ok_or_else(|| JobError::journal("fault entry is not numeric"))
            };
            Ok((
                num(0)? as u32,
                num(1)? != 0.0,
                num(2)? as u32,
                num(3)? as i32,
            ))
        })
        .collect::<Result<Vec<_>, JobError>>()?;
    // Observability extras: tolerated when absent (they carry no result
    // data), rejected when present but malformed.
    let phases = match j.get("phases") {
        None => Vec::new(),
        Some(p) => {
            p.as_arr()
                .ok_or_else(|| JobError::journal("unit phases is not an array"))?
                .iter()
                .map(|e| {
                    let e = e.as_arr().filter(|e| e.len() == 2).ok_or_else(|| {
                        JobError::journal("phase entry is not a [name, secs] pair")
                    })?;
                    let name = e[0]
                        .as_str()
                        .ok_or_else(|| JobError::journal("phase name is not a string"))?;
                    let secs = e[1]
                        .as_f64()
                        .ok_or_else(|| JobError::journal("phase seconds is not numeric"))?;
                    Ok((name.to_string(), secs))
                })
                .collect::<Result<Vec<_>, JobError>>()?
        }
    };
    let metrics = match j.get("metrics") {
        None => RunMetrics::default(),
        Some(m) => RunMetrics::from_json(m)
            .ok_or_else(|| JobError::journal("unit metrics are malformed"))?,
    };
    let profile = match j.get("profile") {
        None => None,
        Some(p) => Some(
            RuleProfile::from_json(p)
                .ok_or_else(|| JobError::journal("unit profile is malformed"))?,
        ),
    };
    let reason = match j.get("reason") {
        None => None,
        Some(r) => Some(
            r.as_str()
                .and_then(ExhaustionReason::parse)
                .ok_or_else(|| JobError::journal("unit reason is not a known budget limit"))?,
        ),
    };
    if (status == UnitStatus::Exhausted) != reason.is_some() {
        return Err(JobError::journal(
            "unit reason must be present exactly for exhausted units",
        ));
    }
    Ok(UnitRecord {
        task: int("task")? as usize,
        stem: int("stem")? as usize,
        status,
        faults,
        marks: int("marks")?,
        frames: int("frames")?,
        retries: j.get("retries").and_then(Json::as_u64).unwrap_or(0),
        reason,
        seconds: j.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
        phases,
        metrics,
        profile,
    })
}

/// A non-terminal journal line narrating a retry or degradation on the
/// way to a unit's terminal record. Pure observability: the canonical
/// merge ignores events entirely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic per-journal sequence number (schema ≥ 4). Assigned by
    /// [`Journal::append_event`] — the value a caller constructs is
    /// overwritten at append time — and continued across resumes, so
    /// events interleaved by concurrent workers are totally ordered on
    /// replay. Events read from older journals carry 0.
    pub seq: u64,
    /// Index into the header's task list.
    pub task: usize,
    /// Index into the task's canonical stem order.
    pub stem: usize,
    /// Zero-based attempt the event happened on.
    pub attempt: u64,
    /// Machine-readable event kind (`unit-retry`, `journal-retry`, ...).
    pub what: String,
    /// Human-readable context.
    pub detail: String,
}

fn event_to_json(e: &EventRecord) -> Json {
    let mut j = Json::object();
    j.set("kind", "event")
        .set("seq", e.seq)
        .set("task", e.task as u64)
        .set("stem", e.stem as u64)
        .set("attempt", e.attempt)
        .set("what", e.what.clone())
        .set("detail", e.detail.clone());
    j
}

fn event_from_json(j: &Json) -> Result<EventRecord, JobError> {
    let int = |name: &str| {
        j.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| JobError::journal(format!("event record field {name:?} missing")))
    };
    let text = |name: &str| {
        j.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| JobError::journal(format!("event record field {name:?} missing")))
    };
    Ok(EventRecord {
        // Absent before schema 4; 0 keeps old journals readable.
        seq: j.get("seq").and_then(Json::as_u64).unwrap_or(0),
        task: int("task")? as usize,
        stem: int("stem")? as usize,
        attempt: int("attempt")?,
        what: text("what")?,
        detail: text("detail")?,
    })
}

/// A periodic heartbeat line describing campaign-wide progress at one
/// instant of one process's run. Pure observability — ignored by the
/// canonical merge, consumed by `fires watch`. Counts are cumulative
/// over the whole journal (a resumed process counts the units already
/// journaled before it started), so a watcher can compute throughput
/// and an ETA from any single record plus the header's unit totals.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressRecord {
    /// Terminal unit records in the journal at heartbeat time.
    pub done: u64,
    /// Units still to run (header total minus `done`).
    pub pending: u64,
    /// Of `done`: completed normally.
    pub ok: u64,
    /// Of `done`: poisoned (panicked out of retries).
    pub panicked: u64,
    /// Of `done`: overran their deadline.
    pub timed_out: u64,
    /// Of `done`: hit a budget limit.
    pub exhausted: u64,
    /// Retry events observed by this process so far.
    pub retried: u64,
    /// Seconds since this process's run started.
    pub elapsed_seconds: f64,
    /// Units completed by this process divided by `elapsed_seconds`.
    pub units_per_second: f64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Workers executing a unit at heartbeat time (occupancy).
    pub busy: u64,
}

fn progress_to_json(p: &ProgressRecord) -> Json {
    let mut j = Json::object();
    j.set("kind", "progress")
        .set("done", p.done)
        .set("pending", p.pending)
        .set("ok", p.ok)
        .set("panicked", p.panicked)
        .set("timed_out", p.timed_out)
        .set("exhausted", p.exhausted)
        .set("retried", p.retried)
        .set("elapsed_seconds", p.elapsed_seconds)
        .set("units_per_second", p.units_per_second)
        .set("workers", p.workers)
        .set("busy", p.busy);
    j
}

fn progress_from_json(j: &Json) -> Result<ProgressRecord, JobError> {
    let int = |name: &str| {
        j.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| JobError::journal(format!("progress record field {name:?} missing")))
    };
    let num = |name: &str| {
        j.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| JobError::journal(format!("progress record field {name:?} missing")))
    };
    Ok(ProgressRecord {
        done: int("done")?,
        pending: int("pending")?,
        ok: int("ok")?,
        panicked: int("panicked")?,
        timed_out: int("timed_out")?,
        exhausted: int("exhausted")?,
        retried: int("retried")?,
        elapsed_seconds: num("elapsed_seconds")?,
        units_per_second: num("units_per_second")?,
        workers: int("workers")?,
        busy: int("busy")?,
    })
}

/// An open journal being appended to.
#[derive(Debug)]
pub struct Journal {
    out: BufWriter<File>,
    path: std::path::PathBuf,
    /// Sequence number the next appended event record receives.
    next_event_seq: u64,
}

impl Journal {
    /// Creates a fresh journal at `path`, writing the header line.
    /// Refuses to overwrite an existing file — resume it instead.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Journal, JobError> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| JobError::io(path, e))?;
        let mut j = Journal {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            next_event_seq: 0,
        };
        j.append_line(&header_to_json(header))?;
        Ok(j)
    }

    /// Re-opens an existing journal for appending more unit records.
    ///
    /// A crash mid-append can leave a partial final line with no
    /// trailing newline; appending straight after it would glue the next
    /// record onto the fragment and corrupt the journal for every later
    /// reader. The tail is repaired first: a final line that is complete
    /// JSON merely lost its newline (the kill landed between the record
    /// bytes and the `'\n'`) and gets one; anything else is a torn
    /// fragment and is truncated away — the same line [`read`] drops.
    pub fn append_to(path: &Path) -> Result<Journal, JobError> {
        repair_torn_tail(path)?;
        let next_event_seq = next_event_seq_of(path)?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JobError::io(path, e))?;
        Ok(Journal {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            next_event_seq,
        })
    }

    /// Appends one unit record and flushes it to the OS. After this
    /// returns the unit will survive a process kill.
    pub fn append(&mut self, unit: &UnitRecord) -> Result<(), JobError> {
        self.append_line(&unit_to_json(unit))
    }

    /// Appends one observability event record (see [`EventRecord`]),
    /// stamping its `seq` with this journal's next sequence number —
    /// whatever the caller put there is overwritten, so sequence
    /// assignment has exactly one owner. Returns the assigned number.
    pub fn append_event(&mut self, event: &EventRecord) -> Result<u64, JobError> {
        let seq = self.next_event_seq;
        let stamped = EventRecord {
            seq,
            ..event.clone()
        };
        self.append_line(&event_to_json(&stamped))?;
        self.next_event_seq += 1;
        Ok(seq)
    }

    /// Appends one progress heartbeat (see [`ProgressRecord`]).
    pub fn append_progress(&mut self, progress: &ProgressRecord) -> Result<(), JobError> {
        self.append_line(&progress_to_json(progress))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Recovers from a failed append so the *next* append starts from
    /// clean state: any half-buffered line is discarded unflushed, a
    /// torn on-disk tail is repaired, and the file handle is reopened.
    ///
    /// Safe to combine with a retried append. If the failed append in
    /// fact reached the disk in full, the retry writes a duplicate
    /// record — harmless, because the merge collapses duplicates; if it
    /// reached the disk partially, the torn tail is truncated here
    /// exactly as a crash tail would be on resume.
    pub fn recover(&mut self) -> Result<(), JobError> {
        repair_torn_tail(&self.path)?;
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| JobError::io(&self.path, e))?;
        let stale = std::mem::replace(&mut self.out, BufWriter::new(file));
        // `into_parts` hands the buffer back without flushing it — the
        // whole point: the failed line must not leak after the repair.
        let _ = stale.into_parts();
        Ok(())
    }

    fn append_line(&mut self, j: &Json) -> Result<(), JobError> {
        let line = j.to_compact();
        debug_assert!(!line.contains('\n'), "compact JSON is single-line");
        writeln!(self.out, "{line}").map_err(|e| JobError::io(&self.path, e))?;
        self.out.flush().map_err(|e| JobError::io(&self.path, e))
    }
}

/// Truncates a torn final line (see [`Journal::append_to`]) so the file
/// ends exactly at the last intact record's newline, or writes the
/// missing newline when the final line is a complete record that lost
/// only its terminator.
fn repair_torn_tail(path: &Path) -> Result<(), JobError> {
    use std::io::Seek;

    let bytes = std::fs::read(path).map_err(|e| JobError::io(path, e))?;
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(());
    }
    let tail_start = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let intact = std::str::from_utf8(&bytes[tail_start..])
        .ok()
        .is_some_and(|s| Json::parse(s).is_ok());
    let mut file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| JobError::io(path, e))?;
    if intact {
        file.seek(std::io::SeekFrom::End(0))
            .and_then(|_| file.write_all(b"\n"))
            .map_err(|e| JobError::io(path, e))?;
    } else {
        file.set_len(tail_start as u64)
            .map_err(|e| JobError::io(path, e))?;
    }
    Ok(())
}

/// The sequence number the next event appended to `path` should carry:
/// one past the largest already journaled, or 0 for an event-free file.
///
/// Called after [`repair_torn_tail`], so every line parses. Lines are
/// pre-filtered on the raw `"kind":"event"` byte string before the JSON
/// parse — inside a JSON string value those quotes would be escaped, so
/// the filter can only over-match (and the parse then disambiguates),
/// never miss an event line our writer produced.
fn next_event_seq_of(path: &Path) -> Result<u64, JobError> {
    let text = std::fs::read_to_string(path).map_err(|e| JobError::io(path, e))?;
    let mut next = 0u64;
    for line in text.lines() {
        if !line.contains("\"kind\":\"event\"") {
            continue;
        }
        let Ok(j) = Json::parse(line) else { continue };
        if j.get("kind").and_then(Json::as_str) != Some("event") {
            continue;
        }
        let seq = j.get("seq").and_then(Json::as_u64).unwrap_or(0);
        next = next.max(seq + 1);
    }
    Ok(next)
}

/// Everything read back from a journal file.
#[derive(Clone, Debug)]
pub struct JournalContents {
    /// The header line.
    pub header: JournalHeader,
    /// Every intact unit record, in append order.
    pub units: Vec<UnitRecord>,
    /// Every intact event record, in append order (observability only).
    pub events: Vec<EventRecord>,
    /// Every intact progress heartbeat, in append order (observability
    /// only; empty for schema-2 journals).
    pub progress: Vec<ProgressRecord>,
    /// `true` when the final line was torn (a crash mid-write) and was
    /// dropped.
    pub torn: bool,
}

impl JournalContents {
    /// The set of already-completed `(task, stem)` units — work a resumed
    /// run must not repeat.
    pub fn done(&self) -> HashSet<(usize, usize)> {
        self.units.iter().map(|u| (u.task, u.stem)).collect()
    }
}

/// Reads a journal back, tolerating a torn final line.
pub fn read(path: &Path) -> Result<JournalContents, JobError> {
    let text = std::fs::read_to_string(path).map_err(|e| JobError::io(path, e))?;
    let mut lines = text.lines().enumerate();
    let (_, first) = lines
        .next()
        .ok_or_else(|| JobError::journal("journal is empty"))?;
    let header = Json::parse(first)
        .map_err(|e| JobError::journal(format!("header line: {e}")))
        .and_then(|j| header_from_json(&j))?;
    let mut units = Vec::new();
    let mut events = Vec::new();
    let mut progress = Vec::new();
    let mut torn = false;
    let last_index = text.lines().count() - 1;
    // A crash mid-append leaves a *prefix* of "record\n": never valid
    // JSON (a truncated object is unclosed) and never newline-terminated.
    // Only such a line, in final position, is torn; a line that parses as
    // complete JSON but is not a well-formed unit record is corruption —
    // a hard error wherever it sits.
    let ends_with_newline = text.ends_with('\n');
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let j = match Json::parse(line) {
            Ok(j) => j,
            Err(_) if i == last_index && !ends_with_newline => {
                // The process died mid-append; the journal up to here is
                // intact.
                torn = true;
                continue;
            }
            Err(e) => {
                return Err(JobError::journal(format!(
                    "line {}: malformed record before end of journal ({e})",
                    i + 1
                )));
            }
        };
        let at_line = |e: JobError, i: usize| {
            let msg = match e {
                JobError::Journal { message } => message,
                other => other.to_string(),
            };
            JobError::journal(format!("line {}: {msg}", i + 1))
        };
        match j.get("kind").and_then(Json::as_str) {
            Some("unit") => {
                let u = unit_from_json(&j).map_err(|e| at_line(e, i))?;
                if u.task >= header.tasks.len() || u.stem >= header.tasks[u.task].stems {
                    return Err(JobError::journal(format!(
                        "line {}: unit ({}, {}) is out of range for the header",
                        i + 1,
                        u.task,
                        u.stem
                    )));
                }
                units.push(u);
            }
            Some("event") => {
                events.push(event_from_json(&j).map_err(|e| at_line(e, i))?);
            }
            Some("progress") => {
                progress.push(progress_from_json(&j).map_err(|e| at_line(e, i))?);
            }
            _ => {
                return Err(JobError::journal(format!(
                    "line {}: record kind is not \"unit\", \"event\" or \"progress\"",
                    i + 1
                )));
            }
        }
    }
    Ok(JournalContents {
        header,
        units,
        events,
        progress,
        torn,
    })
}

/// Builds the header for a freshly resolved campaign. `stems` must be the
/// per-task canonical stem counts.
pub fn header_for(spec: &CampaignSpec, tasks: &[ResolvedTask], stems: &[usize]) -> JournalHeader {
    JournalHeader {
        spec: spec.clone(),
        tasks: tasks
            .iter()
            .zip(stems)
            .map(|(t, &stems)| TaskFingerprint {
                circuit: t.name.clone(),
                hash: t.hash,
                stems,
            })
            .collect(),
    }
}

/// Checks a journal header against this build's resolution of its spec.
///
/// # Errors
///
/// [`JobError::Mismatch`] when a circuit's content hash or stem count
/// differs — the journal's unit indices would mean different work.
pub fn verify_header(
    header: &JournalHeader,
    tasks: &[ResolvedTask],
    stems: &[usize],
) -> Result<(), JobError> {
    if header.tasks.len() != tasks.len() {
        return Err(JobError::journal(format!(
            "header lists {} tasks but the spec resolves to {}",
            header.tasks.len(),
            tasks.len()
        )));
    }
    for ((fp, task), &n) in header.tasks.iter().zip(tasks).zip(stems) {
        if fp.circuit != task.name {
            return Err(JobError::Mismatch {
                circuit: fp.circuit.clone(),
                message: format!("resolves to {:?} in this build", task.name),
            });
        }
        if fp.hash != task.hash {
            return Err(JobError::Mismatch {
                circuit: fp.circuit.clone(),
                message: format!(
                    "content hash {:016x} != journal's {:016x}",
                    task.hash, fp.hash
                ),
            });
        }
        if fp.stems != n {
            return Err(JobError::Mismatch {
                circuit: fp.circuit.clone(),
                message: format!("{} stems != journal's {}", n, fp.stems),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fires-jobs-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("job.jsonl")
    }

    fn sample_header() -> JournalHeader {
        let spec = CampaignSpec::from_circuits("t", ["s27", "fig3"]);
        let tasks = spec.resolve().unwrap();
        header_for(&spec, &tasks, &[9, 2])
    }

    fn sample_unit() -> UnitRecord {
        let mut metrics = RunMetrics::default();
        metrics.incr("core.marks_created", 41);
        UnitRecord {
            task: 0,
            stem: 3,
            status: UnitStatus::Ok,
            faults: vec![(12, true, 0, 0), (7, false, 2, -1)],
            marks: 41,
            frames: 5,
            retries: 0,
            reason: None,
            seconds: 0.002,
            phases: vec![("implication".into(), 0.001), ("validation".into(), 0.001)],
            metrics,
            profile: None,
        }
    }

    #[test]
    fn unit_profiles_round_trip_and_reject_malformation() {
        let path = temp("profile");
        let mut profile = RuleProfile::new();
        profile.record(fires_obs::ALL_RULES[0]);
        profile.record_many(fires_obs::ALL_RULES[3], 7);
        profile.note_unattributed();
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&UnitRecord {
            profile: Some(profile.clone()),
            ..sample_unit()
        })
        .unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        let back = read(&path).unwrap();
        assert_eq!(back.units[0].profile.as_ref(), Some(&profile));
        assert_eq!(back.units[1].profile, None);
        // Present-but-malformed is corruption, not a tolerated absence.
        // The rewrite keeps the line valid JSON (the old object survives
        // under a junk key) so the failure is the profile check itself.
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"profile\":{", "\"profile\":42,\"junk\":{");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(read(&path), Err(JobError::Journal { .. })));
    }

    #[test]
    fn round_trips_header_and_units() {
        let path = temp("round-trip");
        let header = sample_header();
        let mut j = Journal::create(&path, &header).unwrap();
        let unit = sample_unit();
        j.append(&unit).unwrap();
        j.append(&UnitRecord {
            stem: 4,
            status: UnitStatus::Panic,
            faults: vec![],
            ..unit.clone()
        })
        .unwrap();
        drop(j);
        let back = read(&path).unwrap();
        assert_eq!(back.header, header);
        assert_eq!(back.units.len(), 2);
        assert_eq!(back.units[0], unit);
        assert_eq!(back.units[1].status, UnitStatus::Panic);
        assert!(!back.torn);
        assert!(back.done().contains(&(0, 3)));
    }

    #[test]
    fn exhausted_units_and_events_round_trip() {
        let path = temp("exhausted");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append_event(&EventRecord {
            seq: 0,
            task: 0,
            stem: 5,
            attempt: 0,
            what: "unit-retry".into(),
            detail: "attempt panicked; caches rebuilt".into(),
        })
        .unwrap();
        j.append(&UnitRecord {
            stem: 5,
            status: UnitStatus::Exhausted,
            retries: 1,
            reason: Some(ExhaustionReason::Steps),
            ..sample_unit()
        })
        .unwrap();
        drop(j);
        let back = read(&path).unwrap();
        assert_eq!(back.units.len(), 1);
        assert_eq!(back.units[0].status, UnitStatus::Exhausted);
        assert_eq!(back.units[0].reason, Some(ExhaustionReason::Steps));
        assert_eq!(back.units[0].retries, 1);
        assert_eq!(back.events.len(), 1);
        assert_eq!(back.events[0].what, "unit-retry");
        // Exhausted units still count as done: resume must not re-run them.
        assert!(back.done().contains(&(0, 5)));
    }

    fn sample_progress() -> ProgressRecord {
        ProgressRecord {
            done: 5,
            pending: 6,
            ok: 3,
            panicked: 1,
            timed_out: 0,
            exhausted: 1,
            retried: 2,
            elapsed_seconds: 1.25,
            units_per_second: 4.0,
            workers: 4,
            busy: 3,
        }
    }

    #[test]
    fn progress_records_round_trip() {
        let path = temp("progress");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        j.append_progress(&sample_progress()).unwrap();
        j.append(&UnitRecord {
            stem: 4,
            ..sample_unit()
        })
        .unwrap();
        drop(j);
        let back = read(&path).unwrap();
        assert_eq!(back.units.len(), 2);
        assert_eq!(back.progress.len(), 1);
        assert_eq!(back.progress[0], sample_progress());
        // Heartbeats never mark work as done.
        assert!(!back.done().contains(&(0, 5)));
    }

    #[test]
    fn schema_2_journals_stay_readable() {
        // Rewrite the header as a schema-2 build stamped it; the record
        // kinds it wrote are a strict subset of ours.
        let path = temp("schema2");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"schema\":4", "\"schema\":2");
        assert!(text.contains("\"schema\":2"), "header must carry schema 2");
        std::fs::write(&path, text).unwrap();
        let back = read(&path).unwrap();
        assert_eq!(back.units.len(), 1);
        assert!(back.progress.is_empty());
        // Schema 1 predates the resumable journal and is refused, as is
        // anything newer than this build.
        for bogus in ["\"schema\":1", "\"schema\":5"] {
            let text = std::fs::read_to_string(&path)
                .unwrap()
                .replace("\"schema\":2", bogus);
            std::fs::write(&path, text).unwrap();
            assert!(
                matches!(read(&path), Err(JobError::Journal { .. })),
                "{bogus}"
            );
            let text = std::fs::read_to_string(&path)
                .unwrap()
                .replace(bogus, "\"schema\":2");
            std::fs::write(&path, text).unwrap();
        }
    }

    #[test]
    fn schema_3_events_without_seq_read_back_as_zero() {
        // A schema-3 build journaled events with no seq field; they must
        // stay readable, carrying 0.
        let path = temp("schema3-events");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        let mut text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"schema\":4", "\"schema\":3");
        text.push_str(
            "{\"kind\":\"event\",\"task\":0,\"stem\":5,\"attempt\":0,\
             \"what\":\"unit-retry\",\"detail\":\"old build\"}\n",
        );
        std::fs::write(&path, text).unwrap();
        let back = read(&path).unwrap();
        assert_eq!(back.events.len(), 1);
        assert_eq!(back.events[0].seq, 0);
        assert_eq!(back.events[0].what, "unit-retry");
    }

    #[test]
    fn event_seqs_are_monotonic_and_survive_resume() {
        let path = temp("event-seq");
        let ev = |what: &str| EventRecord {
            // A deliberately wrong caller-side seq: append_event owns
            // sequence assignment and must overwrite it.
            seq: 999,
            task: 0,
            stem: 1,
            attempt: 0,
            what: what.into(),
            detail: String::new(),
        };
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        assert_eq!(j.append_event(&ev("first")).unwrap(), 0);
        assert_eq!(j.append_event(&ev("second")).unwrap(), 1);
        j.append(&sample_unit()).unwrap();
        drop(j);
        // A resume continues the numbering where the file left off.
        let mut j2 = Journal::append_to(&path).unwrap();
        assert_eq!(j2.append_event(&ev("third")).unwrap(), 2);
        drop(j2);
        let back = read(&path).unwrap();
        let seqs: Vec<u64> = back.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(back.events[2].what, "third");
    }

    #[test]
    fn reason_must_match_status() {
        let path = temp("reason-mismatch");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&UnitRecord {
            status: UnitStatus::Ok,
            reason: Some(ExhaustionReason::Steps),
            ..sample_unit()
        })
        .unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        assert!(matches!(read(&path), Err(JobError::Journal { .. })));
        let path = temp("reason-missing");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&UnitRecord {
            status: UnitStatus::Exhausted,
            reason: None,
            ..sample_unit()
        })
        .unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        assert!(matches!(read(&path), Err(JobError::Journal { .. })));
    }

    #[test]
    fn recover_repairs_a_torn_tail_and_keeps_appending() {
        let path = temp("recover");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        // Simulate a failed append that reached the disk partially.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"kind\":\"unit\",\"task\":0,\"ste").unwrap();
        }
        j.recover().unwrap();
        j.append(&UnitRecord {
            stem: 4,
            ..sample_unit()
        })
        .unwrap();
        drop(j);
        let back = read(&path).unwrap();
        assert!(!back.torn);
        assert_eq!(back.units.len(), 2);
        assert!(back.done().contains(&(0, 4)));
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let path = temp("no-overwrite");
        let header = sample_header();
        Journal::create(&path, &header).unwrap();
        assert!(matches!(
            Journal::create(&path, &header),
            Err(JobError::Io { .. })
        ));
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = temp("torn");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        // Simulate a crash mid-append: half a record at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"kind\":\"unit\",\"task\":0,\"st");
        std::fs::write(&path, text).unwrap();
        let back = read(&path).unwrap();
        assert!(back.torn);
        assert_eq!(back.units.len(), 1);
    }

    #[test]
    fn append_to_truncates_a_torn_tail() {
        let path = temp("torn-append");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        let before = std::fs::read_to_string(&path).unwrap();
        let mut text = before.clone();
        text.push_str("{\"kind\":\"unit\",\"task\":0,\"st");
        std::fs::write(&path, text).unwrap();
        let mut j2 = Journal::append_to(&path).unwrap();
        j2.append(&UnitRecord {
            stem: 4,
            ..sample_unit()
        })
        .unwrap();
        drop(j2);
        // The fragment is gone and the journal is clean end-to-end.
        assert!(std::fs::read_to_string(&path).unwrap().starts_with(&before));
        let back = read(&path).unwrap();
        assert!(!back.torn);
        assert_eq!(back.units.len(), 2);
        assert!(back.done().contains(&(0, 4)));
    }

    #[test]
    fn append_to_completes_a_record_missing_only_its_newline() {
        let path = temp("no-newline");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        // The kill landed between the record bytes and its '\n'.
        let mut text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.pop(), Some('\n'));
        std::fs::write(&path, text).unwrap();
        let mut j2 = Journal::append_to(&path).unwrap();
        j2.append(&UnitRecord {
            stem: 4,
            ..sample_unit()
        })
        .unwrap();
        drop(j2);
        let back = read(&path).unwrap();
        assert!(!back.torn);
        assert_eq!(back.units.len(), 2);
        assert_eq!(back.units[0], sample_unit());
    }

    #[test]
    fn complete_json_with_bad_record_is_an_error_even_at_the_end() {
        let path = temp("bad-final");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        for bad in ["{\"kind\":\"unit\",\"task\":0}", "{\"kind\":\"noise\"}"] {
            let mut text = std::fs::read_to_string(&path).unwrap();
            let len = text.len();
            text.push_str(bad);
            std::fs::write(&path, &text).unwrap();
            assert!(
                matches!(read(&path), Err(JobError::Journal { .. })),
                "final line {bad:?} must be corruption, not a tear"
            );
            text.truncate(len);
            std::fs::write(&path, &text).unwrap();
        }
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = temp("corrupt");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&sample_unit()).unwrap();
        drop(j);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("garbage\n");
        let mut j2 = Journal::append_to(&path).unwrap();
        std::fs::write(&path, &text).unwrap();
        j2.append(&sample_unit()).unwrap();
        drop(j2);
        assert!(matches!(read(&path), Err(JobError::Journal { .. })));
    }

    #[test]
    fn out_of_range_units_are_rejected() {
        let path = temp("range");
        let mut j = Journal::create(&path, &sample_header()).unwrap();
        j.append(&UnitRecord {
            stem: 999,
            ..sample_unit()
        })
        .unwrap();
        // A second record so the bad one is not excusable as torn.
        j.append(&sample_unit()).unwrap();
        drop(j);
        assert!(matches!(read(&path), Err(JobError::Journal { .. })));
    }

    #[test]
    fn verify_header_catches_drift() {
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        let tasks = spec.resolve().unwrap();
        let header = header_for(&spec, &tasks, &[9]);
        assert!(verify_header(&header, &tasks, &[9]).is_ok());
        assert!(matches!(
            verify_header(&header, &tasks, &[8]),
            Err(JobError::Mismatch { .. })
        ));
        let mut drifted = tasks.clone();
        drifted[0].hash ^= 1;
        assert!(matches!(
            verify_header(&header, &drifted, &[9]),
            Err(JobError::Mismatch { .. })
        ));
    }

    #[test]
    fn identified_faults_reconstruct() {
        let u = sample_unit();
        let stem = LineId::new(42);
        let ids = u.identified(stem);
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0].fault.line, LineId::new(12));
        assert!(ids[0].fault.stuck.as_bool());
        assert_eq!(ids[1].frame, -1);
        assert_eq!(ids[1].stem, stem);
    }
}
