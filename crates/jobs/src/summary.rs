//! Cheap journal summarisation — the shared path behind `fires status`
//! and `fires watch`.
//!
//! [`crate::report`] resolves the spec and builds every engine, which is
//! the right cost for a *result* (the merge needs the canonical stem
//! order) but far too heavy to poll once a second against a live
//! journal. A [`JournalSummary`] is computed from the journal contents
//! alone: per-task unit counts come straight from the unit records, the
//! task totals from the header's [`TaskFingerprint`]s, and latency
//! quantiles from each unit's journaled `seconds` — no circuit is ever
//! generated. Both commands render from this one struct, so `fires
//! status` and `fires watch` can never disagree about the same journal.
//!
//! [`TaskFingerprint`]: crate::journal::TaskFingerprint

use fires_obs::{Histogram, Json};

use crate::journal::{JournalContents, ProgressRecord, UnitStatus};

/// Unit-count rollup of one task (one circuit) of a campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskProgress {
    /// Resolved circuit name (from the journal header).
    pub name: String,
    /// Total work units (fanout stems) of the task.
    pub total: usize,
    /// Units journaled `ok`.
    pub ok: usize,
    /// Units journaled `panic` (poisoned).
    pub panicked: usize,
    /// Units journaled `timeout`.
    pub timed_out: usize,
    /// Units journaled `exhausted`.
    pub exhausted: usize,
    /// Units whose terminal record needed at least one retry.
    pub retried: usize,
}

impl TaskProgress {
    /// Units with any terminal record.
    pub fn recorded(&self) -> usize {
        self.ok + self.panicked + self.timed_out + self.exhausted
    }

    /// Units still unprocessed.
    pub fn pending(&self) -> usize {
        self.total.saturating_sub(self.recorded())
    }
}

/// How many of the slowest units [`JournalSummary::worst_stems`] keeps.
pub const WORST_STEMS_TOP: usize = 5;

/// One entry of the worst-stem list: a unit whose latency puts it in the
/// campaign's pathological tail.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorstStem {
    /// Resolved circuit name of the unit's task.
    pub task: String,
    /// Index into the task's canonical stem order.
    pub stem: usize,
    /// Wall-clock seconds the unit took.
    pub seconds: f64,
    /// Implication steps the unit recorded (0 for untraced runs).
    pub steps: u64,
}

/// Everything `status`/`watch` show about a journal, computed without
/// resolving the spec or building engines.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JournalSummary {
    /// Campaign name (from the spec carried in the header).
    pub campaign: String,
    /// Per-task rollups, in header task order.
    pub tasks: Vec<TaskProgress>,
    /// Per-unit wall-clock latency in microseconds, over every journaled
    /// unit regardless of status.
    pub latency_us: Histogram,
    /// The [`WORST_STEMS_TOP`] slowest units by wall-clock, worst first
    /// (ties broken by `(task, stem)` so the list is deterministic for a
    /// given set of records).
    pub worst_stems: Vec<WorstStem>,
    /// The newest journaled heartbeat, if any (carries throughput and
    /// worker occupancy of the writing process).
    pub last_progress: Option<ProgressRecord>,
    /// Journaled `event` records (retries, journal IO faults, …).
    pub events: usize,
    /// Highest `seq` among the journal's events, if any were recorded.
    /// Events written before schema 4 all carry seq 0, so a resumed old
    /// journal reports `Some(0)` here rather than a fresh counter.
    pub last_event_seq: Option<u64>,
    /// `true` when the journal's final line was torn and dropped.
    pub torn: bool,
}

impl JournalSummary {
    /// Summarises journal contents. Pure and cheap: one pass over the
    /// unit records.
    pub fn summarize(contents: &JournalContents) -> JournalSummary {
        let mut tasks: Vec<TaskProgress> = contents
            .header
            .tasks
            .iter()
            .map(|f| TaskProgress {
                name: f.circuit.clone(),
                total: f.stems,
                ..TaskProgress::default()
            })
            .collect();
        let mut latency_us = Histogram::default();
        let mut worst_stems: Vec<WorstStem> = Vec::new();
        for u in &contents.units {
            latency_us.observe((u.seconds * 1e6) as u64);
            let Some(t) = tasks.get_mut(u.task) else {
                continue;
            };
            worst_stems.push(WorstStem {
                task: t.name.clone(),
                stem: u.stem,
                seconds: u.seconds,
                steps: u
                    .metrics
                    .histogram("core.stem_steps")
                    .map_or(0, |h| h.sum()),
            });
            match u.status {
                UnitStatus::Ok => t.ok += 1,
                UnitStatus::Panic => t.panicked += 1,
                UnitStatus::Timeout => t.timed_out += 1,
                UnitStatus::Exhausted => t.exhausted += 1,
            }
            if u.retries > 0 {
                t.retried += 1;
            }
        }
        worst_stems.sort_by(|a, b| {
            b.seconds
                .total_cmp(&a.seconds)
                .then_with(|| (&a.task, a.stem).cmp(&(&b.task, b.stem)))
        });
        worst_stems.truncate(WORST_STEMS_TOP);
        JournalSummary {
            campaign: contents.header.spec.name.clone(),
            tasks,
            latency_us,
            worst_stems,
            last_progress: contents.progress.last().cloned(),
            events: contents.events.len(),
            last_event_seq: contents.events.iter().map(|e| e.seq).max(),
            torn: contents.torn,
        }
    }

    /// Units with any terminal record, across all tasks.
    pub fn done(&self) -> usize {
        self.tasks.iter().map(TaskProgress::recorded).sum()
    }

    /// Total units of the campaign.
    pub fn total(&self) -> usize {
        self.tasks.iter().map(|t| t.total).sum()
    }

    /// `true` when every unit has a terminal record.
    pub fn complete(&self) -> bool {
        self.done() == self.total()
    }

    /// The machine-readable form behind `fires status --json`.
    pub fn to_json(&self) -> Json {
        let tasks: Vec<Json> = self
            .tasks
            .iter()
            .map(|t| {
                let mut j = Json::object();
                j.set("name", t.name.clone())
                    .set("total", t.total as u64)
                    .set("ok", t.ok as u64)
                    .set("panicked", t.panicked as u64)
                    .set("timed_out", t.timed_out as u64)
                    .set("exhausted", t.exhausted as u64)
                    .set("retried", t.retried as u64)
                    .set("pending", t.pending() as u64);
                j
            })
            .collect();
        let mut j = Json::object();
        j.set("campaign", self.campaign.clone())
            .set("done", self.done() as u64)
            .set("total", self.total() as u64)
            .set("complete", self.complete())
            .set("torn", self.torn)
            .set("tasks", Json::Arr(tasks));
        if self.latency_us.count() > 0 {
            j.set("unit_latency_us", self.latency_us.to_json());
        }
        if !self.worst_stems.is_empty() {
            let worst: Vec<Json> = self
                .worst_stems
                .iter()
                .map(|w| {
                    let mut e = Json::object();
                    e.set("task", w.task.clone())
                        .set("stem", w.stem as u64)
                        .set("seconds", w.seconds)
                        .set("steps", w.steps);
                    e
                })
                .collect();
            j.set("worst_stems", Json::Arr(worst));
        }
        if self.events > 0 {
            j.set("events", self.events as u64);
            if let Some(seq) = self.last_event_seq {
                j.set("last_event_seq", seq);
            }
        }
        if let Some(p) = &self.last_progress {
            let mut beat = Json::object();
            beat.set("done", p.done)
                .set("pending", p.pending)
                .set("elapsed_seconds", p.elapsed_seconds)
                .set("units_per_second", p.units_per_second)
                .set("workers", p.workers)
                .set("busy", p.busy);
            j.set("last_progress", beat);
        }
        j
    }

    /// The `fires status` table (also the top of every `watch` frame).
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>9} {:>9} {:>9} {:>8} {:>8}",
            "circuit", "ok", "poisoned", "timedout", "exhausted", "retried", "pending"
        );
        for t in &self.tasks {
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>9} {:>9} {:>9} {:>8} {:>8}",
                t.name,
                t.ok,
                t.panicked,
                t.timed_out,
                t.exhausted,
                t.retried,
                t.pending(),
            );
        }
        let _ = writeln!(
            out,
            "{}/{} unit(s) journaled; campaign {}",
            self.done(),
            self.total(),
            if self.complete() {
                "complete"
            } else {
                "incomplete"
            }
        );
        out
    }

    /// One live `fires watch` frame: the status table plus throughput,
    /// ETA and latency-quantile lines.
    pub fn render_watch(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "campaign {}", self.campaign);
        out.push_str(&self.render_table());
        if self.latency_us.count() > 0 {
            let h = &self.latency_us;
            let _ = writeln!(
                out,
                "stem latency: p50 {} p95 {} max {} (over {} unit(s))",
                fmt_us(h.p50()),
                fmt_us(h.p95()),
                fmt_us(h.max()),
                h.count(),
            );
        }
        if !self.worst_stems.is_empty() {
            let tail: Vec<String> = self
                .worst_stems
                .iter()
                .map(|w| {
                    format!(
                        "{}#{} {} ({} steps)",
                        w.task,
                        w.stem,
                        fmt_us((w.seconds * 1e6) as u64),
                        w.steps
                    )
                })
                .collect();
            let _ = writeln!(out, "worst stems: {}", tail.join(", "));
        }
        if let Some(p) = &self.last_progress {
            let _ = writeln!(
                out,
                "throughput: {:.1} stems/s, {}/{} worker(s) busy, {:.1}s elapsed{}",
                p.units_per_second,
                p.busy,
                p.workers,
                p.elapsed_seconds,
                match eta_seconds(p) {
                    Some(eta) => format!(", ETA {eta:.0}s"),
                    None => String::new(),
                }
            );
        }
        if self.events > 0 {
            let _ = writeln!(
                out,
                "events: {} journaled (last seq {})",
                self.events,
                self.last_event_seq.unwrap_or(0),
            );
        }
        if self.torn {
            let _ = writeln!(
                out,
                "note: final journal line was torn (writer killed mid-append)"
            );
        }
        out
    }
}

/// Remaining seconds estimated from the latest heartbeat's throughput;
/// `None` when the campaign is drained or the rate is zero.
fn eta_seconds(p: &ProgressRecord) -> Option<f64> {
    if p.pending == 0 || p.units_per_second <= 0.0 {
        return None;
    }
    Some(p.pending as f64 / p.units_per_second)
}

/// Renders microseconds with a readable unit.
fn fmt_us(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1}s", us as f64 / 1e6)
    } else if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}\u{b5}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::read;
    use crate::runner::{run, RunnerConfig};
    use crate::spec::CampaignSpec;
    use std::time::Duration;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fires-summary-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("job.jsonl")
    }

    #[test]
    fn summary_agrees_with_the_full_merge() {
        let path = temp("agrees");
        let spec = CampaignSpec::from_circuits("t", ["s27", "fig3"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let contents = read(&path).unwrap();
        let summary = JournalSummary::summarize(&contents);
        let merged = crate::report(&path).unwrap();
        assert_eq!(summary.campaign, "t");
        assert_eq!(summary.tasks.len(), merged.tasks.len());
        for (s, m) in summary.tasks.iter().zip(&merged.tasks) {
            assert_eq!(s.name, m.name);
            assert_eq!(s.total, m.units_total);
            assert_eq!(s.ok, m.units_ok);
            assert_eq!(s.panicked, m.units_panicked);
            assert_eq!(s.timed_out, m.units_timed_out);
            assert_eq!(s.exhausted, m.units_exhausted);
            assert_eq!(s.retried, m.units_retried);
            assert_eq!(s.pending(), 0);
        }
        assert!(summary.complete());
        assert_eq!(summary.latency_us.count(), summary.done() as u64);
    }

    #[test]
    fn worst_stems_rank_the_latency_tail() {
        let path = temp("worst");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let mut contents = read(&path).unwrap();
        // Forge latencies so the ranking is fully determined.
        for (i, u) in contents.units.iter_mut().enumerate() {
            u.seconds = i as f64;
        }
        let summary = JournalSummary::summarize(&contents);
        let worst = &summary.worst_stems;
        assert_eq!(worst.len(), WORST_STEMS_TOP.min(contents.units.len()));
        assert!(worst.windows(2).all(|w| w[0].seconds >= w[1].seconds));
        assert_eq!(worst[0].seconds, (contents.units.len() - 1) as f64);
        // Traced units carry their step counts into the ranking.
        assert!(worst.iter().all(|w| w.steps > 0));
        let json = summary.to_json();
        let listed = json
            .get("worst_stems")
            .and_then(Json::as_arr)
            .expect("worst_stems in status --json");
        assert_eq!(listed.len(), worst.len());
        assert_eq!(
            listed[0].get("steps").and_then(Json::as_u64),
            Some(worst[0].steps)
        );
        assert!(summary.render_watch().contains("worst stems:"));
    }

    #[test]
    fn event_count_and_last_seq_surface_in_watch_and_json() {
        let path = temp("events");
        let spec = CampaignSpec::from_circuits("t", ["fig3"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let mut contents = read(&path).unwrap();
        // An untroubled run journals no events and renders no event line.
        let quiet = JournalSummary::summarize(&contents);
        assert_eq!(quiet.events, 0);
        assert_eq!(quiet.last_event_seq, None);
        assert!(!quiet.render_watch().contains("events:"));
        assert!(quiet.to_json().get("events").is_none());
        // Forge journaled events (a retry and a journal IO fault).
        for (seq, what) in [(0u64, "unit-retry"), (1, "journal-retry")] {
            contents.events.push(crate::journal::EventRecord {
                seq,
                task: 0,
                stem: 0,
                attempt: 1,
                what: what.into(),
                detail: "injected".into(),
            });
        }
        let summary = JournalSummary::summarize(&contents);
        assert_eq!(summary.events, 2);
        assert_eq!(summary.last_event_seq, Some(1));
        assert!(summary
            .render_watch()
            .contains("events: 2 journaled (last seq 1)"));
        let json = summary.to_json();
        assert_eq!(json.get("events").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("last_event_seq").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn partial_journal_reports_pending_and_heartbeat() {
        let path = temp("partial");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        let rc = RunnerConfig {
            max_units: Some(2),
            progress_interval: Some(Duration::ZERO),
            ..Default::default()
        };
        run(&spec, &path, &rc).unwrap();
        let summary = JournalSummary::summarize(&read(&path).unwrap());
        assert!(!summary.complete());
        assert_eq!(summary.done(), 2);
        assert_eq!(summary.tasks[0].pending(), summary.total() - 2);
        let p = summary.last_progress.as_ref().expect("heartbeat journaled");
        assert_eq!(p.done, 2);
        let json = summary.to_json();
        assert_eq!(json.get("done").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("complete").and_then(Json::as_bool), Some(false));
        assert!(json.get("last_progress").is_some());
        assert!(json.get("unit_latency_us").is_some());
        // Both renders include the shared counts line.
        let frame = summary.render_watch();
        assert!(frame.contains(&summary.render_table()));
        assert!(frame.contains("stem latency"));
        assert!(frame.contains("throughput"));
    }
}
