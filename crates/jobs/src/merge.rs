//! Deterministic merging of journaled work units into a campaign report.
//!
//! The merged report is a pure function of the *set* of unit records:
//! independent of thread count, journal append order, and of whether the
//! campaign ran in one process or was killed and resumed. That holds
//! because per-fault candidates fold with the total order
//! [`IdentifiedFault::wins_over`] and every list in the canonical form
//! is sorted. [`CampaignReport::canonical_json`] excludes wall-clock
//! fields, so its bytes can be `diff`ed across runs.

use std::collections::HashMap;

use fires_core::{Fires, IdentifiedFault};
use fires_netlist::Fault;
use fires_obs::{Json, RuleProfile, RunMetrics, RunReport};

use crate::journal::{JournalContents, UnitStatus};
use crate::spec::ResolvedTask;

/// Merged results of one task.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Resolved circuit name.
    pub name: String,
    /// Whether the task ran with Definition-6 validation.
    pub validated: bool,
    /// Frame budget the task ran under.
    pub frame_budget: usize,
    /// Total work units (fanout stems) of the task.
    pub units_total: usize,
    /// Units with an `ok` journal record.
    pub units_ok: usize,
    /// Units journaled as panicked.
    pub units_panicked: usize,
    /// Units journaled as timed out.
    pub units_timed_out: usize,
    /// Units journaled as exhausted (budget hit). Their partial faults
    /// are **never** merged into `faults` — exhausted stems must not
    /// contribute to the redundancy claims `S^i`.
    pub units_exhausted: usize,
    /// Units whose terminal record needed at least one retry
    /// (observability only; not part of the canonical form).
    pub units_retried: usize,
    /// Retry/degradation event records journaled for this task
    /// (observability only; not part of the canonical form).
    pub retry_events: usize,
    /// Identified faults after per-fault dedup, sorted by
    /// `(line, stuck)`.
    pub faults: Vec<IdentifiedFault>,
    /// Human-readable fault names (same order as `faults`).
    pub fault_names: Vec<String>,
    /// Total uncontrollability marks across `ok` units.
    pub marks: u64,
    /// Widest frame window any `ok` unit used.
    pub max_frames_used: u64,
    /// Wall-clock seconds summed over this task's journaled units
    /// (observability only; not part of the canonical form).
    pub seconds: f64,
    /// Per-phase seconds summed across units, in first-seen order
    /// (observability only; not part of the canonical form).
    pub phases: Vec<(String, f64)>,
    /// Engine metrics merged across units (observability only; not part
    /// of the canonical form).
    pub metrics: RunMetrics,
    /// Per-rule engine hotspot profile merged across units that carried
    /// one; `None` when no unit did (untraced runs, old journals).
    /// Observability only; not part of the canonical form.
    pub profile: Option<RuleProfile>,
}

impl TaskReport {
    /// `true` when every unit completed with status `ok`.
    pub fn clean(&self) -> bool {
        self.units_ok == self.units_total
    }
}

/// Merged results of a whole campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign name (from the spec).
    pub campaign: String,
    /// Per-task reports, in spec order.
    pub tasks: Vec<TaskReport>,
}

/// Merges journal contents into a [`CampaignReport`].
///
/// `tasks` must be the spec's resolution in this build (the caller has
/// already verified the journal header against it) and `engines` the
/// matching engines, one per task — built once, e.g. via
/// [`runner::build_engines`](crate::runner::build_engines), and shared
/// with the runner rather than reconstructed here.
///
/// Duplicate records for the same `(task, stem)` unit — possible if two
/// processes ever appended to one journal concurrently — are collapsed
/// to the first occurrence, so every unit is counted exactly once and
/// the canonical report stays canonical. (Unit results are deterministic
/// functions of the unit, so duplicates differ only in timing.)
pub fn merge(
    contents: &JournalContents,
    tasks: &[ResolvedTask],
    engines: &[Fires],
) -> CampaignReport {
    assert_eq!(
        tasks.len(),
        engines.len(),
        "one engine per resolved task, in task order"
    );
    let mut seen = std::collections::HashSet::new();
    let mut reports = Vec::with_capacity(tasks.len());
    for (t, task) in tasks.iter().enumerate() {
        let fires = &engines[t];
        let stems = fires.stems();
        let mut best: HashMap<Fault, IdentifiedFault> = HashMap::new();
        let mut report = TaskReport {
            name: task.name.clone(),
            validated: task.config.validate,
            frame_budget: task.config.max_frames,
            units_total: stems.len(),
            units_ok: 0,
            units_panicked: 0,
            units_timed_out: 0,
            units_exhausted: 0,
            units_retried: 0,
            retry_events: contents.events.iter().filter(|e| e.task == t).count(),
            faults: Vec::new(),
            fault_names: Vec::new(),
            marks: 0,
            max_frames_used: 0,
            seconds: 0.0,
            phases: Vec::new(),
            metrics: RunMetrics::default(),
            profile: None,
        };
        for unit in contents.units.iter().filter(|u| u.task == t) {
            if !seen.insert((unit.task, unit.stem)) {
                continue;
            }
            report.seconds += unit.seconds;
            for (name, secs) in &unit.phases {
                match report.phases.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += secs,
                    None => report.phases.push((name.clone(), *secs)),
                }
            }
            report.metrics.merge(&unit.metrics);
            if let Some(p) = &unit.profile {
                report.profile.get_or_insert_with(RuleProfile::new).merge(p);
            }
            if unit.retries > 0 {
                report.units_retried += 1;
            }
            match unit.status {
                UnitStatus::Panic => report.units_panicked += 1,
                UnitStatus::Timeout => report.units_timed_out += 1,
                // Partial results stay out of every canonical result
                // field (faults, marks, frames): only the count is kept.
                UnitStatus::Exhausted => report.units_exhausted += 1,
                UnitStatus::Ok => {
                    report.units_ok += 1;
                    report.marks += unit.marks;
                    report.max_frames_used = report.max_frames_used.max(unit.frames);
                    for cand in unit.identified(stems[unit.stem]) {
                        best.entry(cand.fault)
                            .and_modify(|e| {
                                if cand.wins_over(e) {
                                    *e = cand;
                                }
                            })
                            .or_insert(cand);
                    }
                }
            }
        }
        report.faults = best.into_values().collect();
        report
            .faults
            .sort_unstable_by_key(|f| (f.fault.line, f.fault.stuck.as_bool()));
        report.fault_names = report
            .faults
            .iter()
            .map(|f| f.fault.display(fires.lines(), &task.circuit))
            .collect();
        reports.push(report);
    }
    CampaignReport {
        campaign: contents.header.spec.name.clone(),
        tasks: reports,
    }
}

impl CampaignReport {
    /// The canonical, timing-free JSON form. Byte-identical for the same
    /// set of unit records, regardless of thread count, append order or
    /// resume points.
    pub fn canonical_json(&self) -> Json {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for t in &self.tasks {
            let faults = t
                .faults
                .iter()
                .map(|f| {
                    Json::Arr(vec![
                        Json::Num(f.fault.line.index() as f64),
                        Json::Num(if f.fault.stuck.as_bool() { 1.0 } else { 0.0 }),
                        Json::Num(f.c as f64),
                        Json::Num(f.frame as f64),
                        Json::Num(f.stem.index() as f64),
                    ])
                })
                .collect();
            let mut j = Json::object();
            j.set("circuit", t.name.clone())
                .set("validated", t.validated)
                .set("frame_budget", t.frame_budget as u64)
                .set("units_total", t.units_total as u64)
                .set("units_ok", t.units_ok as u64)
                .set("units_panicked", t.units_panicked as u64)
                .set("units_timed_out", t.units_timed_out as u64)
                .set("units_exhausted", t.units_exhausted as u64)
                .set("identified_faults", t.faults.len() as u64)
                .set("faults", Json::Arr(faults))
                .set(
                    "fault_names",
                    Json::Arr(t.fault_names.iter().cloned().map(Json::Str).collect()),
                )
                .set("marks", t.marks)
                .set("max_frames_used", t.max_frames_used);
            tasks.push(j);
        }
        let mut j = Json::object();
        j.set("campaign", self.campaign.clone())
            .set("schema", crate::journal::JOURNAL_SCHEMA)
            .set("tasks", Json::Arr(tasks));
        j
    }

    /// The canonical form as pretty JSON text (what determinism tests and
    /// the CI resilience check `diff`).
    pub fn canonical_text(&self) -> String {
        self.canonical_json().to_pretty()
    }

    /// Per-task observability reports plus the campaign-level rollup
    /// (via [`RunReport::aggregate`]). Includes wall-clock totals, so —
    /// unlike the canonical form — not run-to-run stable.
    pub fn run_reports(&self) -> (Vec<RunReport>, RunReport) {
        let children: Vec<RunReport> = self
            .tasks
            .iter()
            .map(|t| {
                let mut r = RunReport::new("fires/task", t.name.clone());
                r.total_seconds = t.seconds;
                r.phases = t.phases.clone();
                r.metrics = t.metrics.clone();
                r.profile = t.profile.clone();
                r.set_extra("identified_faults", t.faults.len() as u64)
                    .set_extra("units_total", t.units_total as u64)
                    .set_extra("units_ok", t.units_ok as u64)
                    .set_extra("units_panicked", t.units_panicked as u64)
                    .set_extra("units_timed_out", t.units_timed_out as u64)
                    .set_extra("units_exhausted", t.units_exhausted as u64)
                    .set_extra("units_retried", t.units_retried as u64)
                    .set_extra("retry_events", t.retry_events as u64)
                    .set_extra("marks", t.marks)
                    .set_extra("max_frames_used", t.max_frames_used)
                    .set_extra("validated", t.validated);
                r
            })
            .collect();
        let campaign = RunReport::aggregate("fires/campaign", self.campaign.clone(), &children);
        (children, campaign)
    }

    /// A compact fixed-width table for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>8} {:>8}\n",
            "circuit", "units", "ok", "bad", "exh", "faults", "marks", "max_fr", "seconds"
        ));
        for t in &self.tasks {
            out.push_str(&format!(
                "{:<12} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>8} {:>8.3}\n",
                t.name,
                t.units_total,
                t.units_ok,
                t.units_panicked + t.units_timed_out,
                t.units_exhausted,
                t.faults.len(),
                t.marks,
                t.max_frames_used,
                t.seconds,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{self, UnitRecord};
    use crate::runner::{build_engines, run, RunnerConfig};
    use crate::spec::CampaignSpec;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fires-merge-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("job.jsonl")
    }

    #[test]
    fn merged_report_matches_direct_run() {
        let path = temp("direct");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let contents = journal::read(&path).unwrap();
        let tasks = spec.resolve().unwrap();
        let merged = merge(&contents, &tasks, &build_engines(&tasks).unwrap());

        // The same circuit run through the plain core driver.
        let direct = Fires::try_new(&tasks[0].circuit, tasks[0].config)
            .unwrap()
            .run();
        let mut direct_faults: Vec<_> = direct.redundant_faults().to_vec();
        direct_faults.sort_unstable_by_key(|f| (f.fault.line, f.fault.stuck.as_bool()));
        assert_eq!(merged.tasks[0].faults, direct_faults);
        assert!(merged.tasks[0].clean());
    }

    #[test]
    fn canonical_text_ignores_append_order_and_timing() {
        let path = temp("order");
        let spec = CampaignSpec::from_circuits("t", ["s27", "fig3"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let contents = journal::read(&path).unwrap();
        let tasks = spec.resolve().unwrap();
        let engines = build_engines(&tasks).unwrap();
        let text = merge(&contents, &tasks, &engines).canonical_text();

        let mut shuffled = contents.clone();
        shuffled.units.reverse();
        for u in &mut shuffled.units {
            u.seconds *= 10.0;
        }
        let text2 = merge(&shuffled, &tasks, &engines).canonical_text();
        assert_eq!(text, text2);
    }

    #[test]
    fn duplicate_unit_records_are_collapsed() {
        let path = temp("dup");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let contents = journal::read(&path).unwrap();
        let tasks = spec.resolve().unwrap();
        let engines = build_engines(&tasks).unwrap();
        let text = merge(&contents, &tasks, &engines).canonical_text();

        // A concurrent appender would duplicate whole unit records; the
        // merge must count each (task, stem) exactly once.
        let mut doubled = contents.clone();
        doubled.units.extend(contents.units.iter().cloned());
        let merged = merge(&doubled, &tasks, &engines);
        assert_eq!(merged.tasks[0].units_ok, merged.tasks[0].units_total);
        assert_eq!(merged.canonical_text(), text);
    }

    #[test]
    fn failed_units_are_counted_not_merged() {
        let path = temp("failed");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let mut contents = journal::read(&path).unwrap();
        contents.units[0] = UnitRecord {
            status: crate::journal::UnitStatus::Panic,
            faults: vec![],
            marks: 0,
            frames: 0,
            ..contents.units[0].clone()
        };
        let tasks = spec.resolve().unwrap();
        let merged = merge(&contents, &tasks, &build_engines(&tasks).unwrap());
        assert_eq!(merged.tasks[0].units_panicked, 1);
        assert!(!merged.tasks[0].clean());
        assert_eq!(merged.tasks[0].units_ok + 1, merged.tasks[0].units_total);
    }

    #[test]
    fn exhausted_partials_never_reach_the_fault_list() {
        let path = temp("exhausted");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let mut contents = journal::read(&path).unwrap();
        // Forge the journal every unit would produce under a budget: same
        // faults, but flagged exhausted. None of them may be claimed.
        for u in &mut contents.units {
            u.status = crate::journal::UnitStatus::Exhausted;
            u.reason = Some(fires_core::ExhaustionReason::Steps);
        }
        let tasks = spec.resolve().unwrap();
        let merged = merge(&contents, &tasks, &build_engines(&tasks).unwrap());
        assert_eq!(merged.tasks[0].units_exhausted, merged.tasks[0].units_total);
        assert_eq!(merged.tasks[0].units_ok, 0);
        assert!(merged.tasks[0].faults.is_empty());
        assert_eq!(merged.tasks[0].marks, 0);
        assert!(merged.canonical_text().contains("\"units_exhausted\""));
        // The degenerate all-exhausted campaign still renders and rolls
        // up without panicking.
        let _ = merged.render_table();
        let (_, campaign) = merged.run_reports();
        assert_eq!(
            campaign.extra.get("task_count").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn retried_units_do_not_change_the_canonical_form() {
        let path = temp("retried");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let contents = journal::read(&path).unwrap();
        let tasks = spec.resolve().unwrap();
        let engines = build_engines(&tasks).unwrap();
        let text = merge(&contents, &tasks, &engines).canonical_text();

        let mut retried = contents.clone();
        for u in &mut retried.units {
            u.retries = 3;
        }
        retried.events.push(crate::journal::EventRecord {
            seq: 0,
            task: 0,
            stem: 0,
            attempt: 0,
            what: "unit-retry".into(),
            detail: "attempt panicked; caches rebuilt".into(),
        });
        let merged = merge(&retried, &tasks, &engines);
        assert_eq!(merged.tasks[0].units_retried, merged.tasks[0].units_total);
        assert_eq!(merged.tasks[0].retry_events, 1);
        assert_eq!(merged.canonical_text(), text);
    }

    #[test]
    fn all_poisoned_campaign_merges_without_panicking() {
        let path = temp("all-poisoned");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let mut contents = journal::read(&path).unwrap();
        for u in &mut contents.units {
            u.status = crate::journal::UnitStatus::Panic;
            u.faults.clear();
            u.marks = 0;
            u.frames = 0;
        }
        let tasks = spec.resolve().unwrap();
        let merged = merge(&contents, &tasks, &build_engines(&tasks).unwrap());
        assert_eq!(merged.tasks[0].units_panicked, merged.tasks[0].units_total);
        assert!(merged.tasks[0].faults.is_empty());
        let _ = merged.render_table();
        let _ = merged.run_reports();
    }

    #[test]
    fn zero_unit_campaign_merges_without_panicking() {
        let path = temp("zero-units");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let mut contents = journal::read(&path).unwrap();
        contents.units.clear();
        contents.events.clear();
        let tasks = spec.resolve().unwrap();
        let merged = merge(&contents, &tasks, &build_engines(&tasks).unwrap());
        assert_eq!(merged.tasks[0].units_ok, 0);
        assert!(merged.tasks[0].faults.is_empty());
        let _ = merged.render_table();
        let (_, campaign) = merged.run_reports();
        assert_eq!(campaign.total_seconds, 0.0);
    }

    #[test]
    fn profiles_ride_beside_the_canonical_form() {
        let path = temp("profiles");
        let spec = CampaignSpec::from_circuits("t", ["s27"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let contents = journal::read(&path).unwrap();
        let tasks = spec.resolve().unwrap();
        let engines = build_engines(&tasks).unwrap();
        let merged = merge(&contents, &tasks, &engines);
        // This build traces by default, so every unit carried a profile
        // and the task-level merge accumulated them all.
        let task_profile = merged.tasks[0].profile.as_ref().expect("merged profile");
        assert!(task_profile.total_steps() > 0);
        let unit_steps: u64 = contents
            .units
            .iter()
            .filter_map(|u| u.profile.as_ref())
            .map(RuleProfile::total_steps)
            .sum();
        assert_eq!(task_profile.total_steps(), unit_steps);
        // The campaign rollup aggregates it into the v4 report...
        let (children, campaign) = merged.run_reports();
        assert_eq!(children[0].profile.as_ref(), Some(task_profile));
        assert_eq!(
            campaign.profile.as_ref().map(RuleProfile::total_steps),
            Some(unit_steps)
        );
        // ...while the canonical bytes are blind to profiles entirely.
        let text = merged.canonical_text();
        assert!(!text.contains("profile"));
        let mut stripped = contents.clone();
        for u in &mut stripped.units {
            u.profile = None;
        }
        assert_eq!(merge(&stripped, &tasks, &engines).canonical_text(), text);
    }

    #[test]
    fn run_reports_aggregate() {
        let path = temp("obsrep");
        let spec = CampaignSpec::from_circuits("t", ["s27", "fig3"]);
        run(&spec, &path, &RunnerConfig::default()).unwrap();
        let contents = journal::read(&path).unwrap();
        let tasks = spec.resolve().unwrap();
        let merged = merge(&contents, &tasks, &build_engines(&tasks).unwrap());
        let (children, campaign) = merged.run_reports();
        assert_eq!(children.len(), 2);
        assert_eq!(campaign.subject, "t");
        assert_eq!(
            campaign.extra.get("task_count").and_then(Json::as_u64),
            Some(2)
        );
    }
}
