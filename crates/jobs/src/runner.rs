//! The campaign runner: a work-stealing worker pool over per-stem work
//! units, with panic isolation, per-unit deadlines and incremental
//! journaling.
//!
//! Work units are `(task, stem)` pairs in the deterministic order
//! (task order × canonical stem order). Workers self-schedule by
//! `fetch_add` on a shared cursor — no unit is ever run twice, and any
//! interleaving merges to the same report (see
//! [`IdentifiedFault::wins_over`](fires_core::IdentifiedFault)).
//!
//! A unit that panics poisons only itself: the panic is caught, the unit
//! is journaled with status `panic`, the worker rebuilds its per-task
//! caches (they may be mid-update) and moves on. A unit that overruns
//! `stem_deadline` is cancelled cooperatively and journaled as
//! `timeout`. Both are *recorded* failures — `fires resume` will not
//! retry them unless the journal is deleted.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fires_core::{CancelToken, CoreError, Fires, StemCtx};

use crate::error::JobError;
use crate::journal::{self, Journal, JournalContents, UnitRecord, UnitStatus};
use crate::spec::{CampaignSpec, ResolvedTask};

/// Knobs of one `run`/`resume` invocation (campaign contents live in the
/// spec/journal, not here).
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Worker threads; 0 or 1 runs serially on the calling thread.
    pub threads: usize,
    /// Wall-clock budget per work unit; `None` means unbounded.
    pub stem_deadline: Option<Duration>,
    /// Stop scheduling after this many *new* units have been journaled.
    /// A test hook that simulates a mid-campaign kill at a deterministic
    /// point; production runs leave it `None`.
    pub max_units: Option<usize>,
    /// Fault-injection hook for robustness tests: called before each
    /// unit, may order the runner to panic inside the unit or sleep past
    /// the deadline. A plain `fn` pointer so the config stays `Copy`.
    pub inject: Option<fn(task: usize, stem: usize) -> Injection>,
}

/// What the [`RunnerConfig::inject`] hook asks a unit to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Run normally.
    Run,
    /// Panic inside the unit (exercises panic isolation).
    Panic,
    /// Sleep this long before running (exercises deadline handling).
    Sleep(Duration),
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            threads: 1,
            stem_deadline: None,
            max_units: None,
            inject: None,
        }
    }
}

/// What one `run`/`resume` invocation did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Units completed by *this* invocation (any status).
    pub executed: usize,
    /// Units skipped because a prior invocation had journaled them.
    pub skipped: usize,
    /// Units of this invocation that ended in `panic`.
    pub panicked: usize,
    /// Units of this invocation that ended in `timeout`.
    pub timed_out: usize,
    /// Units still unprocessed (only nonzero when `max_units` stopped
    /// the run early — or the process was killed harder than that).
    pub remaining: usize,
}

impl RunSummary {
    /// `true` when every unit of the campaign has a journal record.
    pub fn complete(&self) -> bool {
        self.remaining == 0
    }
}

/// Creates the journal at `journal_path` and runs the campaign.
///
/// # Errors
///
/// Spec resolution errors, or [`JobError::Io`] — notably when the
/// journal already exists (resume it instead).
pub fn run(
    spec: &CampaignSpec,
    journal_path: &Path,
    rc: &RunnerConfig,
) -> Result<RunSummary, JobError> {
    let tasks = spec.resolve()?;
    let engines = build_engines(&tasks)?;
    let stem_ids: Vec<Vec<fires_netlist::LineId>> = engines.iter().map(|e| e.stems()).collect();
    let stems: Vec<usize> = stem_ids.iter().map(Vec::len).collect();
    let header = journal::header_for(spec, &tasks, &stems);
    let journal = Journal::create(journal_path, &header)?;
    let fresh = JournalContents {
        header,
        units: Vec::new(),
        torn: false,
    };
    execute(&engines, &stem_ids, journal, &fresh, rc)
}

/// Re-opens an existing journal and runs every unit it has no record of.
///
/// The journal header is verified against this build first: if a circuit
/// generator or the stem order changed since the journal was written,
/// resuming would misattribute work, so it is refused with
/// [`JobError::Mismatch`].
pub fn resume(journal_path: &Path, rc: &RunnerConfig) -> Result<RunSummary, JobError> {
    let contents = journal::read(journal_path)?;
    let tasks = contents.header.spec.resolve()?;
    let engines = build_engines(&tasks)?;
    let stem_ids: Vec<Vec<fires_netlist::LineId>> = engines.iter().map(|e| e.stems()).collect();
    let stems: Vec<usize> = stem_ids.iter().map(Vec::len).collect();
    journal::verify_header(&contents.header, &tasks, &stems)?;
    let journal = Journal::append_to(journal_path)?;
    execute(&engines, &stem_ids, journal, &contents, rc)
}

/// Builds one [`Fires`] engine per resolved task, in task order.
///
/// Engine setup is the expensive part of a campaign's fixed cost, so the
/// runner, [`report`](crate::report) and [`merge`](crate::merge::merge)
/// all build the engines exactly once and share them.
pub fn build_engines(tasks: &[ResolvedTask]) -> Result<Vec<Fires<'_>>, JobError> {
    tasks
        .iter()
        .map(|t| Ok(Fires::try_new(&t.circuit, t.config)?))
        .collect()
}

/// Suppresses the default panic-hook backtrace for panics the runner
/// catches on purpose (injected ones and genuine stem bugs alike), while
/// leaving panics elsewhere as loud as ever.
fn quiet_caught_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|f| f.load(Ordering::Relaxed)) {
                previous(info);
            }
        }));
    });
}

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: AtomicBool = const { AtomicBool::new(false) };
}

fn execute(
    engines: &[Fires],
    stem_ids: &[Vec<fires_netlist::LineId>],
    journal: Journal,
    prior: &JournalContents,
    rc: &RunnerConfig,
) -> Result<RunSummary, JobError> {
    quiet_caught_panics();
    let done = prior.done();
    // The full deterministic unit list; `done` units are skipped at
    // claim time so indices stay identical across run and resume.
    let units: Vec<(usize, usize)> = stem_ids
        .iter()
        .enumerate()
        .flat_map(|(t, ids)| (0..ids.len()).map(move |s| (t, s)))
        .collect();
    let skipped = units.iter().filter(|u| done.contains(u)).count();

    let cursor = AtomicUsize::new(0);
    let budget = AtomicUsize::new(rc.max_units.unwrap_or(usize::MAX));
    let journal = Mutex::new(journal);
    let failure: Mutex<Option<JobError>> = Mutex::new(None);
    let executed = AtomicUsize::new(0);
    let panicked = AtomicUsize::new(0);
    let timed_out = AtomicUsize::new(0);

    let worker = || {
        // Implication caches are per-circuit; keyed by task index. A
        // panicked unit may leave them mid-update, so they are rebuilt
        // after every catch.
        let mut ctxs: HashMap<usize, StemCtx> = HashMap::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(task, stem)) = units.get(i) else {
                return;
            };
            if done.contains(&(task, stem)) {
                continue;
            }
            // Claim budget *before* running, so `max_units` cuts the
            // campaign at an exact unit count.
            if budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_err()
            {
                return;
            }
            let record = run_unit(
                &engines[task],
                stem_ids[task][stem],
                task,
                stem,
                ctxs.entry(task).or_default(),
                rc,
            );
            if record.status == UnitStatus::Panic {
                ctxs.remove(&task);
                panicked.fetch_add(1, Ordering::Relaxed);
            }
            if record.status == UnitStatus::Timeout {
                timed_out.fetch_add(1, Ordering::Relaxed);
            }
            executed.fetch_add(1, Ordering::Relaxed);
            let result = journal
                .lock()
                .expect("journal lock poisoned")
                .append(&record);
            if let Err(e) = result {
                *failure.lock().expect("failure lock poisoned") = Some(e);
                return;
            }
        }
    };

    let threads = rc.threads.max(1);
    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }

    if let Some(e) = failure.into_inner().expect("failure lock poisoned") {
        return Err(e);
    }
    let executed = executed.into_inner();
    Ok(RunSummary {
        executed,
        skipped,
        panicked: panicked.into_inner(),
        timed_out: timed_out.into_inner(),
        remaining: units.len() - skipped - executed,
    })
}

fn run_unit(
    fires: &Fires,
    stem_line: fires_netlist::LineId,
    task: usize,
    stem: usize,
    ctx: &mut StemCtx,
    rc: &RunnerConfig,
) -> UnitRecord {
    let started = Instant::now();
    let cancel = match rc.stem_deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::never(),
    };
    let injection = rc
        .inject
        .map(|hook| hook(task, stem))
        .unwrap_or(Injection::Run);
    SUPPRESS_PANIC_OUTPUT.with(|f| f.store(true, Ordering::Relaxed));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        match injection {
            Injection::Run => {}
            Injection::Panic => panic!("injected panic (robustness test)"),
            Injection::Sleep(d) => std::thread::sleep(d),
        }
        fires.run_stem(stem_line, ctx, &cancel)
    }));
    SUPPRESS_PANIC_OUTPUT.with(|f| f.store(false, Ordering::Relaxed));
    let seconds = started.elapsed().as_secs_f64();
    let empty = |status| UnitRecord {
        task,
        stem,
        status,
        faults: Vec::new(),
        marks: 0,
        frames: 0,
        seconds,
        phases: Vec::new(),
        metrics: Default::default(),
    };
    match outcome {
        Ok(Ok(findings)) => UnitRecord {
            task,
            stem,
            status: UnitStatus::Ok,
            faults: findings
                .faults
                .iter()
                .map(|f| {
                    (
                        f.fault.line.index() as u32,
                        f.fault.stuck.as_bool(),
                        f.c,
                        f.frame,
                    )
                })
                .collect(),
            marks: findings.marks as u64,
            frames: findings.frames_used as u64,
            seconds,
            phases: findings
                .phase_times
                .phases
                .iter()
                .map(|(name, d)| (name.clone(), d.as_secs_f64()))
                .collect(),
            metrics: findings.metrics,
        },
        Ok(Err(CoreError::Interrupted { .. })) => empty(UnitStatus::Timeout),
        // Any other CoreError here is a bug (stems come from the engine
        // itself), but a campaign must outlive bugs: record and move on.
        Ok(Err(_)) => empty(UnitStatus::Panic),
        Err(_) => empty(UnitStatus::Panic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::read;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fires-runner-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("job.jsonl")
    }

    fn small_spec() -> CampaignSpec {
        CampaignSpec::from_circuits("t", ["s27", "fig3"])
    }

    #[test]
    fn run_completes_and_journals_every_unit() {
        let path = temp("complete");
        let summary = run(&small_spec(), &path, &RunnerConfig::default()).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.skipped, 0);
        assert_eq!(summary.panicked, 0);
        let contents = read(&path).unwrap();
        let total: usize = contents.header.tasks.iter().map(|t| t.stems).sum();
        assert_eq!(contents.units.len(), total);
        assert_eq!(summary.executed, total);
    }

    #[test]
    fn run_refuses_existing_journal() {
        let path = temp("exists");
        run(&small_spec(), &path, &RunnerConfig::default()).unwrap();
        assert!(matches!(
            run(&small_spec(), &path, &RunnerConfig::default()),
            Err(JobError::Io { .. })
        ));
    }

    #[test]
    fn max_units_stops_early_and_resume_finishes() {
        let path = temp("resume");
        let rc = RunnerConfig {
            max_units: Some(3),
            ..Default::default()
        };
        let first = run(&small_spec(), &path, &rc).unwrap();
        assert_eq!(first.executed, 3);
        assert!(!first.complete());
        let second = resume(&path, &RunnerConfig::default()).unwrap();
        assert_eq!(second.skipped, 3);
        assert!(second.complete());
        assert_eq!(second.executed, first.remaining);
    }

    #[test]
    fn resume_after_a_torn_final_line_leaves_a_clean_journal() {
        let path = temp("torn-resume");
        let rc = RunnerConfig {
            max_units: Some(2),
            ..Default::default()
        };
        run(&small_spec(), &path, &rc).unwrap();
        // Simulate a kill mid-append: half a record, no newline.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"kind\":\"unit\",\"task\":0,\"ste").unwrap();
        drop(f);
        let summary = resume(&path, &RunnerConfig::default()).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.skipped, 2);
        // Every later read must succeed: the fragment is gone, not glued
        // to the first resumed record.
        let contents = read(&path).unwrap();
        assert!(!contents.torn);
        let total: usize = contents.header.tasks.iter().map(|t| t.stems).sum();
        assert_eq!(contents.units.len(), total);
        crate::report(&path).unwrap();
    }

    #[test]
    fn injected_panic_poisons_only_its_unit() {
        let path = temp("panic");
        fn inject(task: usize, stem: usize) -> Injection {
            if task == 0 && stem == 1 {
                Injection::Panic
            } else {
                Injection::Run
            }
        }
        let rc = RunnerConfig {
            inject: Some(inject),
            ..Default::default()
        };
        let summary = run(&small_spec(), &path, &rc).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.panicked, 1);
        let contents = read(&path).unwrap();
        let bad: Vec<_> = contents
            .units
            .iter()
            .filter(|u| u.status == UnitStatus::Panic)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!((bad[0].task, bad[0].stem), (0, 1));
    }

    #[test]
    fn injected_overrun_times_out_only_its_unit() {
        let path = temp("deadline");
        fn inject(task: usize, stem: usize) -> Injection {
            if task == 1 && stem == 0 {
                Injection::Sleep(Duration::from_millis(50))
            } else {
                Injection::Run
            }
        }
        let rc = RunnerConfig {
            stem_deadline: Some(Duration::from_millis(10)),
            inject: Some(inject),
            ..Default::default()
        };
        let summary = run(&small_spec(), &path, &rc).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.timed_out, 1);
        let contents = read(&path).unwrap();
        let slow: Vec<_> = contents
            .units
            .iter()
            .filter(|u| u.status == UnitStatus::Timeout)
            .collect();
        assert_eq!(slow.len(), 1);
        assert_eq!((slow[0].task, slow[0].stem), (1, 0));
    }

    #[test]
    fn threaded_run_covers_every_unit_once() {
        let path = temp("threads");
        let rc = RunnerConfig {
            threads: 8,
            ..Default::default()
        };
        run(&small_spec(), &path, &rc).unwrap();
        let contents = read(&path).unwrap();
        let mut seen = std::collections::HashSet::new();
        for u in &contents.units {
            assert!(seen.insert((u.task, u.stem)), "unit ran twice");
        }
        let total: usize = contents.header.tasks.iter().map(|t| t.stems).sum();
        assert_eq!(seen.len(), total);
    }
}
