//! The campaign runner: a work-stealing worker pool over per-stem work
//! units, with panic isolation, per-unit deadlines and incremental
//! journaling.
//!
//! Work units are `(task, stem)` pairs in the deterministic order
//! (task order × canonical stem order). Workers self-schedule by
//! `fetch_add` on a shared cursor — no unit is ever run twice, and any
//! interleaving merges to the same report (see
//! [`IdentifiedFault::wins_over`](fires_core::IdentifiedFault)).
//!
//! A unit that panics poisons only itself: the panic is caught, the
//! worker rebuilds its per-task caches (they may be mid-update) and —
//! when [`RunnerConfig::retries`] allows — re-runs the unit, journaling
//! a retry event per failed attempt. A unit still panicking after its
//! retries is quarantined: journaled with terminal status `panic` and
//! never re-run. A unit that overruns `stem_deadline` is cancelled
//! cooperatively and journaled as `timeout` (not retried: the deadline
//! would just elapse again); one that trips its [`Budget`] is journaled
//! as `exhausted` with its partial results (not retried: exhaustion is
//! deterministic). All three are *recorded* terminal outcomes — `fires
//! resume` will not retry them unless the journal is deleted.
//!
//! Journal appends that fail with a transient IO error are themselves
//! retried with exponential backoff ([`RunnerConfig::backoff`]), after
//! repairing any torn tail the failed append left
//! ([`Journal::recover`]); only a persistently failing journal aborts
//! the campaign.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fires_core::{Budget, CancelToken, CoreError, Fires, StemCtx, StemOutcome};

use crate::chaos::ChaosPlan;
use crate::error::JobError;
use crate::journal::{
    self, EventRecord, Journal, JournalContents, ProgressRecord, UnitRecord, UnitStatus,
};
use crate::spec::{CampaignSpec, ResolvedTask};

/// Locks a mutex, tolerating poisoning: a worker that panicked while
/// holding the lock left data no worse than a kill would, and the
/// journal protocol is already kill-safe.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Hooks into per-unit execution milestones, for embedders that
/// correlate runner activity with outside context (the `fires serve`
/// request tracer). Every method has an empty default body, so an
/// observer implements only what it needs; `None` in the config — the
/// default — costs one branch per milestone and nothing else.
///
/// Methods are called from worker threads, concurrently; `token` is
/// [`RunnerConfig::trace_token`], passed through verbatim so one
/// process-wide observer can demultiplex runs without interior state
/// in the `Copy` config.
pub trait UnitObserver: Sync + std::fmt::Debug {
    /// A worker claimed `(task, stem)` and is about to execute it.
    fn unit_claimed(&self, token: u64, task: usize, stem: usize) {
        let _ = (token, task, stem);
    }

    /// The unit reached its terminal outcome after `seconds` of
    /// wall-clock (any status — the observer sees retries as one unit).
    fn unit_finished(&self, token: u64, task: usize, stem: usize, seconds: f64) {
        let _ = (token, task, stem, seconds);
    }

    /// The unit's terminal record is durably journaled (flushed).
    fn unit_journaled(&self, token: u64, task: usize, stem: usize) {
        let _ = (token, task, stem);
    }
}

/// Knobs of one `run`/`resume` invocation (campaign contents live in the
/// spec/journal, not here).
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Worker threads; 0 or 1 runs serially on the calling thread.
    pub threads: usize,
    /// Wall-clock budget per work unit; `None` means unbounded.
    pub stem_deadline: Option<Duration>,
    /// Stop scheduling after this many *new* units have been journaled.
    /// A test hook that simulates a mid-campaign kill at a deterministic
    /// point; production runs leave it `None`.
    pub max_units: Option<usize>,
    /// Fault-injection hook for robustness tests: called before each
    /// unit attempt, may order the runner to panic inside the unit or
    /// sleep past the deadline. A plain `fn` pointer so the config stays
    /// `Copy`.
    pub inject: Option<fn(task: usize, stem: usize) -> Injection>,
    /// How many times a panicked unit attempt or a failed journal append
    /// is retried before giving up (quarantine for units, campaign abort
    /// for the journal). 0 — the default — retries nothing.
    pub retries: u32,
    /// Base delay of the exponential backoff between journal-append
    /// retries (doubles per attempt). Unit retries do not wait: a panic
    /// is not load.
    pub backoff: Duration,
    /// Deterministic fault-injection plan for robustness tests; `None`
    /// in production.
    pub chaos: Option<ChaosPlan>,
    /// Cooperative stop flag for long-running embedders (`fires serve`
    /// draining on SIGTERM): once the flag is set, workers stop
    /// *claiming* new units. Units already in flight finish and are
    /// journaled, so the journal left behind is a clean checkpoint —
    /// [`resume`] completes exactly the unclaimed remainder and the
    /// merged report stays byte-identical to an uninterrupted run. A
    /// `&'static` reference keeps the config `Copy`; embedders hold a
    /// process-lifetime flag (a `static` or one intentional leak).
    pub stop: Option<&'static AtomicBool>,
    /// Minimum spacing between journaled progress heartbeats
    /// ([`ProgressRecord`]); `None` disables them. Heartbeats are
    /// best-effort observability for `fires watch`: a lost one is
    /// harmless and the canonical merge ignores them entirely, so they
    /// cannot perturb report determinism. One final heartbeat is always
    /// written when the invocation executed any units, so a finished
    /// campaign's last heartbeat shows `pending == 0`.
    pub progress_interval: Option<Duration>,
    /// Observer notified at per-unit milestones (claim, finish,
    /// journaled); `None` — the default — is zero-cost. A `&'static`
    /// reference for the same reason as [`stop`](Self::stop): the
    /// config stays `Copy` and embedders leak one process-lifetime
    /// observer.
    pub observer: Option<&'static dyn UnitObserver>,
    /// Opaque token handed to every [`observer`](Self::observer) call,
    /// so one shared observer can attribute milestones to the run that
    /// produced them (`fires serve` passes the job key). Meaningless
    /// without an observer.
    pub trace_token: u64,
}

/// What the [`RunnerConfig::inject`] hook asks a unit to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injection {
    /// Run normally.
    Run,
    /// Panic inside the unit (exercises panic isolation).
    Panic,
    /// Sleep this long before running (exercises deadline handling).
    Sleep(Duration),
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            threads: 1,
            stem_deadline: None,
            max_units: None,
            inject: None,
            retries: 0,
            backoff: Duration::from_millis(10),
            chaos: None,
            stop: None,
            progress_interval: Some(Duration::from_millis(500)),
            observer: None,
            trace_token: 0,
        }
    }
}

/// What one `run`/`resume` invocation did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Units completed by *this* invocation (any status).
    pub executed: usize,
    /// Units skipped because a prior invocation had journaled them.
    pub skipped: usize,
    /// Units of this invocation that ended in `panic`.
    pub panicked: usize,
    /// Units of this invocation that ended in `timeout`.
    pub timed_out: usize,
    /// Units of this invocation that ended in `exhausted` (budget hit;
    /// partial results journaled, excluded from redundancy claims).
    pub exhausted: usize,
    /// Retry attempts this invocation performed (unit re-runs plus
    /// journal re-appends), across all units.
    pub retried: usize,
    /// Units still unprocessed (only nonzero when `max_units` stopped
    /// the run early — or the process was killed harder than that).
    pub remaining: usize,
}

impl RunSummary {
    /// `true` when every unit of the campaign has a journal record.
    pub fn complete(&self) -> bool {
        self.remaining == 0
    }
}

/// Creates the journal at `journal_path` and runs the campaign.
///
/// # Errors
///
/// Spec resolution errors, or [`JobError::Io`] — notably when the
/// journal already exists (resume it instead).
pub fn run(
    spec: &CampaignSpec,
    journal_path: &Path,
    rc: &RunnerConfig,
) -> Result<RunSummary, JobError> {
    let tasks = spec.resolve()?;
    run_with_tasks(spec, &tasks, journal_path, rc)
}

/// [`run`] over an already-resolved task list.
///
/// `tasks` must be the output of `spec.resolve()` in this build. Task
/// resolution generates every circuit and is a campaign's fixed setup
/// cost, so long-running embedders (`fires serve`'s engine-build cache)
/// resolve once and pass the shared resolution to each run instead of
/// paying it per submission.
pub fn run_with_tasks(
    spec: &CampaignSpec,
    tasks: &[ResolvedTask],
    journal_path: &Path,
    rc: &RunnerConfig,
) -> Result<RunSummary, JobError> {
    let engines = build_engines(tasks)?;
    let budgets: Vec<Budget> = tasks.iter().map(|t| t.budget).collect();
    let stem_ids: Vec<Vec<fires_netlist::LineId>> = engines.iter().map(|e| e.stems()).collect();
    let stems: Vec<usize> = stem_ids.iter().map(Vec::len).collect();
    let header = journal::header_for(spec, tasks, &stems);
    let journal = Journal::create(journal_path, &header)?;
    let fresh = JournalContents {
        header,
        units: Vec::new(),
        events: Vec::new(),
        progress: Vec::new(),
        torn: false,
    };
    execute(&engines, &stem_ids, &budgets, journal, &fresh, rc)
}

/// Re-opens an existing journal and runs every unit it has no record of.
///
/// The journal header is verified against this build first: if a circuit
/// generator or the stem order changed since the journal was written,
/// resuming would misattribute work, so it is refused with
/// [`JobError::Mismatch`].
pub fn resume(journal_path: &Path, rc: &RunnerConfig) -> Result<RunSummary, JobError> {
    let contents = journal::read(journal_path)?;
    let tasks = contents.header.spec.resolve()?;
    let engines = build_engines(&tasks)?;
    let budgets: Vec<Budget> = tasks.iter().map(|t| t.budget).collect();
    let stem_ids: Vec<Vec<fires_netlist::LineId>> = engines.iter().map(|e| e.stems()).collect();
    let stems: Vec<usize> = stem_ids.iter().map(Vec::len).collect();
    journal::verify_header(&contents.header, &tasks, &stems)?;
    let journal = Journal::append_to(journal_path)?;
    execute(&engines, &stem_ids, &budgets, journal, &contents, rc)
}

/// Builds one [`Fires`] engine per resolved task, in task order.
///
/// Engine setup is the expensive part of a campaign's fixed cost, so the
/// runner, [`report`](crate::report) and [`merge`](crate::merge::merge)
/// all build the engines exactly once and share them.
pub fn build_engines(tasks: &[ResolvedTask]) -> Result<Vec<Fires<'_>>, JobError> {
    tasks
        .iter()
        .map(|t| Ok(Fires::try_new(&t.circuit, t.config)?))
        .collect()
}

/// Suppresses the default panic-hook backtrace for panics the runner
/// catches on purpose (injected ones and genuine stem bugs alike), while
/// leaving panics elsewhere as loud as ever.
fn quiet_caught_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|f| f.load(Ordering::Relaxed)) {
                previous(info);
            }
        }));
    });
}

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: AtomicBool = const { AtomicBool::new(false) };
}

fn execute(
    engines: &[Fires],
    stem_ids: &[Vec<fires_netlist::LineId>],
    budgets: &[Budget],
    journal: Journal,
    prior: &JournalContents,
    rc: &RunnerConfig,
) -> Result<RunSummary, JobError> {
    quiet_caught_panics();
    let done = prior.done();
    // The full deterministic unit list; `done` units are skipped at
    // claim time so indices stay identical across run and resume.
    let units: Vec<(usize, usize)> = stem_ids
        .iter()
        .enumerate()
        .flat_map(|(t, ids)| (0..ids.len()).map(move |s| (t, s)))
        .collect();
    let skipped = units.iter().filter(|u| done.contains(u)).count();

    let cursor = AtomicUsize::new(0);
    let unit_quota = AtomicUsize::new(rc.max_units.unwrap_or(usize::MAX));
    let journal = Mutex::new(journal);
    let failure: Mutex<Option<JobError>> = Mutex::new(None);
    let executed = AtomicUsize::new(0);
    let panicked = AtomicUsize::new(0);
    let timed_out = AtomicUsize::new(0);
    let exhausted = AtomicUsize::new(0);
    let retried = AtomicUsize::new(0);

    // Heartbeat state. Counts in a ProgressRecord are cumulative over
    // the whole journal, so a resumed run folds in the prior contents.
    let threads = rc.threads.max(1);
    let run_started = Instant::now();
    let last_beat_ms = AtomicU64::new(0);
    let busy = AtomicUsize::new(0);
    let prior_counts = {
        let count = |s: UnitStatus| prior.units.iter().filter(|u| u.status == s).count() as u64;
        (
            count(UnitStatus::Ok),
            count(UnitStatus::Panic),
            count(UnitStatus::Timeout),
            count(UnitStatus::Exhausted),
            prior.units.iter().map(|u| u.retries).sum::<u64>(),
        )
    };
    let heartbeat = || -> ProgressRecord {
        let (p_ok, p_panic, p_timeout, p_exhausted, p_retried) = prior_counts;
        let ex = executed.load(Ordering::Relaxed) as u64;
        let bad = panicked.load(Ordering::Relaxed) as u64
            + timed_out.load(Ordering::Relaxed) as u64
            + exhausted.load(Ordering::Relaxed) as u64;
        let done = skipped as u64 + ex;
        let elapsed = run_started.elapsed().as_secs_f64();
        ProgressRecord {
            done,
            pending: (units.len() as u64).saturating_sub(done),
            ok: p_ok + ex.saturating_sub(bad),
            panicked: p_panic + panicked.load(Ordering::Relaxed) as u64,
            timed_out: p_timeout + timed_out.load(Ordering::Relaxed) as u64,
            exhausted: p_exhausted + exhausted.load(Ordering::Relaxed) as u64,
            retried: p_retried + retried.load(Ordering::Relaxed) as u64,
            elapsed_seconds: elapsed,
            units_per_second: if elapsed > 0.0 {
                ex as f64 / elapsed
            } else {
                0.0
            },
            workers: threads as u64,
            busy: busy.load(Ordering::Relaxed) as u64,
        }
    };
    // Best-effort: the winning worker appends one heartbeat per elapsed
    // interval. A failed append is dropped silently — heartbeats carry
    // no result data and must never fail a campaign.
    let maybe_heartbeat = || {
        let Some(interval) = rc.progress_interval else {
            return;
        };
        let now_ms = run_started.elapsed().as_millis() as u64;
        let prev = last_beat_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(prev) >= interval.as_millis() as u64
            && last_beat_ms
                .compare_exchange(prev, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let _ = lock_unpoisoned(&journal).append_progress(&heartbeat());
        }
    };

    let worker = || {
        // Implication caches are per-circuit; keyed by task index. A
        // panicked unit may leave them mid-update, so they are rebuilt
        // after every catch.
        let mut ctxs: HashMap<usize, StemCtx> = HashMap::new();
        loop {
            // Checked before the claim so a drained unit stays
            // unclaimed for the resume, not skipped by a dead cursor.
            if rc.stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                return;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(task, stem)) = units.get(i) else {
                return;
            };
            if done.contains(&(task, stem)) {
                continue;
            }
            // Claim quota *before* running, so `max_units` cuts the
            // campaign at an exact unit count.
            if unit_quota
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_err()
            {
                return;
            }
            busy.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = rc.observer {
                o.unit_claimed(rc.trace_token, task, stem);
            }
            let (record, events) = run_unit(
                &engines[task],
                stem_ids[task][stem],
                task,
                stem,
                ctxs.entry(task)
                    .or_insert_with(|| StemCtx::builder().budget(budgets[task]).build()),
                budgets[task],
                rc,
            );
            busy.fetch_sub(1, Ordering::Relaxed);
            if let Some(o) = rc.observer {
                o.unit_finished(rc.trace_token, task, stem, record.seconds);
            }
            if record.status == UnitStatus::Panic {
                // Terminal panic: quarantine the unit and rebuild the
                // task's caches (the panic may have left them mid-update).
                ctxs.remove(&task);
                panicked.fetch_add(1, Ordering::Relaxed);
            }
            if record.status == UnitStatus::Timeout {
                timed_out.fetch_add(1, Ordering::Relaxed);
            }
            if record.status == UnitStatus::Exhausted {
                exhausted.fetch_add(1, Ordering::Relaxed);
            }
            retried.fetch_add(record.retries as usize, Ordering::Relaxed);
            executed.fetch_add(1, Ordering::Relaxed);
            for event in &events {
                match append_with_retry(&journal, rc, task, stem, |j| {
                    j.append_event(event).map(|_seq| ())
                }) {
                    Ok(io_retries) => {
                        retried.fetch_add(io_retries as usize, Ordering::Relaxed);
                    }
                    Err(e) => {
                        *lock_unpoisoned(&failure) = Some(e);
                        return;
                    }
                }
            }
            match append_with_retry(&journal, rc, task, stem, |j| j.append(&record)) {
                Ok(0) => {}
                Ok(io_retries) => {
                    retried.fetch_add(io_retries as usize, Ordering::Relaxed);
                    // Journal the recovered degradation (best-effort: the
                    // unit record itself is already safe on disk).
                    let _ = lock_unpoisoned(&journal).append_event(&EventRecord {
                        seq: 0,
                        task,
                        stem,
                        attempt: u64::from(io_retries),
                        what: "journal-retry".into(),
                        detail: format!(
                            "append succeeded after {io_retries} transient IO failure(s)"
                        ),
                    });
                }
                Err(e) => {
                    *lock_unpoisoned(&failure) = Some(e);
                    return;
                }
            }
            if let Some(o) = rc.observer {
                o.unit_journaled(rc.trace_token, task, stem);
            }
            maybe_heartbeat();
        }
    };

    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }

    // Final heartbeat: a finished (or cleanly stopped) invocation leaves
    // an up-to-date progress line so `fires watch` converges without
    // waiting for an interval to elapse.
    if rc.progress_interval.is_some() && executed.load(Ordering::Relaxed) > 0 {
        let _ = lock_unpoisoned(&journal).append_progress(&heartbeat());
    }

    let failure = match failure.into_inner() {
        Ok(f) => f,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(e) = failure {
        return Err(e);
    }
    let executed = executed.into_inner();
    Ok(RunSummary {
        executed,
        skipped,
        panicked: panicked.into_inner(),
        timed_out: timed_out.into_inner(),
        exhausted: exhausted.into_inner(),
        retried: retried.into_inner(),
        remaining: units.len() - skipped - executed,
    })
}

/// Exponential backoff delay before IO retry number `attempt`.
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(10))
}

/// Performs one journal write, retrying transient failures with
/// exponential backoff and tail repair. Chaos-injected failures (keyed
/// deterministically by `(task, stem, attempt)`) fire *before* any byte
/// reaches the file. Returns how many retries were needed.
fn append_with_retry(
    journal: &Mutex<Journal>,
    rc: &RunnerConfig,
    task: usize,
    stem: usize,
    write: impl Fn(&mut Journal) -> Result<(), JobError>,
) -> Result<u32, JobError> {
    let mut attempt: u32 = 0;
    loop {
        let injected = rc
            .chaos
            .is_some_and(|plan| plan.journal_append_fails(task, stem, attempt));
        let result = if injected {
            Err(JobError::io(
                lock_unpoisoned(journal).path().to_path_buf(),
                std::io::Error::other("chaos: injected journal append failure"),
            ))
        } else {
            write(&mut lock_unpoisoned(journal))
        };
        match result {
            Ok(()) => return Ok(attempt),
            Err(_) if attempt < rc.retries => {
                if !injected {
                    // A real failed append may have torn the tail;
                    // repair before retrying. Recovery failure is not
                    // fatal here — the retried append will surface it.
                    let _ = lock_unpoisoned(journal).recover();
                }
                std::thread::sleep(backoff_delay(rc.backoff, attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs one unit to its terminal record, retrying panicked attempts up
/// to `rc.retries` times. Also returns the retry events to journal
/// *before* the terminal record.
fn run_unit(
    fires: &Fires,
    stem_line: fires_netlist::LineId,
    task: usize,
    stem: usize,
    ctx: &mut StemCtx,
    budget: Budget,
    rc: &RunnerConfig,
) -> (UnitRecord, Vec<EventRecord>) {
    let started = Instant::now();
    let mut events = Vec::new();
    let mut attempt: u32 = 0;
    loop {
        let mut record = run_attempt(fires, stem_line, task, stem, ctx, rc, attempt, started);
        // Only panics are retried: a timeout would just run out of clock
        // again, and exhaustion is deterministic by design.
        if record.status == UnitStatus::Panic && attempt < rc.retries {
            // The panic may have left the shared implication caches
            // mid-update; rebuild them (and drop the scratch pool)
            // before the next attempt.
            *ctx = StemCtx::builder().budget(budget).build();
            events.push(EventRecord {
                seq: 0,
                task,
                stem,
                attempt: u64::from(attempt),
                what: "unit-retry".into(),
                detail: "attempt panicked; caches rebuilt".into(),
            });
            attempt += 1;
            continue;
        }
        record.retries = u64::from(attempt);
        return (record, events);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_attempt(
    fires: &Fires,
    stem_line: fires_netlist::LineId,
    task: usize,
    stem: usize,
    ctx: &mut StemCtx,
    rc: &RunnerConfig,
    attempt: u32,
    started: Instant,
) -> UnitRecord {
    let cancel = match rc.stem_deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::never(),
    };
    let injection = rc
        .inject
        .map(|hook| hook(task, stem))
        .unwrap_or(Injection::Run);
    let chaos = rc.chaos;
    SUPPRESS_PANIC_OUTPUT.with(|f| f.store(true, Ordering::Relaxed));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        match injection {
            Injection::Run => {}
            Injection::Panic => panic!("injected panic (robustness test)"),
            Injection::Sleep(d) => std::thread::sleep(d),
        }
        if let Some(plan) = chaos {
            if let Some(d) = plan.unit_delay(task, stem, attempt) {
                std::thread::sleep(d);
            }
            if plan.unit_panics(task, stem, attempt) {
                panic!("chaos: injected unit panic");
            }
        }
        fires.run_stem(stem_line, ctx, &cancel)
    }));
    SUPPRESS_PANIC_OUTPUT.with(|f| f.store(false, Ordering::Relaxed));
    let seconds = started.elapsed().as_secs_f64();
    let empty = |status| UnitRecord {
        task,
        stem,
        status,
        faults: Vec::new(),
        marks: 0,
        frames: 0,
        retries: 0,
        reason: None,
        seconds,
        phases: Vec::new(),
        metrics: Default::default(),
        profile: None,
    };
    match outcome {
        Ok(Ok(stem_outcome)) => {
            let (status, reason) = match &stem_outcome {
                StemOutcome::Complete(_) => (UnitStatus::Ok, None),
                StemOutcome::Exhausted { reason, .. } => (UnitStatus::Exhausted, Some(*reason)),
            };
            let findings = stem_outcome.into_findings();
            // Untraced builds produce a permanently empty profile; skip
            // the field entirely so their journals stay lean.
            let profile = (!findings.profile.is_empty()).then(|| findings.profile.clone());
            UnitRecord {
                task,
                stem,
                status,
                faults: findings
                    .faults
                    .iter()
                    .map(|f| {
                        (
                            f.fault.line.index() as u32,
                            f.fault.stuck.as_bool(),
                            f.c,
                            f.frame,
                        )
                    })
                    .collect(),
                marks: findings.marks as u64,
                frames: findings.frames_used as u64,
                retries: 0,
                reason,
                seconds,
                phases: findings
                    .phase_times
                    .phases
                    .iter()
                    .map(|(name, d)| (name.clone(), d.as_secs_f64()))
                    .collect(),
                metrics: findings.metrics,
                profile,
            }
        }
        Ok(Err(CoreError::Interrupted { .. })) => empty(UnitStatus::Timeout),
        // Any other CoreError here is a bug (stems come from the engine
        // itself), but a campaign must outlive bugs: record and move on.
        Ok(Err(_)) => empty(UnitStatus::Panic),
        Err(_) => empty(UnitStatus::Panic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::read;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fires-runner-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("job.jsonl")
    }

    fn small_spec() -> CampaignSpec {
        CampaignSpec::from_circuits("t", ["s27", "fig3"])
    }

    #[test]
    fn run_completes_and_journals_every_unit() {
        let path = temp("complete");
        let summary = run(&small_spec(), &path, &RunnerConfig::default()).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.skipped, 0);
        assert_eq!(summary.panicked, 0);
        let contents = read(&path).unwrap();
        let total: usize = contents.header.tasks.iter().map(|t| t.stems).sum();
        assert_eq!(contents.units.len(), total);
        assert_eq!(summary.executed, total);
    }

    #[test]
    fn run_refuses_existing_journal() {
        let path = temp("exists");
        run(&small_spec(), &path, &RunnerConfig::default()).unwrap();
        assert!(matches!(
            run(&small_spec(), &path, &RunnerConfig::default()),
            Err(JobError::Io { .. })
        ));
    }

    #[test]
    fn max_units_stops_early_and_resume_finishes() {
        let path = temp("resume");
        let rc = RunnerConfig {
            max_units: Some(3),
            ..Default::default()
        };
        let first = run(&small_spec(), &path, &rc).unwrap();
        assert_eq!(first.executed, 3);
        assert!(!first.complete());
        let second = resume(&path, &RunnerConfig::default()).unwrap();
        assert_eq!(second.skipped, 3);
        assert!(second.complete());
        assert_eq!(second.executed, first.remaining);
    }

    #[test]
    fn resume_after_a_torn_final_line_leaves_a_clean_journal() {
        let path = temp("torn-resume");
        let rc = RunnerConfig {
            max_units: Some(2),
            ..Default::default()
        };
        run(&small_spec(), &path, &rc).unwrap();
        // Simulate a kill mid-append: half a record, no newline.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"kind\":\"unit\",\"task\":0,\"ste").unwrap();
        drop(f);
        let summary = resume(&path, &RunnerConfig::default()).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.skipped, 2);
        // Every later read must succeed: the fragment is gone, not glued
        // to the first resumed record.
        let contents = read(&path).unwrap();
        assert!(!contents.torn);
        let total: usize = contents.header.tasks.iter().map(|t| t.stems).sum();
        assert_eq!(contents.units.len(), total);
        crate::report(&path).unwrap();
    }

    #[test]
    fn injected_panic_poisons_only_its_unit() {
        let path = temp("panic");
        fn inject(task: usize, stem: usize) -> Injection {
            if task == 0 && stem == 1 {
                Injection::Panic
            } else {
                Injection::Run
            }
        }
        let rc = RunnerConfig {
            inject: Some(inject),
            ..Default::default()
        };
        let summary = run(&small_spec(), &path, &rc).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.panicked, 1);
        let contents = read(&path).unwrap();
        let bad: Vec<_> = contents
            .units
            .iter()
            .filter(|u| u.status == UnitStatus::Panic)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!((bad[0].task, bad[0].stem), (0, 1));
    }

    #[test]
    fn injected_overrun_times_out_only_its_unit() {
        let path = temp("deadline");
        fn inject(task: usize, stem: usize) -> Injection {
            if task == 1 && stem == 0 {
                Injection::Sleep(Duration::from_millis(50))
            } else {
                Injection::Run
            }
        }
        let rc = RunnerConfig {
            stem_deadline: Some(Duration::from_millis(10)),
            inject: Some(inject),
            ..Default::default()
        };
        let summary = run(&small_spec(), &path, &rc).unwrap();
        assert!(summary.complete());
        assert_eq!(summary.timed_out, 1);
        let contents = read(&path).unwrap();
        let slow: Vec<_> = contents
            .units
            .iter()
            .filter(|u| u.status == UnitStatus::Timeout)
            .collect();
        assert_eq!(slow.len(), 1);
        assert_eq!((slow[0].task, slow[0].stem), (1, 0));
    }

    #[test]
    fn persistent_panic_is_quarantined_after_retries() {
        let path = temp("quarantine");
        fn inject(task: usize, stem: usize) -> Injection {
            if task == 0 && stem == 1 {
                Injection::Panic
            } else {
                Injection::Run
            }
        }
        let rc = RunnerConfig {
            inject: Some(inject),
            retries: 2,
            backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let summary = run(&small_spec(), &path, &rc).unwrap();
        assert!(summary.complete());
        // The hook panics on every attempt, so the unit is quarantined
        // with a terminal panic record after exactly `retries` re-runs.
        assert_eq!(summary.panicked, 1);
        assert_eq!(summary.retried, 2);
        let contents = read(&path).unwrap();
        let bad: Vec<_> = contents
            .units
            .iter()
            .filter(|u| u.status == UnitStatus::Panic)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!((bad[0].task, bad[0].stem), (0, 1));
        assert_eq!(bad[0].retries, 2);
        // Each failed attempt left a journaled retry event.
        assert_eq!(contents.events.len(), 2);
        assert!(contents.events.iter().all(|e| e.what == "unit-retry"));
    }

    #[test]
    fn chaos_panics_converge_with_retries() {
        // Fault-free baseline.
        let clean = temp("chaos-clean");
        run(&small_spec(), &clean, &RunnerConfig::default()).unwrap();
        let baseline = crate::report(&clean).unwrap().canonical_text();

        // Same campaign under injected panics, IO errors and delays:
        // with retries, every unit ends Ok and the canonical report is
        // byte-identical.
        let path = temp("chaos-faulty");
        let rc = RunnerConfig {
            retries: 6,
            backoff: Duration::from_millis(1),
            chaos: Some(
                ChaosPlan::new(0xF17E5)
                    .with_unit_panics(300)
                    .with_journal_errors(250)
                    .with_delays(200, 2),
            ),
            ..Default::default()
        };
        let summary = run(&small_spec(), &path, &rc).unwrap();
        assert!(summary.complete());
        assert_eq!(
            summary.panicked, 0,
            "every chaos panic must be retried away"
        );
        assert!(summary.retried > 0, "the plan must actually inject faults");
        assert_eq!(crate::report(&path).unwrap().canonical_text(), baseline);
    }

    #[test]
    fn step_budget_exhausts_units_and_campaign_completes() {
        let clean = temp("budget-clean");
        let mut spec = small_spec();
        run(&spec, &clean, &RunnerConfig::default()).unwrap();
        let baseline = crate::report(&clean).unwrap().canonical_text();

        // A deliberately tiny step budget: stems exhaust instead of
        // completing, the campaign still finishes, and the exhausted
        // units are journaled as such with their partial results.
        for t in &mut spec.tasks {
            t.step_budget = Some(3);
        }
        let path = temp("budget-tiny");
        let summary = run(&spec, &path, &RunnerConfig::default()).unwrap();
        assert!(summary.complete());
        assert!(summary.exhausted > 0, "a 3-step budget must exhaust stems");
        assert_eq!(summary.panicked, 0);
        let contents = read(&path).unwrap();
        let exhausted: Vec<_> = contents
            .units
            .iter()
            .filter(|u| u.status == UnitStatus::Exhausted)
            .collect();
        assert_eq!(exhausted.len(), summary.exhausted);
        assert!(exhausted.iter().all(|u| u.reason.is_some()));
        // Exhaustion is deterministic: a rerun journals the same terminal
        // statuses and the same canonical report.
        let rerun = temp("budget-tiny-rerun");
        let summary2 = run(&spec, &rerun, &RunnerConfig::default()).unwrap();
        assert_eq!(summary2.exhausted, summary.exhausted);
        assert_eq!(
            crate::report(&path).unwrap().canonical_text(),
            crate::report(&rerun).unwrap().canonical_text()
        );
        // And the budgeted canonical report differs from the unbudgeted
        // one only through the exhausted counts — never by *extra*
        // faults: partial results must not leak into redundancy claims.
        let budgeted = crate::report(&path).unwrap();
        let clean_report = crate::report(&clean).unwrap();
        for (b, c) in budgeted.tasks.iter().zip(&clean_report.tasks) {
            for f in &b.faults {
                assert!(
                    c.faults.contains(f),
                    "budgeted run claimed a fault the clean run did not: {f:?}"
                );
            }
        }
        assert_ne!(crate::report(&path).unwrap().canonical_text(), baseline);
    }

    #[test]
    fn exhausted_units_are_not_rerun_on_resume() {
        let mut spec = small_spec();
        for t in &mut spec.tasks {
            t.step_budget = Some(3);
        }
        let path = temp("budget-resume");
        let rc = RunnerConfig {
            max_units: Some(2),
            ..Default::default()
        };
        let first = run(&spec, &path, &rc).unwrap();
        assert_eq!(first.executed, 2);
        let second = resume(&path, &RunnerConfig::default()).unwrap();
        assert!(second.complete());
        assert_eq!(second.skipped, 2);
        // The resumed half exhausts the same way: the spec (and so the
        // budget) rides in the journal header.
        let rerun = temp("budget-resume-rerun");
        let summary = run(&spec, &rerun, &RunnerConfig::default()).unwrap();
        assert_eq!(first.exhausted + second.exhausted, summary.exhausted);
        assert_eq!(
            crate::report(&path).unwrap().canonical_text(),
            crate::report(&rerun).unwrap().canonical_text()
        );
    }

    #[test]
    fn progress_heartbeats_are_cumulative_across_resume() {
        let path = temp("progress");
        let rc = RunnerConfig {
            max_units: Some(3),
            // Zero spacing: every unit completion beats, so even this
            // fast campaign journals observable progress.
            progress_interval: Some(Duration::ZERO),
            ..Default::default()
        };
        run(&small_spec(), &path, &rc).unwrap();
        let contents = read(&path).unwrap();
        assert!(!contents.progress.is_empty());
        let total: u64 = contents.header.tasks.iter().map(|t| t.stems as u64).sum();
        let last = contents.progress.last().unwrap();
        assert_eq!(last.done, 3);
        assert_eq!(last.pending, total - 3);
        assert_eq!(last.workers, 1);

        // Resume finishes the campaign; its heartbeats fold in the
        // journaled prior so `done` keeps counting from 3, and the final
        // heartbeat shows the campaign drained.
        let rc = RunnerConfig {
            progress_interval: Some(Duration::ZERO),
            ..Default::default()
        };
        resume(&path, &rc).unwrap();
        let contents = read(&path).unwrap();
        let last = contents.progress.last().unwrap();
        assert_eq!(last.done, total);
        assert_eq!(last.pending, 0);
        assert_eq!(last.ok, total);
        assert_eq!(last.panicked + last.timed_out + last.exhausted, 0);
        // Monotone: done never decreases across the whole journal.
        let dones: Vec<u64> = contents.progress.iter().map(|p| p.done).collect();
        assert!(
            dones.windows(2).all(|w| w[0] <= w[1]),
            "done regressed: {dones:?}"
        );
        // Progress records are pure observability: the canonical report
        // of this journal matches a heartbeat-free rerun byte-for-byte.
        let quiet = temp("progress-quiet");
        let rc = RunnerConfig {
            progress_interval: None,
            ..Default::default()
        };
        run(&small_spec(), &quiet, &rc).unwrap();
        assert!(read(&quiet).unwrap().progress.is_empty());
        assert_eq!(
            crate::report(&path).unwrap().canonical_text(),
            crate::report(&quiet).unwrap().canonical_text()
        );
    }

    #[test]
    fn stop_flag_checkpoints_cleanly_for_resume() {
        // The cooperative stop: the first unit's inject hook raises the
        // flag, so that unit finishes and is journaled but nothing new
        // is claimed — exactly the drain semantics `fires serve` needs.
        static STOP: AtomicBool = AtomicBool::new(false);
        fn raise(_: usize, _: usize) -> Injection {
            STOP.store(true, Ordering::SeqCst);
            Injection::Run
        }
        let clean = temp("stop-clean");
        run(&small_spec(), &clean, &RunnerConfig::default()).unwrap();
        let baseline = crate::report(&clean).unwrap().canonical_text();

        let path = temp("stop");
        let rc = RunnerConfig {
            inject: Some(raise),
            stop: Some(&STOP),
            ..Default::default()
        };
        let first = run(&small_spec(), &path, &rc).unwrap();
        assert_eq!(first.executed, 1, "in-flight unit finishes, no new claims");
        assert!(!first.complete());
        // The journal is a clean checkpoint: resume completes the
        // unclaimed remainder and the report is byte-identical.
        let second = resume(&path, &RunnerConfig::default()).unwrap();
        assert!(second.complete());
        assert_eq!(second.skipped, 1);
        assert_eq!(crate::report(&path).unwrap().canonical_text(), baseline);
    }

    #[test]
    fn observer_sees_every_unit_milestone_with_its_token() {
        #[derive(Debug, Default)]
        struct Counting {
            claimed: AtomicUsize,
            finished: AtomicUsize,
            journaled: AtomicUsize,
            bad_token: AtomicBool,
        }
        impl UnitObserver for Counting {
            fn unit_claimed(&self, token: u64, _: usize, _: usize) {
                if token != 42 {
                    self.bad_token.store(true, Ordering::Relaxed);
                }
                self.claimed.fetch_add(1, Ordering::Relaxed);
            }
            fn unit_finished(&self, _: u64, _: usize, _: usize, seconds: f64) {
                assert!(seconds >= 0.0);
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
            fn unit_journaled(&self, _: u64, _: usize, _: usize) {
                self.journaled.fetch_add(1, Ordering::Relaxed);
            }
        }
        let obs: &'static Counting = Box::leak(Box::new(Counting::default()));
        let path = temp("observer");
        let rc = RunnerConfig {
            threads: 4,
            observer: Some(obs),
            trace_token: 42,
            ..Default::default()
        };
        let summary = run(&small_spec(), &path, &rc).unwrap();
        assert!(summary.complete());
        let total = summary.executed;
        assert_eq!(obs.claimed.load(Ordering::Relaxed), total);
        assert_eq!(obs.finished.load(Ordering::Relaxed), total);
        assert_eq!(obs.journaled.load(Ordering::Relaxed), total);
        assert!(!obs.bad_token.load(Ordering::Relaxed));
        // The observer is pure observability: the canonical report
        // matches an unobserved run byte-for-byte.
        let quiet = temp("observer-quiet");
        run(&small_spec(), &quiet, &RunnerConfig::default()).unwrap();
        assert_eq!(
            crate::report(&path).unwrap().canonical_text(),
            crate::report(&quiet).unwrap().canonical_text()
        );
    }

    #[test]
    fn threaded_run_covers_every_unit_once() {
        let path = temp("threads");
        let rc = RunnerConfig {
            threads: 8,
            ..Default::default()
        };
        run(&small_spec(), &path, &rc).unwrap();
        let contents = read(&path).unwrap();
        let mut seen = std::collections::HashSet::new();
        for u in &contents.units {
            assert!(seen.insert((u.task, u.stem)), "unit ran twice");
        }
        let total: usize = contents.header.tasks.iter().map(|t| t.stems).sum();
        assert_eq!(seen.len(), total);
    }
}
