//! Campaign specifications: which circuits to analyse, with what
//! configuration.

use fires_circuits::suite;
use fires_core::{Budget, FiresConfig};
use fires_netlist::Circuit;
use fires_obs::Json;

use crate::error::JobError;

/// One (circuit × configuration) task of a campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Circuit name, resolvable by
    /// [`fires_circuits::suite::resolve`].
    pub circuit: String,
    /// Frame budget override; `None` uses the suite's per-circuit budget.
    pub frames: Option<usize>,
    /// Run the Definition-6 validation step.
    pub validate: bool,
    /// Implication-step budget per stem (see
    /// [`Budget::max_steps`]); `None` runs unbudgeted. Only the
    /// deterministic step limit is spec-level: it changes *results*
    /// (which stems exhaust), so it must survive the journal round-trip
    /// for resume to reproduce them; wall-clock limits stay runner
    /// knobs.
    pub step_budget: Option<u64>,
}

impl TaskSpec {
    /// A task with the suite's default frame budget, validation on and
    /// no step budget.
    pub fn new(circuit: impl Into<String>) -> Self {
        TaskSpec {
            circuit: circuit.into(),
            frames: None,
            validate: true,
            step_budget: None,
        }
    }
}

/// A named set of tasks, the unit `fires run` executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (journal and report file stem).
    pub name: String,
    /// The tasks, in execution order.
    pub tasks: Vec<TaskSpec>,
}

/// One task after name resolution: the generated circuit plus the exact
/// core configuration its stems run under.
#[derive(Clone, Debug)]
pub struct ResolvedTask {
    /// The resolved circuit name (canonical form, e.g. `fig3`).
    pub name: String,
    /// The circuit itself.
    pub circuit: Circuit,
    /// Structural content hash of the circuit, journaled so a resumed
    /// journal can prove it still indexes the same stems.
    pub hash: u64,
    /// The core configuration (frame budget, validation).
    pub config: FiresConfig,
    /// The per-stem resource budget the task's units run under.
    pub budget: Budget,
}

impl CampaignSpec {
    /// A campaign over a named suite: `small` (sub-second CI subset) or
    /// `table2` (the full Table-2 suite).
    pub fn suite(suite_name: &str) -> Result<CampaignSpec, JobError> {
        let entries = match suite_name {
            "small" => suite::small_suite(),
            "table2" => suite::table2_suite(),
            other => {
                return Err(JobError::Spec {
                    message: format!("unknown suite {other:?} (expected `small` or `table2`)"),
                })
            }
        };
        Ok(CampaignSpec {
            name: suite_name.to_string(),
            tasks: entries.iter().map(|e| TaskSpec::new(e.name)).collect(),
        })
    }

    /// A campaign over explicitly named circuits.
    pub fn from_circuits<I, S>(name: impl Into<String>, circuits: I) -> CampaignSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CampaignSpec {
            name: name.into(),
            tasks: circuits.into_iter().map(|c| TaskSpec::new(c)).collect(),
        }
    }

    /// Resolves every task to its circuit and core configuration.
    ///
    /// # Errors
    ///
    /// [`JobError::Spec`] for an empty campaign,
    /// [`JobError::UnknownCircuit`] for an unresolvable name, and
    /// [`JobError::Core`] if an override produces an invalid
    /// [`FiresConfig`].
    pub fn resolve(&self) -> Result<Vec<ResolvedTask>, JobError> {
        if self.tasks.is_empty() {
            return Err(JobError::Spec {
                message: "campaign has no tasks".into(),
            });
        }
        self.tasks
            .iter()
            .map(|t| {
                let entry = suite::resolve(&t.circuit).ok_or_else(|| JobError::UnknownCircuit {
                    name: t.circuit.clone(),
                })?;
                let mut config = FiresConfig::with_max_frames(t.frames.unwrap_or(entry.frames));
                config.validate = t.validate;
                config.check()?;
                let budget = match t.step_budget {
                    Some(steps) => Budget::unlimited().with_max_steps(steps),
                    None => Budget::unlimited(),
                };
                budget.check()?;
                let hash = entry.circuit.content_hash();
                Ok(ResolvedTask {
                    name: entry.name.to_string(),
                    circuit: entry.circuit,
                    hash,
                    config,
                    budget,
                })
            })
            .collect()
    }

    /// JSON form (used inside the journal header).
    pub fn to_json(&self) -> Json {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for t in &self.tasks {
            let mut j = Json::object();
            j.set("circuit", t.circuit.clone())
                .set("validate", t.validate);
            if let Some(frames) = t.frames {
                j.set("frames", frames as u64);
            }
            if let Some(steps) = t.step_budget {
                j.set("step_budget", steps);
            }
            tasks.push(j);
        }
        let mut j = Json::object();
        j.set("name", self.name.clone())
            .set("tasks", Json::Arr(tasks));
        j
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(j: &Json) -> Result<CampaignSpec, JobError> {
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| JobError::journal("spec has no name"))?
            .to_string();
        let tasks =
            j.get("tasks")
                .and_then(Json::as_arr)
                .ok_or_else(|| JobError::journal("spec has no task array"))?
                .iter()
                .map(|t| {
                    let circuit = t
                        .get("circuit")
                        .and_then(Json::as_str)
                        .ok_or_else(|| JobError::journal("task has no circuit"))?
                        .to_string();
                    let validate = t
                        .get("validate")
                        .and_then(|v| match v {
                            Json::Bool(b) => Some(*b),
                            _ => None,
                        })
                        .ok_or_else(|| JobError::journal("task has no validate flag"))?;
                    let frames = match t.get("frames") {
                        Some(f) => Some(
                            f.as_u64()
                                .ok_or_else(|| JobError::journal("task frames is not an integer"))?
                                as usize,
                        ),
                        None => None,
                    };
                    let step_budget = match t.get("step_budget") {
                        Some(s) => Some(s.as_u64().ok_or_else(|| {
                            JobError::journal("task step_budget is not an integer")
                        })?),
                        None => None,
                    };
                    Ok(TaskSpec {
                        circuit,
                        frames,
                        validate,
                        step_budget,
                    })
                })
                .collect::<Result<Vec<_>, JobError>>()?;
        Ok(CampaignSpec { name, tasks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_campaigns_resolve() {
        let small = CampaignSpec::suite("small").unwrap();
        let resolved = small.resolve().unwrap();
        assert_eq!(resolved.len(), small.tasks.len());
        assert_eq!(resolved[0].name, "s27");
        assert!(CampaignSpec::suite("huge").is_err());
    }

    #[test]
    fn overrides_apply() {
        let mut spec = CampaignSpec::from_circuits("t", ["fig3"]);
        spec.tasks[0].frames = Some(7);
        spec.tasks[0].validate = false;
        spec.tasks[0].step_budget = Some(500);
        let r = spec.resolve().unwrap();
        assert_eq!(r[0].config.max_frames, 7);
        assert!(!r[0].config.validate);
        assert_eq!(r[0].budget.max_steps, Some(500));
        let unbudgeted = CampaignSpec::from_circuits("t", ["fig3"])
            .resolve()
            .unwrap();
        assert!(unbudgeted[0].budget.is_unlimited());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let empty = CampaignSpec::from_circuits("t", Vec::<String>::new());
        assert!(matches!(empty.resolve(), Err(JobError::Spec { .. })));
        let unknown = CampaignSpec::from_circuits("t", ["does_not_exist"]);
        assert!(matches!(
            unknown.resolve(),
            Err(JobError::UnknownCircuit { .. })
        ));
        let mut degenerate = CampaignSpec::from_circuits("t", ["s27"]);
        degenerate.tasks[0].frames = Some(0);
        assert!(matches!(degenerate.resolve(), Err(JobError::Core(_))));
        let mut zero_budget = CampaignSpec::from_circuits("t", ["s27"]);
        zero_budget.tasks[0].step_budget = Some(0);
        assert!(matches!(zero_budget.resolve(), Err(JobError::Core(_))));
    }

    #[test]
    fn json_round_trip() {
        let mut spec = CampaignSpec::suite("small").unwrap();
        spec.tasks[1].frames = Some(9);
        spec.tasks[2].validate = false;
        spec.tasks[0].step_budget = Some(20_000);
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn resolution_is_deterministic() {
        let spec = CampaignSpec::from_circuits("t", ["s27", "s208_like"]);
        let a = spec.resolve().unwrap();
        let b = spec.resolve().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hash, y.hash);
        }
    }
}
