//! Campaign orchestration for FIRES runs.
//!
//! A *campaign* is a set of (circuit × configuration) tasks, expanded
//! into per-fanout-stem work units and executed by a work-stealing
//! worker pool. The subsystem is built around three guarantees:
//!
//! * **Resumable** — every completed unit is appended to an on-disk
//!   journal ([`journal`]) and flushed before it counts; killing the
//!   process loses at most the unit in flight, and [`resume`] picks up
//!   exactly the missing units (the journal header carries circuit
//!   content hashes so stale journals are refused, not misread).
//! * **Fault-tolerant** — a unit that panics is retried up to
//!   `--retries` times and quarantined after; one that overruns its
//!   wall-clock deadline or exhausts its per-stem [`Budget`] is recorded
//!   and skipped ([`runner`]); transient journal IO errors are retried
//!   with exponential backoff; one poisoned stem never aborts a
//!   campaign. A deterministic [`ChaosPlan`] ([`chaos`]) injects panics,
//!   IO errors and delays so all of this is *testable*.
//!
//! [`Budget`]: fires_core::Budget
//! * **Deterministic** — the merged report ([`merge`]) is a pure
//!   function of the set of unit records: byte-identical whether the
//!   campaign ran on 1 thread or 8, uninterrupted or killed-and-resumed
//!   (see [`IdentifiedFault::wins_over`](fires_core::IdentifiedFault)).
//!
//! The `fires` binary (in the `fires-serve` crate) is the CLI frontend:
//! `fires run`, `fires resume`, `fires status`, `fires report`, plus the
//! daemon/client commands layered on top of this crate.
//!
//! # Example
//!
//! ```
//! use fires_jobs::{runner, spec::CampaignSpec};
//!
//! let dir = std::env::temp_dir().join(format!("fires-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let journal = dir.join("demo.jsonl");
//! let _ = std::fs::remove_file(&journal);
//!
//! let spec = CampaignSpec::from_circuits("demo", ["fig3"]);
//! let summary = runner::run(&spec, &journal, &runner::RunnerConfig::default()).unwrap();
//! assert!(summary.complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A campaign must degrade gracefully, not abort: library code converts
// every failure into a typed `JobError` or a journaled unit status.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
mod error;
pub mod journal;
pub mod merge;
pub mod runner;
pub mod spec;
pub mod summary;

pub use chaos::{site_roll, splitmix64, ChaosPlan};
pub use error::JobError;
pub use merge::{CampaignReport, TaskReport};
pub use runner::{
    build_engines, resume, run, run_with_tasks, Injection, RunSummary, RunnerConfig, UnitObserver,
};
pub use spec::{CampaignSpec, ResolvedTask, TaskSpec};
pub use summary::{JournalSummary, TaskProgress, WorstStem, WORST_STEMS_TOP};

use std::path::Path;

/// Reads a journal, verifies it against this build and merges it into a
/// [`CampaignReport`] — the one-call path behind `fires report` and
/// `fires status`.
pub fn report(journal_path: &Path) -> Result<CampaignReport, JobError> {
    let contents = journal::read(journal_path)?;
    let tasks = contents.header.spec.resolve()?;
    report_with_tasks(journal_path, &tasks)
}

/// [`report`] over an already-resolved task list.
///
/// `tasks` must be the resolution of the journal's own spec in this
/// build (it is re-verified against the journal header here). Resolution
/// generates every circuit, so callers that already hold one — the
/// runner that just executed the campaign, or `fires serve`'s
/// engine-build cache — pass it in instead of resolving again.
pub fn report_with_tasks(
    journal_path: &Path,
    tasks: &[spec::ResolvedTask],
) -> Result<CampaignReport, JobError> {
    let contents = journal::read(journal_path)?;
    let engines = runner::build_engines(tasks)?;
    let stems: Vec<usize> = engines.iter().map(|e| e.stems().len()).collect();
    journal::verify_header(&contents.header, tasks, &stems)?;
    Ok(merge::merge(&contents, tasks, &engines))
}
