//! Deterministic, seed-driven fault injection for campaign robustness
//! tests.
//!
//! A [`ChaosPlan`] decides — as a pure function of its seed and the
//! injection site — whether a given unit attempt panics, is delayed, or
//! whether a given journal append fails. Because every decision is keyed
//! by `(site, task, stem, attempt)`:
//!
//! * the same plan injects the *same* faults on every run (tests are
//!   reproducible, failures are replayable from the seed alone);
//! * a **retried** attempt rolls fresh, so a unit that panicked on
//!   attempt 0 can succeed on attempt 1 — which is exactly what the
//!   chaos convergence suite exploits: with enough retries, a faulty
//!   run's terminal records are identical to a fault-free run's, and the
//!   canonical report is byte-identical.
//!
//! Injected faults are injected *before* the real work of their site (a
//! chaos journal error fires before any byte reaches the file), so a
//! retry starts from clean state.

use std::time::Duration;

/// Injection-site tags, mixed into the rolls so the three fault kinds
/// draw independent streams from one seed.
const SITE_UNIT_PANIC: u64 = 0x70_61_6e_69; // "pani"
const SITE_JOURNAL_IO: u64 = 0x6a_6f_75_72; // "jour"
const SITE_UNIT_DELAY: u64 = 0x64_65_6c_61; // "dela"

/// A deterministic fault-injection plan. `Copy`, so it rides inside
/// [`RunnerConfig`](crate::RunnerConfig) without breaking `Copy` there.
///
/// Rates are per-mille (0–1000): `250` injects the fault on roughly a
/// quarter of the decisions for that site.
///
/// # Example
///
/// ```
/// use fires_jobs::ChaosPlan;
///
/// let plan = ChaosPlan::new(7).with_unit_panics(250).with_journal_errors(150);
/// // Decisions are pure functions of (plan, site, task, stem, attempt):
/// assert_eq!(
///     plan.unit_panics(0, 3, 0),
///     ChaosPlan::new(7).with_unit_panics(250).unit_panics(0, 3, 0),
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed of every decision this plan makes.
    pub seed: u64,
    /// Per-mille probability that a unit attempt panics.
    pub unit_panic_permille: u16,
    /// Per-mille probability that one journal append attempt fails with
    /// an injected IO error.
    pub journal_error_permille: u16,
    /// Per-mille probability that a unit attempt is delayed before
    /// running.
    pub delay_permille: u16,
    /// Upper bound (exclusive is fine — the roll is modular) of an
    /// injected delay, in milliseconds.
    pub max_delay_ms: u16,
}

impl ChaosPlan {
    /// A quiet plan: decisions are seeded but every rate is zero.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            unit_panic_permille: 0,
            journal_error_permille: 0,
            delay_permille: 0,
            max_delay_ms: 0,
        }
    }

    /// Sets the unit-panic rate (per-mille).
    pub fn with_unit_panics(mut self, permille: u16) -> Self {
        self.unit_panic_permille = permille;
        self
    }

    /// Sets the journal-append IO-error rate (per-mille).
    pub fn with_journal_errors(mut self, permille: u16) -> Self {
        self.journal_error_permille = permille;
        self
    }

    /// Sets the unit-delay rate (per-mille) and the delay bound.
    pub fn with_delays(mut self, permille: u16, max_delay_ms: u16) -> Self {
        self.delay_permille = permille;
        self.max_delay_ms = max_delay_ms;
        self
    }

    /// `true` when the plan can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.unit_panic_permille == 0
            && self.journal_error_permille == 0
            && (self.delay_permille == 0 || self.max_delay_ms == 0)
    }

    /// Should this unit attempt panic?
    pub fn unit_panics(&self, task: usize, stem: usize, attempt: u32) -> bool {
        self.hits(
            self.unit_panic_permille,
            SITE_UNIT_PANIC,
            task,
            stem,
            attempt,
        )
    }

    /// Should this journal append attempt fail with an IO error?
    pub fn journal_append_fails(&self, task: usize, stem: usize, attempt: u32) -> bool {
        self.hits(
            self.journal_error_permille,
            SITE_JOURNAL_IO,
            task,
            stem,
            attempt,
        )
    }

    /// Delay to impose on this unit attempt before it runs, if any.
    pub fn unit_delay(&self, task: usize, stem: usize, attempt: u32) -> Option<Duration> {
        if self.max_delay_ms == 0
            || !self.hits(self.delay_permille, SITE_UNIT_DELAY, task, stem, attempt)
        {
            return None;
        }
        let roll = self.roll(SITE_UNIT_DELAY ^ 1, task, stem, attempt);
        Some(Duration::from_millis(roll % u64::from(self.max_delay_ms)))
    }

    fn hits(&self, permille: u16, site: u64, task: usize, stem: usize, attempt: u32) -> bool {
        permille > 0 && self.roll(site, task, stem, attempt) % 1000 < u64::from(permille.min(1000))
    }

    fn roll(&self, site: u64, task: usize, stem: usize, attempt: u32) -> u64 {
        site_roll(
            self.seed,
            site,
            task as u64,
            stem as u64,
            u64::from(attempt),
        )
    }
}

/// One deterministic chaos decision: a well-mixed `u64` drawn from
/// `(seed, site, a, b, c)` and nothing else. The shared primitive under
/// every fault plan in the workspace — [`ChaosPlan`] keys its rolls by
/// `(task, stem, attempt)`, the serve-level chaos facility by a
/// per-site event index — so all plans inherit the same properties:
/// replayable from the seed alone, and independent streams per site tag.
pub fn site_roll(seed: u64, site: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut x = seed ^ site.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = splitmix64(x);
    x ^= a.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = splitmix64(x);
    x ^= b.wrapping_mul(0x94d0_49bb_1331_11eb);
    x = splitmix64(x);
    x ^= c;
    splitmix64(x)
}

/// The splitmix64 finalizer: cheap, well-mixed, dependency-free.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = ChaosPlan::new(42)
            .with_unit_panics(300)
            .with_journal_errors(200)
            .with_delays(100, 5);
        let b = a;
        for task in 0..4 {
            for stem in 0..16 {
                for attempt in 0..4 {
                    assert_eq!(
                        a.unit_panics(task, stem, attempt),
                        b.unit_panics(task, stem, attempt)
                    );
                    assert_eq!(
                        a.journal_append_fails(task, stem, attempt),
                        b.journal_append_fails(task, stem, attempt)
                    );
                    assert_eq!(
                        a.unit_delay(task, stem, attempt),
                        b.unit_delay(task, stem, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = ChaosPlan::new(1).with_unit_panics(250);
        let hits = (0..4000)
            .filter(|&stem| plan.unit_panics(0, stem, 0))
            .count();
        // 250‰ of 4000 = 1000; allow a generous band.
        assert!((700..1300).contains(&hits), "hit rate way off: {hits}/4000");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = ChaosPlan::new(9);
        assert!(plan.is_quiet());
        for stem in 0..100 {
            assert!(!plan.unit_panics(0, stem, 0));
            assert!(!plan.journal_append_fails(0, stem, 0));
            assert_eq!(plan.unit_delay(0, stem, 0), None);
        }
        assert!(!plan.with_unit_panics(500).is_quiet());
    }

    #[test]
    fn retried_attempts_roll_fresh() {
        // With a 50% rate some unit must differ between attempt 0 and 1 —
        // the property the retry policy relies on.
        let plan = ChaosPlan::new(3).with_unit_panics(500);
        let differs =
            (0..64).any(|stem| plan.unit_panics(0, stem, 0) != plan.unit_panics(0, stem, 1));
        assert!(differs);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = ChaosPlan::new(5)
            .with_unit_panics(500)
            .with_journal_errors(500);
        let differs = (0..64)
            .any(|stem| plan.unit_panics(0, stem, 0) != plan.journal_append_fails(0, stem, 0));
        assert!(differs);
    }

    #[test]
    fn site_roll_matches_plan_rolls() {
        // The exposed primitive IS the plan's roll: embedders deriving
        // their own streams (the serve-level chaos facility) stay
        // consistent with the fault schedules CI has pinned by seed.
        let plan = ChaosPlan::new(99).with_unit_panics(500);
        for stem in 0..32 {
            assert_eq!(
                plan.unit_panics(1, stem, 2),
                site_roll(99, 0x70_61_6e_69, 1, stem as u64, 2) % 1000 < 500
            );
        }
    }

    #[test]
    fn delays_are_bounded() {
        let plan = ChaosPlan::new(11).with_delays(1000, 7);
        for stem in 0..100 {
            let d = plan.unit_delay(0, stem, 0).expect("rate is 1000‰");
            assert!(d < Duration::from_millis(7));
        }
    }
}
