//! The `fires` CLI: run, resume and inspect FIRES campaigns.
//!
//! ```text
//! fires run     [--suite small|table2] [--circuit NAME]... [--name N]
//!               [--out DIR] [--threads N] [--deadline-ms MS]
//!               [--frames N] [--step-budget N] [--no-validate]
//!               [--retries N] [--backoff-ms MS] [--json] [chaos flags]
//! fires resume  <journal> [--threads N] [--deadline-ms MS]
//!               [--retries N] [--backoff-ms MS] [--json] [chaos flags]
//! fires status  <journal> [--json]
//! fires watch   <journal> [--interval-ms MS] [--once]
//! fires report  <journal> [--json]
//! fires compare <baseline.json> <candidate.json>
//!               [--max-regress-pct P] [--skip-time]
//! ```
//!
//! `status` and `watch` summarise the journal itself (no engines are
//! built), through the same [`JournalSummary`] path, so they agree with
//! each other and stay cheap enough to poll against a live journal.
//! `watch` tail-follows the journal — including across a writer kill and
//! `fires resume` — and exits when the campaign completes. `compare`
//! diffs two `RunReport` JSON documents metric-by-metric and exits
//! nonzero when any cost metric regressed by more than the threshold:
//! the perf gate CI runs against a committed baseline.
//!
//! Chaos flags (deterministic fault injection for robustness testing):
//! `--chaos-seed N` enables the plan; `--chaos-panic P`,
//! `--chaos-journal P` and `--chaos-delay P` set per-mille fault rates,
//! `--chaos-delay-ms MS` bounds an injected delay.
//!
//! `run` journals to `<out>/<name>.jsonl` and writes machine-readable
//! observability reports next to it (`<name>.report.json`, one
//! `RunReport` per task rolled up into a campaign-level aggregate).
//! After a crash or kill, `fires resume <journal>` completes exactly the
//! missing work and produces a byte-identical `fires report`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use fires_jobs::{
    journal, report, resume, run, CampaignSpec, ChaosPlan, JournalSummary, RunSummary, RunnerConfig,
};
use fires_obs::{compare_reports, CompareConfig, DeltaStatus, RunReport};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "resume" => cmd_resume(rest),
        "status" => cmd_status(rest),
        "watch" => cmd_watch(rest),
        "report" => cmd_report(rest),
        "compare" => return cmd_compare(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fires: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  fires run     [--suite small|table2] [--circuit NAME]... [--name N]
                [--out DIR] [--threads N] [--deadline-ms MS]
                [--frames N] [--step-budget N] [--no-validate]
                [--retries N] [--backoff-ms MS] [--json] [chaos flags]
  fires resume  <journal> [--threads N] [--deadline-ms MS]
                [--retries N] [--backoff-ms MS] [--json] [chaos flags]
  fires status  <journal> [--json]
  fires watch   <journal> [--interval-ms MS] [--once]
  fires report  <journal> [--json]
  fires compare <baseline.json> <candidate.json>
                [--max-regress-pct P] [--skip-time]

chaos flags (deterministic fault injection; requires --chaos-seed):
  --chaos-seed N       seed of every injection decision
  --chaos-panic P      per-mille rate of injected unit panics
  --chaos-journal P    per-mille rate of injected journal IO errors
  --chaos-delay P      per-mille rate of injected unit delays
  --chaos-delay-ms MS  upper bound of an injected delay";

/// Pulls `--flag VALUE` out of `args`, mutating the vector.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

/// Pulls a boolean `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse_number<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got {value:?}"))
}

/// Runner knobs shared by `run` and `resume`.
fn runner_config(args: &mut Vec<String>) -> Result<RunnerConfig, String> {
    let mut rc = RunnerConfig::default();
    if let Some(threads) = take_value(args, "--threads")? {
        rc.threads = parse_number(&threads, "--threads")?;
    }
    if let Some(ms) = take_value(args, "--deadline-ms")? {
        rc.stem_deadline = Some(Duration::from_millis(parse_number(&ms, "--deadline-ms")?));
    }
    if let Some(n) = take_value(args, "--retries")? {
        rc.retries = parse_number(&n, "--retries")?;
    }
    if let Some(ms) = take_value(args, "--backoff-ms")? {
        rc.backoff = Duration::from_millis(parse_number(&ms, "--backoff-ms")?);
    }
    rc.chaos = chaos_plan(args)?;
    Ok(rc)
}

/// Parses the chaos flags into a plan; `None` without `--chaos-seed`.
fn chaos_plan(args: &mut Vec<String>) -> Result<Option<ChaosPlan>, String> {
    let seed = take_value(args, "--chaos-seed")?;
    let panic = take_value(args, "--chaos-panic")?;
    let journal = take_value(args, "--chaos-journal")?;
    let delay = take_value(args, "--chaos-delay")?;
    let delay_ms = take_value(args, "--chaos-delay-ms")?;
    let Some(seed) = seed else {
        if panic.is_some() || journal.is_some() || delay.is_some() || delay_ms.is_some() {
            return Err("chaos rates need --chaos-seed".into());
        }
        return Ok(None);
    };
    let mut plan = ChaosPlan::new(parse_number(&seed, "--chaos-seed")?);
    if let Some(p) = panic {
        plan = plan.with_unit_panics(parse_number(&p, "--chaos-panic")?);
    }
    if let Some(p) = journal {
        plan = plan.with_journal_errors(parse_number(&p, "--chaos-journal")?);
    }
    let rate = match delay {
        Some(p) => parse_number(&p, "--chaos-delay")?,
        None => 0,
    };
    let bound = match delay_ms {
        Some(ms) => parse_number(&ms, "--chaos-delay-ms")?,
        None => 2,
    };
    if rate > 0 {
        plan = plan.with_delays(rate, bound);
    }
    Ok(Some(plan))
}

/// Writes to stdout without panicking when the reader hangs up
/// (`fires report | head`, `| grep -q`): a closed pipe means the
/// consumer has all it wants, so exit cleanly instead.
fn emit(text: impl std::fmt::Display) -> Result<(), String> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    match write!(out, "{text}").and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(format!("stdout: {e}")),
    }
}

fn emitln(text: impl std::fmt::Display) -> Result<(), String> {
    emit(format_args!("{text}\n"))
}

fn reject_leftovers(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(a) => Err(format!("unexpected argument {a:?}\n{USAGE}")),
        None => Ok(()),
    }
}

fn print_summary(summary: &RunSummary, journal: &Path) -> Result<(), String> {
    emitln(format_args!(
        "{} unit(s) executed, {} skipped (already journaled), {} panicked, {} timed out, {} exhausted, {} retry attempt(s), {} remaining",
        summary.executed,
        summary.skipped,
        summary.panicked,
        summary.timed_out,
        summary.exhausted,
        summary.retried,
        summary.remaining
    ))?;
    if summary.complete() {
        emitln(format_args!(
            "campaign complete; journal: {}",
            journal.display()
        ))
    } else {
        emitln(format_args!(
            "campaign INCOMPLETE; continue with: fires resume {}",
            journal.display()
        ))
    }
}

/// Prints the merged report and writes the observability rollup next to
/// the journal.
fn finish(journal: &Path, json: bool) -> Result<(), String> {
    let merged = report(journal).map_err(|e| e.to_string())?;
    if json {
        emitln(merged.canonical_text())?;
    } else {
        emit(merged.render_table())?;
    }
    let (_, campaign) = merged.run_reports();
    let report_path = journal.with_extension("report.json");
    campaign
        .write_to_file(&report_path)
        .map_err(|e| format!("{}: {e}", report_path.display()))?;
    emitln(format_args!(
        "observability report: {}",
        report_path.display()
    ))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let rc = runner_config(&mut args)?;
    let json = take_flag(&mut args, "--json");
    let suite = take_value(&mut args, "--suite")?;
    let out = take_value(&mut args, "--out")?.unwrap_or_else(|| "fires-out".into());
    let name = take_value(&mut args, "--name")?;
    let frames = take_value(&mut args, "--frames")?;
    let step_budget = take_value(&mut args, "--step-budget")?;
    let no_validate = take_flag(&mut args, "--no-validate");
    let mut circuits = Vec::new();
    while let Some(c) = take_value(&mut args, "--circuit")? {
        circuits.push(c);
    }
    reject_leftovers(&args)?;

    let mut spec = match (suite, circuits.is_empty()) {
        (Some(s), true) => CampaignSpec::suite(&s).map_err(|e| e.to_string())?,
        (None, false) => {
            CampaignSpec::from_circuits(name.clone().unwrap_or_else(|| "custom".into()), circuits)
        }
        (Some(_), false) => return Err("--suite and --circuit are mutually exclusive".into()),
        (None, true) => {
            return Err("nothing to run: pass --suite or --circuit\n".to_string() + USAGE)
        }
    };
    if let Some(n) = name {
        spec.name = n;
    }
    if let Some(frames) = frames {
        let frames: usize = parse_number(&frames, "--frames")?;
        for t in &mut spec.tasks {
            t.frames = Some(frames);
        }
    }
    if let Some(steps) = step_budget {
        let steps: u64 = parse_number(&steps, "--step-budget")?;
        for t in &mut spec.tasks {
            t.step_budget = Some(steps);
        }
    }
    if no_validate {
        for t in &mut spec.tasks {
            t.validate = false;
        }
    }

    let out_dir = PathBuf::from(out);
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let journal = out_dir.join(format!("{}.jsonl", spec.name));
    let summary = run(&spec, &journal, &rc).map_err(|e| e.to_string())?;
    print_summary(&summary, &journal)?;
    finish(&journal, json)
}

fn journal_arg(args: &mut Vec<String>) -> Result<PathBuf, String> {
    if args.is_empty() {
        return Err(format!("missing <journal> argument\n{USAGE}"));
    }
    Ok(PathBuf::from(args.remove(0)))
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let rc = runner_config(&mut args)?;
    let json = take_flag(&mut args, "--json");
    let journal = journal_arg(&mut args)?;
    reject_leftovers(&args)?;
    let summary = resume(&journal, &rc).map_err(|e| e.to_string())?;
    print_summary(&summary, &journal)?;
    finish(&journal, json)
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let json = take_flag(&mut args, "--json");
    let journal_path = journal_arg(&mut args)?;
    reject_leftovers(&args)?;
    let contents = journal::read(&journal_path).map_err(|e| e.to_string())?;
    let summary = JournalSummary::summarize(&contents);
    if json {
        emitln(summary.to_json().to_pretty())
    } else {
        emit(summary.render_table())
    }
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    use std::io::IsTerminal;
    let mut args = args.to_vec();
    let once = take_flag(&mut args, "--once");
    let interval = match take_value(&mut args, "--interval-ms")? {
        Some(ms) => Duration::from_millis(parse_number(&ms, "--interval-ms")?),
        None => Duration::from_millis(1000),
    };
    let journal_path = journal_arg(&mut args)?;
    reject_leftovers(&args)?;

    // On a terminal each frame repaints in place; piped output gets one
    // frame per poll, newline-separated, for `fires watch | tee log`.
    let live = std::io::stdout().is_terminal();
    loop {
        // A missing or still-headerless journal is a *waiting* state,
        // not an error: the watcher may outpace `fires run` creating the
        // file, and a killed writer leaves a torn tail that read()
        // already tolerates.
        let frame = match journal::read(&journal_path) {
            Ok(contents) => {
                let summary = JournalSummary::summarize(&contents);
                let frame = summary.render_watch();
                if summary.complete() {
                    if live {
                        emit(format_args!("\u{1b}[2J\u{1b}[H{frame}"))?;
                    } else {
                        emitln(&frame)?;
                    }
                    return Ok(());
                }
                frame
            }
            Err(e) => format!("waiting for journal {}: {e}\n", journal_path.display()),
        };
        if live {
            emit(format_args!("\u{1b}[2J\u{1b}[H{frame}"))?;
        } else {
            emitln(&frame)?;
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Loads one `RunReport` JSON document (as written by `fires run` and
/// the bench binaries).
fn load_report(path: &Path) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    RunReport::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_compare(args: &[String]) -> ExitCode {
    match run_compare(args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("fires: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Diffs two report documents; returns the regression count.
fn run_compare(args: &[String]) -> Result<usize, String> {
    let mut args = args.to_vec();
    let mut config = CompareConfig::default();
    if let Some(p) = take_value(&mut args, "--max-regress-pct")? {
        config.max_regress_pct = parse_number(&p, "--max-regress-pct")?;
    }
    if take_flag(&mut args, "--skip-time") {
        config.include_time = false;
    }
    if args.len() != 2 {
        return Err(format!(
            "compare needs exactly <baseline.json> <candidate.json>\n{USAGE}"
        ));
    }
    let baseline = load_report(Path::new(&args[0]))?;
    let candidate = load_report(Path::new(&args[1]))?;
    let outcome = compare_reports(&baseline, &candidate, &config);

    if outcome.subject_mismatch {
        emitln(format_args!(
            "warning: reports describe different subjects ({:?} vs {:?})",
            baseline.subject, candidate.subject
        ))?;
    }
    emitln(format_args!(
        "{:<44} {:>14} {:>14} {:>9} {}",
        "metric", "baseline", "candidate", "delta", "verdict"
    ))?;
    for d in &outcome.deltas {
        let fmt_value = |v: Option<f64>| match v {
            Some(v) => format!("{v:.6}")
                .trim_end_matches('0')
                .trim_end_matches('.')
                .to_string(),
            None => "-".into(),
        };
        emitln(format_args!(
            "{:<44} {:>14} {:>14} {:>9} {}",
            d.name,
            fmt_value(d.baseline),
            fmt_value(d.candidate),
            match d.pct {
                Some(pct) => format!("{pct:+.1}%"),
                None => "-".into(),
            },
            d.status.label(),
        ))?;
    }
    let regressions = outcome.regressions();
    emitln(format_args!(
        "{} metric(s) compared, {} regressed (threshold {:.1}%{})",
        outcome.compared(),
        regressions,
        config.max_regress_pct,
        if config.include_time {
            ""
        } else {
            "; time metrics skipped"
        },
    ))?;
    if regressions > 0 {
        let worst: Vec<&str> = outcome
            .deltas
            .iter()
            .filter(|d| d.status == DeltaStatus::Regressed)
            .map(|d| d.name.as_str())
            .collect();
        emitln(format_args!("REGRESSED: {}", worst.join(", ")))?;
    }
    Ok(regressions)
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let json = take_flag(&mut args, "--json");
    let journal = journal_arg(&mut args)?;
    reject_leftovers(&args)?;
    let merged = report(&journal).map_err(|e| e.to_string())?;
    if json {
        emitln(merged.canonical_text())?;
    } else {
        emit(merged.render_table())?;
        for t in &merged.tasks {
            for name in &t.fault_names {
                emitln(format_args!("  {}: {name}", t.name))?;
            }
        }
    }
    Ok(())
}
