//! The `fires` CLI: run, resume and inspect FIRES campaigns.
//!
//! ```text
//! fires run    [--suite small|table2] [--circuit NAME]... [--name N]
//!              [--out DIR] [--threads N] [--deadline-ms MS]
//!              [--frames N] [--no-validate] [--json]
//! fires resume <journal> [--threads N] [--deadline-ms MS] [--json]
//! fires status <journal>
//! fires report <journal> [--json]
//! ```
//!
//! `run` journals to `<out>/<name>.jsonl` and writes machine-readable
//! observability reports next to it (`<name>.report.json`, one
//! `RunReport` per task rolled up into a campaign-level aggregate).
//! After a crash or kill, `fires resume <journal>` completes exactly the
//! missing work and produces a byte-identical `fires report`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use fires_jobs::{report, resume, run, CampaignSpec, RunSummary, RunnerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "resume" => cmd_resume(rest),
        "status" => cmd_status(rest),
        "report" => cmd_report(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fires: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  fires run    [--suite small|table2] [--circuit NAME]... [--name N]
               [--out DIR] [--threads N] [--deadline-ms MS]
               [--frames N] [--no-validate] [--json]
  fires resume <journal> [--threads N] [--deadline-ms MS] [--json]
  fires status <journal>
  fires report <journal> [--json]";

/// Pulls `--flag VALUE` out of `args`, mutating the vector.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

/// Pulls a boolean `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse_number<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got {value:?}"))
}

/// Runner knobs shared by `run` and `resume`.
fn runner_config(args: &mut Vec<String>) -> Result<RunnerConfig, String> {
    let mut rc = RunnerConfig::default();
    if let Some(threads) = take_value(args, "--threads")? {
        rc.threads = parse_number(&threads, "--threads")?;
    }
    if let Some(ms) = take_value(args, "--deadline-ms")? {
        rc.stem_deadline = Some(Duration::from_millis(parse_number(&ms, "--deadline-ms")?));
    }
    Ok(rc)
}

fn reject_leftovers(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(a) => Err(format!("unexpected argument {a:?}\n{USAGE}")),
        None => Ok(()),
    }
}

fn print_summary(summary: &RunSummary, journal: &Path) {
    println!(
        "{} unit(s) executed, {} skipped (already journaled), {} panicked, {} timed out, {} remaining",
        summary.executed, summary.skipped, summary.panicked, summary.timed_out, summary.remaining
    );
    if summary.complete() {
        println!("campaign complete; journal: {}", journal.display());
    } else {
        println!(
            "campaign INCOMPLETE; continue with: fires resume {}",
            journal.display()
        );
    }
}

/// Prints the merged report and writes the observability rollup next to
/// the journal.
fn finish(journal: &Path, json: bool) -> Result<(), String> {
    let merged = report(journal).map_err(|e| e.to_string())?;
    if json {
        println!("{}", merged.canonical_text());
    } else {
        print!("{}", merged.render_table());
    }
    let (_, campaign) = merged.run_reports();
    let report_path = journal.with_extension("report.json");
    campaign
        .write_to_file(&report_path)
        .map_err(|e| format!("{}: {e}", report_path.display()))?;
    println!("observability report: {}", report_path.display());
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let rc = runner_config(&mut args)?;
    let json = take_flag(&mut args, "--json");
    let suite = take_value(&mut args, "--suite")?;
    let out = take_value(&mut args, "--out")?.unwrap_or_else(|| "fires-out".into());
    let name = take_value(&mut args, "--name")?;
    let frames = take_value(&mut args, "--frames")?;
    let no_validate = take_flag(&mut args, "--no-validate");
    let mut circuits = Vec::new();
    while let Some(c) = take_value(&mut args, "--circuit")? {
        circuits.push(c);
    }
    reject_leftovers(&args)?;

    let mut spec = match (suite, circuits.is_empty()) {
        (Some(s), true) => CampaignSpec::suite(&s).map_err(|e| e.to_string())?,
        (None, false) => {
            CampaignSpec::from_circuits(name.clone().unwrap_or_else(|| "custom".into()), circuits)
        }
        (Some(_), false) => return Err("--suite and --circuit are mutually exclusive".into()),
        (None, true) => {
            return Err("nothing to run: pass --suite or --circuit\n".to_string() + USAGE)
        }
    };
    if let Some(n) = name {
        spec.name = n;
    }
    if let Some(frames) = frames {
        let frames: usize = parse_number(&frames, "--frames")?;
        for t in &mut spec.tasks {
            t.frames = Some(frames);
        }
    }
    if no_validate {
        for t in &mut spec.tasks {
            t.validate = false;
        }
    }

    let out_dir = PathBuf::from(out);
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let journal = out_dir.join(format!("{}.jsonl", spec.name));
    let summary = run(&spec, &journal, &rc).map_err(|e| e.to_string())?;
    print_summary(&summary, &journal);
    finish(&journal, json)
}

fn journal_arg(args: &mut Vec<String>) -> Result<PathBuf, String> {
    if args.is_empty() {
        return Err(format!("missing <journal> argument\n{USAGE}"));
    }
    Ok(PathBuf::from(args.remove(0)))
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let rc = runner_config(&mut args)?;
    let json = take_flag(&mut args, "--json");
    let journal = journal_arg(&mut args)?;
    reject_leftovers(&args)?;
    let summary = resume(&journal, &rc).map_err(|e| e.to_string())?;
    print_summary(&summary, &journal);
    finish(&journal, json)
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let journal = journal_arg(&mut args)?;
    reject_leftovers(&args)?;
    let merged = report(&journal).map_err(|e| e.to_string())?;
    let mut done = 0usize;
    let mut total = 0usize;
    for t in &merged.tasks {
        let recorded = t.units_ok + t.units_panicked + t.units_timed_out;
        done += recorded;
        total += t.units_total;
        println!(
            "{:<12} {:>5}/{:<5} unit(s) journaled ({} ok, {} panicked, {} timed out)",
            t.name, recorded, t.units_total, t.units_ok, t.units_panicked, t.units_timed_out
        );
    }
    println!(
        "{done}/{total} unit(s) journaled; campaign {}",
        if done == total {
            "complete"
        } else {
            "incomplete"
        }
    );
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let json = take_flag(&mut args, "--json");
    let journal = journal_arg(&mut args)?;
    reject_leftovers(&args)?;
    let merged = report(&journal).map_err(|e| e.to_string())?;
    if json {
        println!("{}", merged.canonical_text());
    } else {
        print!("{}", merged.render_table());
        for t in &merged.tasks {
            for name in &t.fault_names {
                println!("  {}: {name}", t.name);
            }
        }
    }
    Ok(())
}
