//! Machine-readable run reports for the experiment binaries.
//!
//! Every binary accepts `--json <path>` (or `--json=<path>`): alongside
//! its usual text table it then writes a schema-versioned
//! [`RunReport`](fires_obs::RunReport) capturing phase timings, counters
//! and the table's data, so experiment results can be diffed, plotted and
//! regression-tracked without scraping stdout.

use std::path::PathBuf;

use fires_atpg::CampaignSummary;
use fires_obs::{ChromeTraceSubscriber, Json, RunReport};
use fires_sim::FaultSimSummary;

/// The `--json` output destination extracted from the command line.
#[derive(Clone, Debug, Default)]
pub struct JsonOut {
    path: Option<PathBuf>,
}

impl JsonOut {
    /// Removes a `--json <path>` or `--json=<path>` flag from `args`,
    /// leaving the positional arguments in place.
    pub fn extract(args: &mut Vec<String>) -> JsonOut {
        let mut path = None;
        let mut i = 0;
        while i < args.len() {
            if let Some(p) = args[i].strip_prefix("--json=") {
                path = Some(PathBuf::from(p));
                args.remove(i);
            } else if args[i] == "--json" {
                args.remove(i);
                if i < args.len() {
                    path = Some(PathBuf::from(args.remove(i)));
                } else {
                    eprintln!("error: --json needs a file path");
                    std::process::exit(2);
                }
            } else {
                i += 1;
            }
        }
        JsonOut { path }
    }

    /// Parses the process arguments, returning the sink and the remaining
    /// positional arguments (program name stripped).
    pub fn from_env() -> (JsonOut, Vec<String>) {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let out = JsonOut::extract(&mut args);
        (out, args)
    }

    /// Whether `--json` was passed.
    pub fn requested(&self) -> bool {
        self.path.is_some()
    }

    /// Writes the report if `--json` was passed (otherwise a no-op).
    /// Failing to write a report the user asked for aborts the run.
    pub fn write(&self, report: &RunReport) {
        if let Some(path) = &self.path {
            if let Err(e) = report.write_to_file(path) {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            println!("wrote JSON report to {}", path.display());
        }
    }
}

/// The `--profile <path>` hotspot-profile destination extracted from
/// the command line.
///
/// When requested, [`ProfileOut::write`] saves the report's merged
/// [`RuleProfile`](fires_obs::RuleProfile) as a standalone JSON document
/// (readable by `fires profile`) and writes the matching folded stacks —
/// the input format of `flamegraph.pl`, inferno and speedscope — next to
/// it under a `.folded` extension.
#[derive(Clone, Debug, Default)]
pub struct ProfileOut {
    path: Option<PathBuf>,
}

impl ProfileOut {
    /// Removes a `--profile <path>` or `--profile=<path>` flag from
    /// `args`, leaving the positional arguments in place.
    pub fn extract(args: &mut Vec<String>) -> ProfileOut {
        let mut path = None;
        let mut i = 0;
        while i < args.len() {
            if let Some(p) = args[i].strip_prefix("--profile=") {
                path = Some(PathBuf::from(p));
                args.remove(i);
            } else if args[i] == "--profile" {
                args.remove(i);
                if i < args.len() {
                    path = Some(PathBuf::from(args.remove(i)));
                } else {
                    eprintln!("error: --profile needs a file path");
                    std::process::exit(2);
                }
            } else {
                i += 1;
            }
        }
        ProfileOut { path }
    }

    /// Whether `--profile` was passed.
    pub fn requested(&self) -> bool {
        self.path.is_some()
    }

    /// Writes the report's profile and folded stacks if `--profile` was
    /// passed (otherwise a no-op). An untraced build records no profile;
    /// that is a warning, not an abort, so one binary serves both
    /// feature sets. Failing to *write* a requested profile aborts, same
    /// as [`JsonOut::write`].
    pub fn write(&self, report: &RunReport) {
        let Some(path) = &self.path else { return };
        let Some(profile) = &report.profile else {
            eprintln!("warning: --profile ignored: the run recorded no profile (untraced build?)");
            return;
        };
        let fail = |p: &std::path::Path, e: std::io::Error| -> ! {
            eprintln!("error: cannot write {}: {e}", p.display());
            std::process::exit(2);
        };
        let doc = profile.to_json().to_pretty() + "\n";
        if let Err(e) = std::fs::write(path, doc) {
            fail(path, e);
        }
        let folded_path = path.with_extension("folded");
        if let Err(e) = std::fs::write(&folded_path, profile.folded_lines(&report.subject)) {
            fail(&folded_path, e);
        }
        println!(
            "wrote hotspot profile to {} (folded stacks: {})",
            path.display(),
            folded_path.display()
        );
    }
}

/// The `--trace <path>` Chrome-trace destination extracted from the
/// command line.
///
/// When requested, the process-wide trace subscriber is installed at
/// extraction time (so every span from that point on is captured) and
/// [`TraceOut::write`] saves the collected events as a Chrome Trace
/// Event Format document — loadable in Perfetto or `chrome://tracing`,
/// with one lane per worker thread.
#[derive(Clone, Debug, Default)]
pub struct TraceOut {
    path: Option<PathBuf>,
    subscriber: Option<&'static ChromeTraceSubscriber>,
}

impl TraceOut {
    /// Removes a `--trace <path>` or `--trace=<path>` flag from `args`,
    /// leaving positional arguments in place, and installs the trace
    /// subscriber when the flag was given.
    pub fn extract(args: &mut Vec<String>) -> TraceOut {
        let mut path = None;
        let mut i = 0;
        while i < args.len() {
            if let Some(p) = args[i].strip_prefix("--trace=") {
                path = Some(PathBuf::from(p));
                args.remove(i);
            } else if args[i] == "--trace" {
                args.remove(i);
                if i < args.len() {
                    path = Some(PathBuf::from(args.remove(i)));
                } else {
                    eprintln!("error: --trace needs a file path");
                    std::process::exit(2);
                }
            } else {
                i += 1;
            }
        }
        let subscriber = if path.is_some() {
            let installed = fires_obs::install_chrome_trace();
            if installed.is_none() {
                eprintln!(
                    "warning: --trace ignored: another trace subscriber is already installed"
                );
            }
            installed
        } else {
            None
        };
        TraceOut { path, subscriber }
    }

    /// Whether `--trace` was passed (and the subscriber won the global
    /// slot).
    pub fn active(&self) -> bool {
        self.path.is_some() && self.subscriber.is_some()
    }

    /// Writes the collected trace if `--trace` was passed (otherwise a
    /// no-op). Failing to write a trace the user asked for aborts the
    /// run, same as [`JsonOut::write`].
    pub fn write(&self) {
        let (Some(path), Some(subscriber)) = (&self.path, self.subscriber) else {
            return;
        };
        if let Err(e) = subscriber.write_trace(path) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote Chrome trace to {}", path.display());
    }
}

/// The `--threads` worker-count option shared by every experiment
/// binary.
///
/// `--threads N` (or `--threads=N`) runs FIRES on the in-process worker
/// pool with `N` workers; `--threads auto` uses every available core.
/// The default is 1 — the serial driver — so timings stay comparable
/// with older runs unless parallelism is asked for. Results are
/// identical either way (see
/// [`IdentifiedFault::wins_over`](fires_core::IdentifiedFault)).
#[derive(Clone, Copy, Debug)]
pub struct Threads {
    count: usize,
}

impl Threads {
    /// Removes a `--threads N` / `--threads=N` / `--threads auto` flag
    /// from `args`, leaving positional arguments in place.
    pub fn extract(args: &mut Vec<String>) -> Threads {
        let mut value: Option<String> = None;
        let mut i = 0;
        while i < args.len() {
            if let Some(v) = args[i].strip_prefix("--threads=") {
                value = Some(v.to_string());
                args.remove(i);
            } else if args[i] == "--threads" {
                args.remove(i);
                if i < args.len() {
                    value = Some(args.remove(i));
                } else {
                    eprintln!("error: --threads needs a worker count (or `auto`)");
                    std::process::exit(2);
                }
            } else {
                i += 1;
            }
        }
        let count = match value.as_deref() {
            None => 1,
            Some("auto") => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("error: --threads expects a positive number or `auto`, got {v:?}");
                    std::process::exit(2);
                }
            },
        };
        Threads { count }
    }

    /// The requested worker count (1 = serial driver).
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Folds an ATPG campaign into `report` under the `atpg.` namespace.
pub fn record_campaign(report: &mut RunReport, summary: &CampaignSummary) {
    let m = &mut report.metrics;
    m.incr("atpg.faults_targeted", summary.results.len() as u64);
    m.incr("atpg.detected", summary.num_detected() as u64);
    m.incr("atpg.untestable", summary.num_untestable() as u64);
    m.incr("atpg.aborted", summary.num_aborted() as u64);
    m.incr("atpg.backtracks", summary.total_backtracks());
    m.incr("atpg.decisions", summary.total_decisions());
    m.set_max("atpg.max_decision_depth", summary.max_decision_depth());
    report.add_phase("atpg", summary.elapsed.as_secs_f64());
}

/// Folds a fault-simulation summary into `report` under the `sim.`
/// namespace.
pub fn record_fault_sim(report: &mut RunReport, summary: &FaultSimSummary) {
    let m = &mut report.metrics;
    m.incr("sim.faults", summary.detections.len() as u64);
    m.incr("sim.detected", summary.num_detected() as u64);
    m.incr("sim.cycles_simulated", summary.cycles_simulated);
    m.incr("sim.cycles_offered", summary.cycles_offered);
    m.incr("sim.cycles_saved", summary.cycles_saved());
    m.incr("sim.gate_evaluations", summary.gate_evaluations);
}

/// A `{"name": ..., ...}` JSON object row, for table-shaped extras.
pub fn json_row<I>(fields: I) -> Json
where
    I: IntoIterator<Item = (&'static str, Json)>,
{
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extract_takes_separate_form() {
        let mut args = strings(&["s27", "--json", "out.json", "500"]);
        let out = JsonOut::extract(&mut args);
        assert!(out.requested());
        assert_eq!(out.path.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(args, strings(&["s27", "500"]));
    }

    #[test]
    fn extract_takes_equals_form() {
        let mut args = strings(&["--json=r.json"]);
        let out = JsonOut::extract(&mut args);
        assert_eq!(out.path.as_deref(), Some(std::path::Path::new("r.json")));
        assert!(args.is_empty());
    }

    #[test]
    fn threads_extracts_both_forms_and_defaults_to_serial() {
        let mut args = strings(&["s27", "--threads", "4", "500"]);
        assert_eq!(Threads::extract(&mut args).count(), 4);
        assert_eq!(args, strings(&["s27", "500"]));
        let mut args = strings(&["--threads=2"]);
        assert_eq!(Threads::extract(&mut args).count(), 2);
        assert!(args.is_empty());
        let mut args = strings(&["s27"]);
        assert_eq!(Threads::extract(&mut args).count(), 1);
        let mut args = strings(&["--threads=auto"]);
        assert!(Threads::extract(&mut args).count() >= 1);
    }

    #[test]
    fn extract_without_flag_is_inert() {
        let mut args = strings(&["s27", "500"]);
        let out = JsonOut::extract(&mut args);
        assert!(!out.requested());
        assert_eq!(args, strings(&["s27", "500"]));
        // write() without a path is a no-op.
        out.write(&RunReport::new("t", "s"));
    }

    #[test]
    fn profile_out_writes_profile_and_folded_stacks() {
        use fires_obs::{ProfileRule, RuleProfile};
        let dir = std::env::temp_dir().join(format!("fires-profileout-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hotspots.json");
        let mut args = vec![format!("--profile={}", path.display()), "s27".to_string()];
        let out = ProfileOut::extract(&mut args);
        assert!(out.requested());
        assert_eq!(args, strings(&["s27"]));

        // A report without a profile warns and writes nothing.
        let mut r = RunReport::new("t", "s27");
        out.write(&r);
        assert!(!path.exists());

        let mut p = RuleProfile::new();
        p.record_many(ProfileRule::FwdInvert, 3);
        r.profile = Some(p.clone());
        out.write(&r);
        let text = std::fs::read_to_string(&path).unwrap();
        let back = RuleProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        let folded = std::fs::read_to_string(path.with_extension("folded")).unwrap();
        assert!(
            folded.contains("s27;implication;invert;inverter 3\n"),
            "{folded}"
        );

        // Without the flag, extraction is inert and write is a no-op.
        let mut args = strings(&["s27"]);
        let out = ProfileOut::extract(&mut args);
        assert!(!out.requested());
        out.write(&r);
    }

    #[test]
    fn campaign_and_sim_recording() {
        let mut r = RunReport::new("test", "s27");
        record_campaign(&mut r, &CampaignSummary::default());
        record_fault_sim(&mut r, &FaultSimSummary::default());
        assert_eq!(r.metrics.counter("atpg.faults_targeted"), 0);
        assert_eq!(r.metrics.counter("sim.cycles_saved"), 0);
        assert_eq!(r.phases.len(), 1);
    }
}
