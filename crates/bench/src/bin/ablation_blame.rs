//! Ablation: the unobservability blame-set cap. A tiny cap refuses
//! legitimate unobservability marks (fewer faults); past a modest size the
//! curve saturates — justifying the default of 64.
//!
//! Run with `cargo run --release -p fires-bench --bin ablation_blame
//! [circuit-name]`.

use fires_bench::TextTable;
use fires_core::{Fires, FiresConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s386_like".to_owned());
    let entry = fires_circuits::suite::by_name(&name).expect("unknown suite circuit");
    println!("Ablation: blame-set cap on {name}\n");
    let mut t = TextTable::new(["cap", "# Red.", "0-cycle", "Max. c", "CPU s"]);
    for cap in [0usize, 1, 2, 4, 8, 16, 32, 64, 128] {
        let config = FiresConfig {
            max_frames: entry.frames,
            blame_cap: cap,
            ..FiresConfig::default()
        };
        let report = Fires::new(&entry.circuit, config).run();
        t.row([
            cap.to_string(),
            report.len().to_string(),
            report.num_zero_cycle().to_string(),
            report.max_c().to_string(),
            format!("{:.2}", report.elapsed().as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
}
