//! Ablation: the unobservability blame-set cap. A tiny cap refuses
//! legitimate unobservability marks (fewer faults); past a modest size the
//! curve saturates — justifying the default of 64.
//!
//! Run with `cargo run --release -p fires-bench --bin ablation_blame
//! [circuit-name] [--threads N|auto]`.

use fires_bench::{json_row, run_fires, JsonOut, TextTable, Threads};
use fires_core::FiresConfig;
use fires_obs::{Json, RunReport};

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let threads = Threads::extract(&mut args).count();
    let name = args
        .first()
        .cloned()
        .unwrap_or_else(|| "s386_like".to_owned());
    let entry = fires_circuits::suite::by_name(&name).expect("unknown suite circuit");
    println!("Ablation: blame-set cap on {name}\n");
    let mut rr = RunReport::new("ablation_blame", &name);
    let mut rows = Vec::new();
    let mut t = TextTable::new(["cap", "# Red.", "0-cycle", "Max. c", "CPU s"]);
    for cap in [0usize, 1, 2, 4, 8, 16, 32, 64, 128] {
        let config = FiresConfig {
            max_frames: entry.frames,
            blame_cap: cap,
            ..FiresConfig::default()
        };
        let report = run_fires(&entry.circuit, config, threads);
        t.row([
            cap.to_string(),
            report.len().to_string(),
            report.num_zero_cycle().to_string(),
            report.max_c().to_string(),
            format!("{:.2}", report.elapsed().as_secs_f64()),
        ]);
        rr.metrics.merge(report.metrics());
        rr.total_seconds += report.elapsed().as_secs_f64();
        rows.push(json_row([
            ("blame_cap", Json::from(cap)),
            ("redundant", Json::from(report.len())),
            ("zero_cycle", Json::from(report.num_zero_cycle())),
            ("max_c", Json::from(report.max_c())),
            ("seconds", Json::from(report.elapsed().as_secs_f64())),
        ]));
    }
    println!("{}", t.render());
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
}
