//! Regenerates the paper's Table 1 / Example 3: the sequential
//! implications of both processes on the stem `c` of the Figure-7 circuit
//! (reconstruction), the per-frame identified fault sets and the final
//! c-cycle redundant faults.
//!
//! Run with `cargo run --release -p fires-bench --bin table1`.
//! Pass `--json <path>` to also write a machine-readable run report and
//! `--threads N|auto` to size the identification stage's worker pool.
//! The trace below is produced by direct engine calls; the final
//! identification runs as a `fires-jobs` campaign like the other tables.

use fires_bench::{jobs_campaign, JsonOut, ProfileOut, TextTable, Threads, TraceOut};
use fires_core::{Fires, FiresConfig, IndicatorView};

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let trace = TraceOut::extract(&mut args);
    let profile = ProfileOut::extract(&mut args);
    let threads = Threads::extract(&mut args).count();
    let circuit = fires_circuits::figures::figure7();
    let fires = Fires::new(&circuit, FiresConfig::with_max_frames(3));
    let stem = fires.lines().stem_of(circuit.find("c").expect("stem c"));

    println!("Table 1: sequential implications for the stem `c` of Figure 7");
    println!("(reconstructed circuit; see fires-circuits docs)\n");

    let (p0, p1) = fires.analyze_stem(stem);
    for (label, imp) in [("c = 0-bar", &p0), ("c = 1-bar", &p1)] {
        let trace = fires.trace(imp);
        let mut t = TextTable::new(["Time", "Uncontrollable", "Unobservable"]);
        let frames: Vec<i32> = (imp.window().leftmost()..=imp.window().rightmost()).collect();
        for &f in &frames {
            let unc: Vec<String> = trace
                .uncontrollable
                .iter()
                .filter(|(ff, _, _)| *ff == f)
                .map(|(_, name, v)| format!("{name}={}bar", u8::from(*v)))
                .collect();
            let unobs: Vec<String> = trace
                .unobservable
                .iter()
                .filter(|(ff, _)| *ff == f)
                .map(|(_, name)| name.clone())
                .collect();
            t.row([f.to_string(), unc.join(" "), unobs.join(" ")]);
        }
        println!("Process {label}:");
        println!("{}", t.render());
    }

    let (campaign, _journal) = jobs_campaign("table1-fig7", &["fig7"], true, Some(3), threads);
    let task = &campaign.tasks[0];
    println!("c-cycle redundant faults identified by FIRES:");
    let mut t = TextTable::new(["Fault", "c", "frame"]);
    for (f, name) in task.faults.iter().zip(&task.fault_names) {
        t.row([name.clone(), f.c.to_string(), f.frame.to_string()]);
    }
    println!("{}", t.render());
    let zero_cycle = task.faults.iter().filter(|f| f.c == 0).count();
    let max_c = task.faults.iter().map(|f| f.c).max().unwrap_or(0);
    println!(
        "{} faults, {} zero-cycle, max c = {}",
        task.faults.len(),
        zero_cycle,
        max_c
    );

    let (reports, _) = campaign.run_reports();
    let mut rr = reports.into_iter().next().expect("one task");
    rr.tool = "table1".into();
    rr.subject = "figure7".into();
    json.write(&rr);
    profile.write(&rr);
    trace.write();
}
