//! Regenerates the paper's Table 1 / Example 3: the sequential
//! implications of both processes on the stem `c` of the Figure-7 circuit
//! (reconstruction), the per-frame identified fault sets and the final
//! c-cycle redundant faults.
//!
//! Run with `cargo run --release -p fires-bench --bin table1`.
//! Pass `--json <path>` to also write a machine-readable run report.

use fires_bench::{JsonOut, TextTable};
use fires_core::{Fires, FiresConfig};

fn main() {
    let (json, _args) = JsonOut::from_env();
    let circuit = fires_circuits::figures::figure7();
    let fires = Fires::new(&circuit, FiresConfig::with_max_frames(3));
    let stem = fires.lines().stem_of(circuit.find("c").expect("stem c"));

    println!("Table 1: sequential implications for the stem `c` of Figure 7");
    println!("(reconstructed circuit; see fires-circuits docs)\n");

    let (p0, p1) = fires.analyze_stem(stem);
    for (label, imp) in [("c = 0-bar", &p0), ("c = 1-bar", &p1)] {
        let trace = fires.trace(imp);
        let mut t = TextTable::new(["Time", "Uncontrollable", "Unobservable"]);
        let frames: Vec<i32> = (imp.window().leftmost()..=imp.window().rightmost()).collect();
        for &f in &frames {
            let unc: Vec<String> = trace
                .uncontrollable
                .iter()
                .filter(|(ff, _, _)| *ff == f)
                .map(|(_, name, v)| format!("{name}={}bar", u8::from(*v)))
                .collect();
            let unobs: Vec<String> = trace
                .unobservable
                .iter()
                .filter(|(ff, _)| *ff == f)
                .map(|(_, name)| name.clone())
                .collect();
            t.row([f.to_string(), unc.join(" "), unobs.join(" ")]);
        }
        println!("Process {label}:");
        println!("{}", t.render());
    }

    let report = fires.run();
    println!("c-cycle redundant faults identified by FIRES:");
    let mut t = TextTable::new(["Fault", "c", "frame"]);
    for f in report.redundant_faults() {
        t.row([
            f.fault.display(report.lines(), &circuit),
            f.c.to_string(),
            f.frame.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} faults, {} zero-cycle, max c = {}",
        report.len(),
        report.num_zero_cycle(),
        report.max_c()
    );

    json.write(&report.run_report("table1", "figure7"));
}
