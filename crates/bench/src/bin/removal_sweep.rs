//! The synthesis application at suite scale: iterative FIRES-driven
//! redundancy removal, reporting the area saved, the passes needed and the
//! warm-up clocks the simplified circuit requires.
//!
//! Run with `cargo run --release -p fires-bench --bin removal_sweep
//! [circuit-names...] [--max-iters N]`.

use fires_bench::TextTable;
use fires_core::{remove_redundancies, FiresConfig};

fn main() {
    let mut filter: Vec<String> = std::env::args().skip(1).collect();
    let mut max_iters = 60usize;
    if let Some(pos) = filter.iter().position(|a| a == "--max-iters") {
        if let Some(n) = filter.get(pos + 1).and_then(|s| s.parse().ok()) {
            max_iters = n;
        }
        filter.drain(pos..(pos + 2).min(filter.len()));
    }
    let defaults = ["s208_like", "s386_like", "s420_like", "s838_like", "s1238_like"];
    println!("Iterative redundancy removal (max {max_iters} FIRES passes per circuit)\n");
    let mut t = TextTable::new([
        "Circuit",
        "Gates before",
        "Gates after",
        "FFs before",
        "FFs after",
        "Removed",
        "Passes",
        "Warm-up c",
    ]);
    for entry in fires_circuits::suite::table2_suite() {
        let selected = if filter.is_empty() {
            defaults.contains(&entry.name)
        } else {
            filter.iter().any(|f| f == entry.name)
        };
        if !selected {
            continue;
        }
        let config = FiresConfig::with_max_frames(entry.frames);
        match remove_redundancies(&entry.circuit, config, max_iters) {
            Ok(out) => {
                t.row([
                    entry.name.to_string(),
                    entry.circuit.num_gates().to_string(),
                    out.circuit.num_gates().to_string(),
                    entry.circuit.num_dffs().to_string(),
                    out.circuit.num_dffs().to_string(),
                    out.removed.len().to_string(),
                    out.iterations.to_string(),
                    out.required_c.to_string(),
                ]);
            }
            Err(e) => {
                t.row([entry.name.to_string(), format!("error: {e}")]);
            }
        }
        use std::io::Write;
        print!(".");
        std::io::stdout().flush().ok();
    }
    println!("\n\n{}", t.render());
    println!(
        "Each removal is individually proven (validated FIRES) and the loop\n\
         re-analyzes after every change, as the paper's Section 7 sketches;\n\
         the simplified circuit is a delayed replacement needing `Warm-up c`\n\
         arbitrary clocks before the usual initialization."
    );
}
