//! The synthesis application at suite scale: iterative FIRES-driven
//! redundancy removal, reporting the area saved, the passes needed and the
//! warm-up clocks the simplified circuit requires.
//!
//! Run with `cargo run --release -p fires-bench --bin removal_sweep
//! [circuit-names...] [--max-iters N]`.

use fires_bench::{json_row, JsonOut, TextTable};
use fires_core::{remove_redundancies, FiresConfig};
use fires_obs::{Json, RunReport};

fn main() {
    let (json, mut filter) = JsonOut::from_env();
    let mut rr = RunReport::new("removal_sweep", "suite");
    let mut rows = Vec::new();
    let mut max_iters = 60usize;
    if let Some(pos) = filter.iter().position(|a| a == "--max-iters") {
        if let Some(n) = filter.get(pos + 1).and_then(|s| s.parse().ok()) {
            max_iters = n;
        }
        filter.drain(pos..(pos + 2).min(filter.len()));
    }
    let defaults = [
        "s208_like",
        "s386_like",
        "s420_like",
        "s838_like",
        "s1238_like",
    ];
    println!("Iterative redundancy removal (max {max_iters} FIRES passes per circuit)\n");
    let mut t = TextTable::new([
        "Circuit",
        "Gates before",
        "Gates after",
        "FFs before",
        "FFs after",
        "Removed",
        "Passes",
        "Warm-up c",
    ]);
    for entry in fires_circuits::suite::table2_suite() {
        let selected = if filter.is_empty() {
            defaults.contains(&entry.name)
        } else {
            filter.iter().any(|f| f == entry.name)
        };
        if !selected {
            continue;
        }
        let config = FiresConfig::with_max_frames(entry.frames);
        match remove_redundancies(&entry.circuit, config, max_iters) {
            Ok(out) => {
                t.row([
                    entry.name.to_string(),
                    entry.circuit.num_gates().to_string(),
                    out.circuit.num_gates().to_string(),
                    entry.circuit.num_dffs().to_string(),
                    out.circuit.num_dffs().to_string(),
                    out.removed.len().to_string(),
                    out.iterations.to_string(),
                    out.required_c.to_string(),
                ]);
                rr.metrics.merge(&out.metrics);
                rr.total_seconds += out.phase_times.total.as_secs_f64();
                rows.push(json_row([
                    ("circuit", Json::from(entry.name)),
                    ("gates_before", Json::from(entry.circuit.num_gates())),
                    ("gates_after", Json::from(out.circuit.num_gates())),
                    ("ffs_before", Json::from(entry.circuit.num_dffs())),
                    ("ffs_after", Json::from(out.circuit.num_dffs())),
                    ("removed", Json::from(out.removed.len())),
                    ("passes", Json::from(out.iterations)),
                    ("warmup_c", Json::from(out.required_c)),
                ]));
            }
            Err(e) => {
                t.row([entry.name.to_string(), format!("error: {e}")]);
                rows.push(json_row([
                    ("circuit", Json::from(entry.name)),
                    ("error", Json::from(e.to_string())),
                ]));
            }
        }
        use std::io::Write;
        print!(".");
        std::io::stdout().flush().ok();
    }
    println!("\n\n{}", t.render());
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
    println!(
        "Each removal is individually proven (validated FIRES) and the loop\n\
         re-analyzes after every change, as the paper's Section 7 sketches;\n\
         the simplified circuit is a delayed replacement needing `Warm-up c`\n\
         arbitrary clocks before the usual initialization."
    );
}
