//! Empirical cross-check by fault grading: long random-vector fault
//! simulation never detects any fault FIRES identified, while covering a
//! healthy share of the rest of the universe.
//!
//! Run with `cargo run --release -p fires-bench --bin random_grading
//! [circuit-name] [vectors]`.

use fires_bench::{record_fault_sim, run_fires, JsonOut, TextTable, Threads};
use fires_core::FiresConfig;
use fires_netlist::{FaultList, LineGraph};
use fires_sim::{parallel_simulate_faults, random_vectors};

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let threads = Threads::extract(&mut args).count();
    let name = args.first().map(String::as_str).unwrap_or("s386_like");
    let n_vectors: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let entry = fires_circuits::suite::by_name(name).expect("unknown suite circuit");
    let circuit = &entry.circuit;
    let lines = LineGraph::build(circuit);

    let report = run_fires(
        circuit,
        FiresConfig::with_max_frames(entry.frames).without_validation(),
        threads,
    );
    let identified: FaultList = report.redundant_faults().iter().map(|f| f.fault).collect();

    let universe = FaultList::collapsed(circuit, &lines);
    let vectors = random_vectors(circuit, n_vectors, 0xF1BE5);
    // Bit-parallel: 63 faulty machines per word, bit-exact with the
    // serial simulator.
    let summary = parallel_simulate_faults(circuit, &lines, universe.as_slice(), &vectors);

    let mut detected_identified = 0usize;
    let mut detected_rest = 0usize;
    let mut total_identified = 0usize;
    for (fault, det) in universe.iter().zip(&summary.detections) {
        let is_identified = identified.contains(fault);
        total_identified += usize::from(is_identified);
        if det.is_some() {
            if is_identified {
                detected_identified += 1;
            } else {
                detected_rest += 1;
            }
        }
    }
    let rest = universe.len() - total_identified;

    println!(
        "Random-vector fault grading on {name} ({} vectors, {} collapsed faults)\n",
        n_vectors,
        universe.len()
    );
    let mut t = TextTable::new(["Class", "Faults", "Detected", "Coverage"]);
    t.row([
        "FIRES-identified".to_string(),
        total_identified.to_string(),
        detected_identified.to_string(),
        format!(
            "{:.1}%",
            100.0 * detected_identified as f64 / total_identified.max(1) as f64
        ),
    ]);
    t.row([
        "rest of universe".to_string(),
        rest.to_string(),
        detected_rest.to_string(),
        format!("{:.1}%", 100.0 * detected_rest as f64 / rest.max(1) as f64),
    ]);
    println!("{}", t.render());
    assert_eq!(
        detected_identified, 0,
        "a FIRES-identified fault was detected by simulation — unsound!"
    );
    println!("PASS: no identified fault was ever detected by simulation.");

    let mut rr = report.run_report("random_grading", name);
    record_fault_sim(&mut rr, &summary);
    rr.set_extra("vectors", n_vectors as u64);
    rr.set_extra("identified", total_identified as u64);
    rr.set_extra("detected_identified", detected_identified as u64);
    rr.set_extra("detected_rest", detected_rest as u64);
    json.write(&rr);
}
