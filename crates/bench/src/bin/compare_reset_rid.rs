//! FIRES vs implicit state enumeration with a reset assumption (the
//! reference-\[7\] baseline, reimplemented in `fires-bdd`).
//!
//! Three observations the paper makes, measured:
//!
//! 1. with an (assumed fault-free) all-zero reset, the BDD method marks a
//!    *superset* of faults redundant — but each verdict is only as good as
//!    the reset assumption;
//! 2. FIRES' c-cycle verdicts need no reset at all and remain valid for
//!    the very same faults;
//! 3. on larger circuits the symbolic analysis blows past any reasonable
//!    node budget while FIRES keeps running (the practicality argument).
//!
//! Run with `cargo run --release -p fires-bench --bin compare_reset_rid`.

use fires_bdd::{reset_redundant, ResetRidOutcome};
use fires_bench::TextTable;
use fires_core::{Fires, FiresConfig};
use fires_netlist::{Circuit, FaultList, LineGraph};

fn analyze(t: &mut TextTable, name: &str, circuit: &Circuit, frames: usize, budget: usize) {
    let lines = LineGraph::build(circuit);
    let reset = vec![false; circuit.num_dffs()];
    let report = Fires::new(circuit, FiresConfig::with_max_frames(frames)).run();
    let universe = FaultList::collapsed(circuit, &lines);
    // Compare over the same (collapsed) universe.
    let fires_set: Vec<_> = report
        .redundant_faults()
        .iter()
        .map(|f| f.fault)
        .filter(|&f| universe.contains(f))
        .collect();
    let mut reset_red = 0usize;
    let mut overflow = 0usize;
    let mut fires_confirmed = 0usize;
    for fault in universe.iter() {
        match reset_redundant(circuit, &lines, fault, &reset, budget) {
            ResetRidOutcome::Redundant { .. } => {
                reset_red += 1;
                if fires_set.contains(&fault) {
                    fires_confirmed += 1;
                }
            }
            ResetRidOutcome::Overflow { .. } => overflow += 1,
            ResetRidOutcome::Irredundant { .. } => {}
        }
    }
    t.row([
        name.to_string(),
        universe.len().to_string(),
        fires_set.len().to_string(),
        reset_red.to_string(),
        fires_confirmed.to_string(),
        overflow.to_string(),
    ]);
}

fn main() {
    println!("FIRES vs reset-assuming implicit state enumeration (all-zero reset)\n");
    let mut t = TextTable::new([
        "Circuit",
        "Faults",
        "FIRES red.",
        "Reset-red.",
        "Both",
        "BDD overflow",
    ]);
    let budget = 1 << 21;
    analyze(&mut t, "figure3", &fires_circuits::figures::figure3(), 15, budget);
    analyze(&mut t, "figure7", &fires_circuits::figures::figure7(), 3, budget);
    analyze(&mut t, "s27", &fires_circuits::iscas::s27(), 15, budget);
    analyze(
        &mut t,
        "s208_like",
        &fires_circuits::suite::by_name("s208_like").unwrap().circuit,
        13,
        budget,
    );
    // The practicality point: a mid-size circuit under a tight budget.
    analyze(
        &mut t,
        "s1423_like*",
        &fires_circuits::suite::by_name("s1423_like").unwrap().circuit,
        10,
        1 << 16,
    );
    println!("{}", t.render());
    println!(
        "The two notions overlap without nesting: a known fault-free reset\n\
         hides many faults FIRES cannot claim (s208_like), while c-cycle\n\
         redundancies with c > 0 can escape the reset analysis and vice\n\
         versa. FIRES' verdicts need no reset and remain valid when the\n\
         block is embedded anywhere; the reset verdicts are only as sound\n\
         as the reset assumption. (* tight node budget to show the blowup\n\
         failure mode of implicit state enumeration.)"
    );
}
