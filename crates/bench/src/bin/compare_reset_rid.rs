//! FIRES vs implicit state enumeration with a reset assumption (the
//! reference-\[7\] baseline, reimplemented in `fires-bdd`).
//!
//! Three observations the paper makes, measured:
//!
//! 1. with an (assumed fault-free) all-zero reset, the BDD method marks a
//!    *superset* of faults redundant — but each verdict is only as good as
//!    the reset assumption;
//! 2. FIRES' c-cycle verdicts need no reset at all and remain valid for
//!    the very same faults;
//! 3. on larger circuits the symbolic analysis blows past any reasonable
//!    node budget while FIRES keeps running (the practicality argument).
//!
//! Run with `cargo run --release -p fires-bench --bin compare_reset_rid`.

use fires_bdd::{reset_redundant, ResetRidOutcome};
use fires_bench::{json_row, run_fires, JsonOut, TextTable, Threads};
use fires_core::FiresConfig;
use fires_netlist::{Circuit, FaultList, LineGraph};
use fires_obs::{Json, RunReport};

fn analyze(
    t: &mut TextTable,
    rr: &mut RunReport,
    name: &str,
    circuit: &Circuit,
    frames: usize,
    budget: usize,
    threads: usize,
) -> Json {
    let lines = LineGraph::build(circuit);
    let reset = vec![false; circuit.num_dffs()];
    let report = run_fires(circuit, FiresConfig::with_max_frames(frames), threads);
    let universe = FaultList::collapsed(circuit, &lines);
    // Compare over the same (collapsed) universe.
    let fires_set: Vec<_> = report
        .redundant_faults()
        .iter()
        .map(|f| f.fault)
        .filter(|&f| universe.contains(f))
        .collect();
    let mut reset_red = 0usize;
    let mut overflow = 0usize;
    let mut fires_confirmed = 0usize;
    for fault in universe.iter() {
        match reset_redundant(circuit, &lines, fault, &reset, budget) {
            ResetRidOutcome::Redundant { .. } => {
                reset_red += 1;
                if fires_set.contains(&fault) {
                    fires_confirmed += 1;
                }
            }
            ResetRidOutcome::Overflow { .. } => overflow += 1,
            ResetRidOutcome::Irredundant { .. } => {}
        }
    }
    t.row([
        name.to_string(),
        universe.len().to_string(),
        fires_set.len().to_string(),
        reset_red.to_string(),
        fires_confirmed.to_string(),
        overflow.to_string(),
    ]);
    rr.metrics.merge(report.metrics());
    rr.total_seconds += report.elapsed().as_secs_f64();
    json_row([
        ("circuit", Json::from(name)),
        ("faults", Json::from(universe.len())),
        ("fires_redundant", Json::from(fires_set.len())),
        ("reset_redundant", Json::from(reset_red)),
        ("both", Json::from(fires_confirmed)),
        ("bdd_overflow", Json::from(overflow)),
    ])
}

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let threads = Threads::extract(&mut args).count();
    println!("FIRES vs reset-assuming implicit state enumeration (all-zero reset)\n");
    let mut rr = RunReport::new("compare_reset_rid", "suite");
    let mut rows = Vec::new();
    let mut t = TextTable::new([
        "Circuit",
        "Faults",
        "FIRES red.",
        "Reset-red.",
        "Both",
        "BDD overflow",
    ]);
    let budget = 1 << 21;
    rows.push(analyze(
        &mut t,
        &mut rr,
        "figure3",
        &fires_circuits::figures::figure3(),
        15,
        budget,
        threads,
    ));
    rows.push(analyze(
        &mut t,
        &mut rr,
        "figure7",
        &fires_circuits::figures::figure7(),
        3,
        budget,
        threads,
    ));
    rows.push(analyze(
        &mut t,
        &mut rr,
        "s27",
        &fires_circuits::iscas::s27(),
        15,
        budget,
        threads,
    ));
    rows.push(analyze(
        &mut t,
        &mut rr,
        "s208_like",
        &fires_circuits::suite::by_name("s208_like").unwrap().circuit,
        13,
        budget,
        threads,
    ));
    // The practicality point: a mid-size circuit under a tight budget.
    rows.push(analyze(
        &mut t,
        &mut rr,
        "s1423_like*",
        &fires_circuits::suite::by_name("s1423_like")
            .unwrap()
            .circuit,
        10,
        1 << 16,
        threads,
    ));
    println!("{}", t.render());
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
    println!(
        "The two notions overlap without nesting: a known fault-free reset\n\
         hides many faults FIRES cannot claim (s208_like), while c-cycle\n\
         redundancies with c > 0 can escape the reset analysis and vice\n\
         versa. FIRES' verdicts need no reset and remain valid when the\n\
         block is embedded anywhere; the reset verdicts are only as sound\n\
         as the reset assumption. (* tight node budget to show the blowup\n\
         failure mode of implicit state enumeration.)"
    );
}
