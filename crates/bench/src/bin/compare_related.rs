//! The Example-3 comparison, generalized: FIRES vs the FUNTEST-style
//! combinational-envelope analysis (single-fault theorem, references
//! \[8\]\[9\]\[19\]) across the paper figures and the benchmark suite.
//!
//! The paper's claim: FIRES finds faults "beyond the scope of the
//! combinational ATG theorems" — the envelope sees only one frame, so
//! conflicts that need adjacent time frames are invisible to it.
//!
//! Run with `cargo run --release -p fires-bench --bin compare_related`.

use fires_bench::TextTable;
use fires_core::{funtest_like, Fires, FiresConfig};
use fires_netlist::Circuit;

fn row(t: &mut TextTable, name: &str, circuit: &Circuit, frames: usize) {
    let fires = Fires::new(
        circuit,
        FiresConfig::with_max_frames(frames).without_validation(),
    )
    .run();
    let env = funtest_like(circuit).expect("envelope construction");
    t.row([
        name.to_string(),
        fires.len().to_string(),
        env.len().to_string(),
        format!(
            "{:+}",
            fires.len() as isize - env.len() as isize
        ),
    ]);
}

fn main() {
    println!("FIRES vs FUNTEST-like combinational envelope (untestable faults)\n");
    let mut t = TextTable::new(["Circuit", "FIRES", "Envelope", "Advantage"]);
    row(&mut t, "figure3", &fires_circuits::figures::figure3(), 15);
    row(&mut t, "figure7", &fires_circuits::figures::figure7(), 3);
    row(&mut t, "s27", &fires_circuits::iscas::s27(), 15);
    for name in ["s208_like", "s386_like", "s420_like", "s838_like", "s1238_like"] {
        let entry = fires_circuits::suite::by_name(name).expect("suite circuit");
        row(&mut t, name, &entry.circuit, entry.frames);
    }
    println!("{}", t.render());
    println!(
        "Positive advantage = faults only the sequential implication\n\
         analysis can reach (conflicts spanning several time frames)."
    );
}
