//! The Example-3 comparison, generalized: FIRES vs the FUNTEST-style
//! combinational-envelope analysis (single-fault theorem, references
//! \[8\]\[9\]\[19\]) across the paper figures and the benchmark suite.
//!
//! The paper's claim: FIRES finds faults "beyond the scope of the
//! combinational ATG theorems" — the envelope sees only one frame, so
//! conflicts that need adjacent time frames are invisible to it.
//!
//! Run with `cargo run --release -p fires-bench --bin compare_related`.

use fires_bench::{json_row, run_fires, JsonOut, TextTable, Threads};
use fires_core::{funtest_like, FiresConfig};
use fires_netlist::Circuit;
use fires_obs::{Json, RunReport};

fn row(
    t: &mut TextTable,
    rr: &mut RunReport,
    name: &str,
    circuit: &Circuit,
    frames: usize,
    threads: usize,
) -> Json {
    let fires = run_fires(
        circuit,
        FiresConfig::with_max_frames(frames).without_validation(),
        threads,
    );
    let env = funtest_like(circuit).expect("envelope construction");
    t.row([
        name.to_string(),
        fires.len().to_string(),
        env.len().to_string(),
        format!("{:+}", fires.len() as isize - env.len() as isize),
    ]);
    rr.metrics.merge(fires.metrics());
    rr.total_seconds += fires.elapsed().as_secs_f64();
    json_row([
        ("circuit", Json::from(name)),
        ("fires", Json::from(fires.len())),
        ("envelope", Json::from(env.len())),
        (
            "advantage",
            Json::from(fires.len() as i64 - env.len() as i64),
        ),
    ])
}

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let threads = Threads::extract(&mut args).count();
    println!("FIRES vs FUNTEST-like combinational envelope (untestable faults)\n");
    let mut rr = RunReport::new("compare_related", "suite");
    let mut rows = Vec::new();
    let mut t = TextTable::new(["Circuit", "FIRES", "Envelope", "Advantage"]);
    rows.push(row(
        &mut t,
        &mut rr,
        "figure3",
        &fires_circuits::figures::figure3(),
        15,
        threads,
    ));
    rows.push(row(
        &mut t,
        &mut rr,
        "figure7",
        &fires_circuits::figures::figure7(),
        3,
        threads,
    ));
    rows.push(row(
        &mut t,
        &mut rr,
        "s27",
        &fires_circuits::iscas::s27(),
        15,
        threads,
    ));
    for name in [
        "s208_like",
        "s386_like",
        "s420_like",
        "s838_like",
        "s1238_like",
    ] {
        let entry = fires_circuits::suite::by_name(name).expect("suite circuit");
        rows.push(row(
            &mut t,
            &mut rr,
            name,
            &entry.circuit,
            entry.frames,
            threads,
        ));
    }
    println!("{}", t.render());
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
    println!(
        "Positive advantage = faults only the sequential implication\n\
         analysis can reach (conflicts spanning several time frames)."
    );
}
