//! Regenerates the paper's Figure 2: the structure of the fault universe
//! (testable ⊂ partially testable; untestable = not detectable;
//! redundant = not partially testable; plus the paper's new c-cycle
//! redundant class), computed *exactly* on small circuits by explicit
//! state-space analysis.
//!
//! Also cross-checks FIRES: every fault FIRES identifies must fall in the
//! c-cycle redundant region.
//!
//! Run with `cargo run --release -p fires-bench --bin fig2_fault_universe`.

use fires_bench::TextTable;
use fires_core::{Fires, FiresConfig};
use fires_netlist::{Circuit, FaultList, LineGraph};
use fires_verify::{classify, Limits};

fn analyze(name: &str, circuit: &Circuit, t: &mut TextTable) {
    let lines = LineGraph::build(circuit);
    let faults = FaultList::full(&lines);
    let limits = Limits::default();
    let mut detectable = 0usize;
    let mut partially_only = 0usize; // partially testable but not detectable
    let mut testable = 0usize;
    let mut redundant0 = 0usize; // Definition-4 redundant (0-cycle)
    let mut c_cycle_pos = 0usize; // c-cycle redundant for some c > 0 only
    let mut not_c_cycle = 0usize; // untestable yet never c-cycle redundant
    let mut unknown = 0usize;
    for fault in faults.iter() {
        match classify(circuit, &lines, fault, &limits) {
            Ok(class) => {
                if class.detectable == Some(true) {
                    detectable += 1;
                }
                if class.testable {
                    testable += 1;
                }
                if class.partially_testable && class.detectable == Some(false) {
                    partially_only += 1;
                }
                match class.c_cycle {
                    Some(0) => redundant0 += 1,
                    Some(_) => c_cycle_pos += 1,
                    None if class.detectable == Some(false) => not_c_cycle += 1,
                    None => {}
                }
            }
            Err(_) => unknown += 1,
        }
    }
    t.row([
        name.to_string(),
        faults.len().to_string(),
        detectable.to_string(),
        testable.to_string(),
        partially_only.to_string(),
        redundant0.to_string(),
        c_cycle_pos.to_string(),
        not_c_cycle.to_string(),
        unknown.to_string(),
    ]);
}

fn main() {
    let mut t = TextTable::new([
        "Circuit",
        "Faults",
        "Detectable",
        "Testable",
        "PartialOnly",
        "Red(c=0)",
        "Red(c>0)",
        "Unt!Red",
        "Unknown",
    ]);
    println!("Figure 2: exact structure of the fault universe (small circuits)\n");
    analyze("figure3", &fires_circuits::figures::figure3(), &mut t);
    analyze("figure7", &fires_circuits::figures::figure7(), &mut t);
    analyze("s27", &fires_circuits::iscas::s27(), &mut t);
    println!("{}", t.render());

    // Subset checks that define the figure, plus the FIRES containment.
    println!("FIRES containment check (every identified fault is c-cycle redundant):");
    for (name, circuit) in [
        ("figure3", fires_circuits::figures::figure3()),
        ("figure7", fires_circuits::figures::figure7()),
        ("s27", fires_circuits::iscas::s27()),
    ] {
        let report = Fires::new(&circuit, FiresConfig::default()).run();
        let limits = Limits::default();
        let mut ok = 0usize;
        let mut bad = 0usize;
        for f in report.redundant_faults() {
            match classify(&circuit, report.lines(), f.fault, &limits) {
                Ok(class) if matches!(class.c_cycle, Some(c) if c <= f.c) => ok += 1,
                _ => bad += 1,
            }
        }
        println!("  {name}: {} identified, {ok} verified, {bad} violations", report.len());
    }
}
