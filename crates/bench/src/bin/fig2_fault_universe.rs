//! Regenerates the paper's Figure 2: the structure of the fault universe
//! (testable ⊂ partially testable; untestable = not detectable;
//! redundant = not partially testable; plus the paper's new c-cycle
//! redundant class), computed *exactly* on small circuits by explicit
//! state-space analysis.
//!
//! Also cross-checks FIRES: every fault FIRES identifies must fall in the
//! c-cycle redundant region.
//!
//! Run with `cargo run --release -p fires-bench --bin fig2_fault_universe`.

use fires_bench::{json_row, run_fires, JsonOut, TextTable, Threads};
use fires_core::FiresConfig;
use fires_netlist::{Circuit, FaultList, LineGraph};
use fires_obs::{Json, RunReport};
use fires_verify::{classify, Limits};

fn analyze(name: &str, circuit: &Circuit, t: &mut TextTable) -> Json {
    let lines = LineGraph::build(circuit);
    let faults = FaultList::full(&lines);
    let limits = Limits::default();
    let mut detectable = 0usize;
    let mut partially_only = 0usize; // partially testable but not detectable
    let mut testable = 0usize;
    let mut redundant0 = 0usize; // Definition-4 redundant (0-cycle)
    let mut c_cycle_pos = 0usize; // c-cycle redundant for some c > 0 only
    let mut not_c_cycle = 0usize; // untestable yet never c-cycle redundant
    let mut unknown = 0usize;
    for fault in faults.iter() {
        match classify(circuit, &lines, fault, &limits) {
            Ok(class) => {
                if class.detectable == Some(true) {
                    detectable += 1;
                }
                if class.testable {
                    testable += 1;
                }
                if class.partially_testable && class.detectable == Some(false) {
                    partially_only += 1;
                }
                match class.c_cycle {
                    Some(0) => redundant0 += 1,
                    Some(_) => c_cycle_pos += 1,
                    None if class.detectable == Some(false) => not_c_cycle += 1,
                    None => {}
                }
            }
            Err(_) => unknown += 1,
        }
    }
    t.row([
        name.to_string(),
        faults.len().to_string(),
        detectable.to_string(),
        testable.to_string(),
        partially_only.to_string(),
        redundant0.to_string(),
        c_cycle_pos.to_string(),
        not_c_cycle.to_string(),
        unknown.to_string(),
    ]);
    json_row([
        ("circuit", Json::from(name)),
        ("faults", Json::from(faults.len())),
        ("detectable", Json::from(detectable)),
        ("testable", Json::from(testable)),
        ("partially_testable_only", Json::from(partially_only)),
        ("redundant_0_cycle", Json::from(redundant0)),
        ("redundant_c_positive", Json::from(c_cycle_pos)),
        ("untestable_not_redundant", Json::from(not_c_cycle)),
        ("unknown", Json::from(unknown)),
    ])
}

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let threads = Threads::extract(&mut args).count();
    let mut rr = RunReport::new("fig2_fault_universe", "figures+s27");
    let mut t = TextTable::new([
        "Circuit",
        "Faults",
        "Detectable",
        "Testable",
        "PartialOnly",
        "Red(c=0)",
        "Red(c>0)",
        "Unt!Red",
        "Unknown",
    ]);
    println!("Figure 2: exact structure of the fault universe (small circuits)\n");
    let rows = vec![
        analyze("figure3", &fires_circuits::figures::figure3(), &mut t),
        analyze("figure7", &fires_circuits::figures::figure7(), &mut t),
        analyze("s27", &fires_circuits::iscas::s27(), &mut t),
    ];
    rr.set_extra("universe", Json::Arr(rows));
    println!("{}", t.render());

    // Subset checks that define the figure, plus the FIRES containment.
    println!("FIRES containment check (every identified fault is c-cycle redundant):");
    let mut checks = Vec::new();
    for (name, circuit) in [
        ("figure3", fires_circuits::figures::figure3()),
        ("figure7", fires_circuits::figures::figure7()),
        ("s27", fires_circuits::iscas::s27()),
    ] {
        let report = run_fires(&circuit, FiresConfig::default(), threads);
        let limits = Limits::default();
        let mut ok = 0usize;
        let mut bad = 0usize;
        for f in report.redundant_faults() {
            match classify(&circuit, report.lines(), f.fault, &limits) {
                Ok(class) if matches!(class.c_cycle, Some(c) if c <= f.c) => ok += 1,
                _ => bad += 1,
            }
        }
        println!(
            "  {name}: {} identified, {ok} verified, {bad} violations",
            report.len()
        );
        rr.metrics.merge(report.metrics());
        rr.metrics.incr("fig2.containment_verified", ok as u64);
        rr.metrics.incr("fig2.containment_violations", bad as u64);
        checks.push(json_row([
            ("circuit", Json::from(name)),
            ("identified", Json::from(report.len())),
            ("verified", Json::from(ok)),
            ("violations", Json::from(bad)),
        ]));
    }
    rr.set_extra("containment", Json::Arr(checks));
    json.write(&rr);
}
