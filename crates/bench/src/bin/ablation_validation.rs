//! Ablation: cost and effect of the Definition-6 validation step and of
//! its strictness policy (conservative any-frame vs the paper's literal
//! earlier-frames rule).
//!
//! Run with `cargo run --release -p fires-bench --bin ablation_validation
//! [circuit names...]`.

use fires_bench::{json_row, run_fires, JsonOut, TextTable, Threads};
use fires_circuits::suite::table2_suite;
use fires_core::{Fires, FiresConfig, ValidationPolicy};
use fires_obs::{Json, RunReport};

fn main() {
    let (json, mut filter) = JsonOut::from_env();
    let threads = Threads::extract(&mut filter).count();
    let mut rr = RunReport::new("ablation_validation", "suite");
    let mut rows = Vec::new();
    let default_rows = [
        "s208_like",
        "s420_like",
        "s838_like",
        "s386_like",
        "s1238_like",
    ];
    let mut t = TextTable::new([
        "Circuit",
        "no-valid #",
        "CPU s",
        "any-frame #",
        "CPU s",
        "earlier #",
        "CPU s",
    ]);
    println!("Ablation: validation step and policy\n");
    for entry in table2_suite() {
        let selected = if filter.is_empty() {
            default_rows.contains(&entry.name)
        } else {
            filter.iter().any(|f| f == entry.name)
        };
        if !selected {
            continue;
        }
        let base = FiresConfig::with_max_frames(entry.frames);
        let none = run_fires(&entry.circuit, base.without_validation(), threads);
        let any = run_fires(&entry.circuit, base, threads);
        let earlier = Fires::new(
            &entry.circuit,
            FiresConfig {
                validation_policy: ValidationPolicy::EarlierFrames,
                ..base
            },
        )
        .run();
        t.row([
            entry.name.to_string(),
            none.len().to_string(),
            format!("{:.2}", none.elapsed().as_secs_f64()),
            any.len().to_string(),
            format!("{:.2}", any.elapsed().as_secs_f64()),
            earlier.len().to_string(),
            format!("{:.2}", earlier.elapsed().as_secs_f64()),
        ]);
        for r in [&none, &any, &earlier] {
            rr.metrics.merge(r.metrics());
            rr.total_seconds += r.elapsed().as_secs_f64();
        }
        rows.push(json_row([
            ("circuit", Json::from(entry.name)),
            ("no_validation", Json::from(none.len())),
            (
                "no_validation_seconds",
                Json::from(none.elapsed().as_secs_f64()),
            ),
            ("any_frame", Json::from(any.len())),
            ("any_frame_seconds", Json::from(any.elapsed().as_secs_f64())),
            ("earlier_frames", Json::from(earlier.len())),
            (
                "earlier_frames_seconds",
                Json::from(earlier.elapsed().as_secs_f64()),
            ),
        ]));
    }
    println!("{}", t.render());
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
    println!(
        "no-valid >= any-frame is guaranteed (validation only removes\n\
         candidates). The earlier-frames policy considers fewer indicators\n\
         bad per fault, but keys its memo per (fault, frame) and therefore\n\
         hits the per-process sweep budget sooner on redundancy-rich\n\
         circuits, where it conservatively drops candidates — which is why\n\
         its count can fall below the any-frame column."
    );
}
