//! Regenerates the paper's Table 2: FIRES with and without validation on
//! the benchmark suite (generated ISCAS89-like circuits; see DESIGN.md §3).
//!
//! Columns match the paper: `# Fr.` (frame budget), `# Unt.` and CPU
//! seconds for FIRES without validation, `# Red.` and CPU seconds with
//! validation, the number of 0-cycle redundancies and the maximum `c`.
//!
//! Run with `cargo run --release -p fires-bench --bin table2`.
//! Pass circuit names as arguments to restrict the rows, and
//! `--json <path>` to also write a machine-readable run report.

use std::io::Write;

use fires_bench::{json_row, table2_row, JsonOut};
use fires_circuits::suite::table2_suite;
use fires_obs::{Json, RunReport};

fn main() {
    let (json, filter) = JsonOut::from_env();
    let mut rr = RunReport::new("table2", "suite");
    let mut rows = Vec::new();
    println!("Table 2: results for benchmark circuits\n");
    println!(
        "{:<12} {:>5} | {:>7} {:>7} | {:>7} {:>7} {:>8} {:>7}",
        "Circuit", "# Fr.", "# Unt.", "CPU s", "# Red.", "CPU s", "0-cycle", "Max. c"
    );
    println!("{}", "-".repeat(72));
    for entry in table2_suite() {
        if !filter.is_empty() && !filter.iter().any(|f| f == entry.name) {
            continue;
        }
        let row = table2_row(&entry);
        println!(
            "{:<12} {:>5} | {:>7} {:>7.1} | {:>7} {:>7.1} {:>8} {:>7}",
            row.name,
            row.frames,
            row.untestable,
            row.cpu_unvalidated,
            row.redundant,
            row.cpu_validated,
            row.zero_cycle,
            row.max_c
        );
        std::io::stdout().flush().ok();
        rr.metrics.merge(&row.metrics);
        rr.add_phase(row.name, row.cpu_unvalidated + row.cpu_validated);
        rows.push(json_row([
            ("circuit", Json::from(row.name)),
            ("frames", Json::from(row.frames)),
            ("untestable", Json::from(row.untestable)),
            ("cpu_unvalidated", Json::from(row.cpu_unvalidated)),
            ("redundant", Json::from(row.redundant)),
            ("cpu_validated", Json::from(row.cpu_validated)),
            ("zero_cycle", Json::from(row.zero_cycle)),
            ("max_c", Json::from(row.max_c)),
        ]));
    }
    println!("\ndone");
    let total: f64 = rr.phases.iter().map(|(_, s)| s).sum();
    rr.total_seconds = total;
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
}
