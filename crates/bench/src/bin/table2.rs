//! Regenerates the paper's Table 2: FIRES with and without validation on
//! the benchmark suite (generated ISCAS89-like circuits; see DESIGN.md §3).
//!
//! Columns match the paper: `# Fr.` (frame budget), `# Unt.` and CPU
//! seconds for FIRES without validation, `# Red.` and CPU seconds with
//! validation, the number of 0-cycle redundancies and the maximum `c`.
//!
//! Both passes run as `fires-jobs` campaigns: per-stem work units on a
//! worker pool with panic isolation, journaled to disk as they complete.
//! A crash mid-table loses at most one stem; the printed journal paths
//! can be resumed and inspected with the `fires` CLI.
//!
//! Run with `cargo run --release -p fires-bench --bin table2`.
//! Pass circuit names as arguments to restrict the rows,
//! `--threads N|auto` to size the worker pool, `--step-budget N` /
//! `--retries N` to bound per-stem effort and retry panicked units
//! (DESIGN.md §10), `--json <path>` to also write a machine-readable
//! run report, and `--profile <path>` to write the engine's per-rule
//! hotspot profile plus folded stacks for flamegraph tooling
//! (DESIGN.md §12).

use fires_bench::{
    jobs_campaign_tuned, json_row, CampaignTuning, JsonOut, ProfileOut, Threads, TraceOut,
};
use fires_circuits::suite::table2_suite;
use fires_obs::{Json, RunReport};

fn main() {
    let (json, mut filter) = JsonOut::from_env();
    let trace = TraceOut::extract(&mut filter);
    let profile = ProfileOut::extract(&mut filter);
    let threads = Threads::extract(&mut filter).count();
    let tuning = CampaignTuning::extract(&mut filter);
    let suite = table2_suite();
    let names: Vec<&str> = suite
        .iter()
        .map(|e| e.name)
        .filter(|n| filter.is_empty() || filter.iter().any(|f| f == n))
        .collect();
    if names.is_empty() {
        eprintln!("error: no suite circuit matches {filter:?}");
        std::process::exit(2);
    }

    let (unvalidated, journal_u) =
        jobs_campaign_tuned("table2-unval", &names, false, None, threads, tuning);
    let (validated, journal_v) =
        jobs_campaign_tuned("table2-val", &names, true, None, threads, tuning);

    let mut rr = RunReport::new("table2", "suite");
    let mut rows = Vec::new();
    println!("Table 2: results for benchmark circuits\n");
    println!(
        "{:<12} {:>5} | {:>7} {:>7} | {:>7} {:>7} {:>8} {:>7}",
        "Circuit", "# Fr.", "# Unt.", "CPU s", "# Red.", "CPU s", "0-cycle", "Max. c"
    );
    println!("{}", "-".repeat(72));
    for (u, v) in unvalidated.tasks.iter().zip(&validated.tasks) {
        let zero_cycle = v.faults.iter().filter(|f| f.c == 0).count();
        let max_c = v.faults.iter().map(|f| f.c).max().unwrap_or(0);
        println!(
            "{:<12} {:>5} | {:>7} {:>7.1} | {:>7} {:>7.1} {:>8} {:>7}",
            v.name,
            v.frame_budget,
            u.faults.len(),
            u.seconds,
            v.faults.len(),
            v.seconds,
            zero_cycle,
            max_c
        );
        rr.add_phase(v.name.clone(), u.seconds + v.seconds);
        rows.push(json_row([
            ("circuit", Json::from(v.name.clone())),
            ("frames", Json::from(v.frame_budget as u64)),
            ("untestable", Json::from(u.faults.len() as u64)),
            ("cpu_unvalidated", Json::from(u.seconds)),
            ("redundant", Json::from(v.faults.len() as u64)),
            ("cpu_validated", Json::from(v.seconds)),
            ("zero_cycle", Json::from(zero_cycle as u64)),
            ("max_c", Json::from(u64::from(max_c))),
        ]));
    }
    println!("\ndone ({threads} worker thread(s))");
    println!(
        "campaign journals: {} / {}",
        journal_u.display(),
        journal_v.display()
    );

    let total: f64 = rr.phases.iter().map(|(_, s)| s).sum();
    rr.total_seconds = total;
    rr.set_extra("rows", Json::Arr(rows));
    rr.set_extra("threads", threads as u64);
    // Roll the per-task campaign reports up under the table report.
    let (children_u, _) = unvalidated.run_reports();
    let (children_v, _) = validated.run_reports();
    let all: Vec<RunReport> = children_u.into_iter().chain(children_v).collect();
    let rollup = RunReport::aggregate("table2/campaigns", "suite", &all);
    // The rolled-up engine metrics (counters, maxima and the per-stem
    // histograms) also live at the top level, where `fires compare`
    // flattens them: the committed perf baseline gates on these.
    rr.metrics.merge(&rollup.metrics);
    // The rolled-up hotspot profile rides at the top level too, where
    // `--profile` and `fires profile` can reach it.
    rr.profile = rollup.profile.clone();
    rr.set_extra("campaigns", rollup.to_json());
    json.write(&rr);
    profile.write(&rr);
    trace.write();
}
