//! Regenerates the paper's Table 2: FIRES with and without validation on
//! the benchmark suite (generated ISCAS89-like circuits; see DESIGN.md §3).
//!
//! Columns match the paper: `# Fr.` (frame budget), `# Unt.` and CPU
//! seconds for FIRES without validation, `# Red.` and CPU seconds with
//! validation, the number of 0-cycle redundancies and the maximum `c`.
//!
//! Run with `cargo run --release -p fires-bench --bin table2`.
//! Pass circuit names as arguments to restrict the rows.

use std::io::Write;

use fires_bench::table2_row;
use fires_circuits::suite::table2_suite;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    println!("Table 2: results for benchmark circuits\n");
    println!(
        "{:<12} {:>5} | {:>7} {:>7} | {:>7} {:>7} {:>8} {:>7}",
        "Circuit", "# Fr.", "# Unt.", "CPU s", "# Red.", "CPU s", "0-cycle", "Max. c"
    );
    println!("{}", "-".repeat(72));
    for entry in table2_suite() {
        if !filter.is_empty() && !filter.iter().any(|f| f == entry.name) {
            continue;
        }
        let row = table2_row(&entry);
        println!(
            "{:<12} {:>5} | {:>7} {:>7.1} | {:>7} {:>7.1} {:>8} {:>7}",
            row.name,
            row.frames,
            row.untestable,
            row.cpu_unvalidated,
            row.redundant,
            row.cpu_validated,
            row.zero_cycle,
            row.max_c
        );
        std::io::stdout().flush().ok();
    }
    println!("\ndone");
}
