//! The c-value distribution the paper defers to reference \[14\]: for each
//! benchmark circuit, how many identified redundancies need 0, 1, 2, ...
//! warm-up clocks. "The distribution ... varies widely from circuit to
//! circuit" — this binary regenerates it for the suite.
//!
//! Run with `cargo run --release -p fires-bench --bin c_distribution
//! [circuit-names...]`.

use fires_core::{Fires, FiresConfig};

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let defaults = [
        "s208_like",
        "s386_like",
        "s400_like",
        "s420_like",
        "s838_like",
        "s1238_like",
    ];
    println!("Distribution of c-cycle redundancies by c\n");
    for entry in fires_circuits::suite::table2_suite() {
        let selected = if filter.is_empty() {
            defaults.contains(&entry.name)
        } else {
            filter.iter().any(|f| f == entry.name)
        };
        if !selected {
            continue;
        }
        let report = Fires::new(
            &entry.circuit,
            FiresConfig::with_max_frames(entry.frames),
        )
        .run();
        let hist = report.c_histogram();
        let total = report.len().max(1);
        println!("{} ({} faults):", entry.name, report.len());
        for (c, count) in &hist {
            let bar = "#".repeat((count * 50).div_ceil(total));
            println!("  c={c:>2}: {count:>6} {bar}");
        }
        println!();
    }
}
