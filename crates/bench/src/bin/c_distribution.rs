//! The c-value distribution the paper defers to reference \[14\]: for each
//! benchmark circuit, how many identified redundancies need 0, 1, 2, ...
//! warm-up clocks. "The distribution ... varies widely from circuit to
//! circuit" — this binary regenerates it for the suite.
//!
//! Run with `cargo run --release -p fires-bench --bin c_distribution
//! [circuit-names...]`.

use fires_bench::{run_fires, JsonOut, Threads};
use fires_core::FiresConfig;
use fires_obs::{Json, RunReport};

fn main() {
    let (json, mut filter) = JsonOut::from_env();
    let threads = Threads::extract(&mut filter).count();
    let mut rr = RunReport::new("c_distribution", "suite");
    let mut dists = Json::object();
    let defaults = [
        "s208_like",
        "s386_like",
        "s400_like",
        "s420_like",
        "s838_like",
        "s1238_like",
    ];
    println!("Distribution of c-cycle redundancies by c\n");
    for entry in fires_circuits::suite::table2_suite() {
        let selected = if filter.is_empty() {
            defaults.contains(&entry.name)
        } else {
            filter.iter().any(|f| f == entry.name)
        };
        if !selected {
            continue;
        }
        let report = run_fires(
            &entry.circuit,
            FiresConfig::with_max_frames(entry.frames),
            threads,
        );
        let hist = report.c_histogram();
        let total = report.len().max(1);
        println!("{} ({} faults):", entry.name, report.len());
        let mut h = Json::object();
        for (c, count) in &hist {
            let bar = "#".repeat((count * 50).div_ceil(total));
            println!("  c={c:>2}: {count:>6} {bar}");
            h.set(c.to_string(), *count);
        }
        println!();
        rr.metrics.merge(report.metrics());
        rr.total_seconds += report.elapsed().as_secs_f64();
        dists.set(entry.name, h);
    }
    rr.set_extra("c_histograms", dists);
    json.write(&rr);
}
