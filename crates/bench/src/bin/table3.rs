//! Regenerates the paper's Table 3: FIRES vs a GENTEST-like deterministic
//! test generator on the `s5378_like` circuit.
//!
//! As in the paper, the faults FIRES identifies *without validation* are
//! handed to the ATPG as its only targets, with a generous per-fault
//! budget; the experiment's observable is the per-fault abort rate and the
//! CPU ratio — search struggles even to prove untestable what implications
//! identify instantly.
//!
//! The FIRES stage runs as a `fires-jobs` campaign (per-stem work units,
//! panic isolation, on-disk journal) so even this one-circuit experiment
//! is resumable and crash-tolerant.
//!
//! Run with `cargo run --release -p fires-bench --bin table3
//! [circuit-name] [max-targets] [--threads N|auto]`.

use fires_atpg::Atpg;
use fires_bench::{
    fires_targets, gentest_like, jobs_campaign, record_campaign, JsonOut, ProfileOut, TextTable,
    Threads, TraceOut,
};
use fires_netlist::LineGraph;

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let trace = TraceOut::extract(&mut args);
    let profile = ProfileOut::extract(&mut args);
    let threads = Threads::extract(&mut args).count();
    let name = args.first().map(String::as_str).unwrap_or("s5378_like");
    // Default cap keeps the harness runtime sane on redundancy-rich
    // generated circuits (pass a large number to target everything).
    let max_targets: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let entry = fires_circuits::suite::by_name(name).expect("unknown suite circuit");

    let (campaign, _journal) = jobs_campaign("table3-fires", &[name], false, None, threads);
    let fires_task = &campaign.tasks[0];
    let mut targets = fires_targets(&fires_task.faults);
    targets.truncate(max_targets);

    println!(
        "Table 3: FIRES vs GENTEST-like ATPG on {name} ({} targets)\n",
        targets.len()
    );

    let lines = LineGraph::build(&entry.circuit);
    let atpg = Atpg::new(&entry.circuit, &lines, gentest_like());
    let summary = atpg.run_faults(&targets);

    let fires_found = fires_task.faults.len();
    let fires_cpu = fires_task.seconds;
    let atpg_cpu = summary.elapsed.as_secs_f64();
    // When the target list is capped, extrapolate the ATPG CPU linearly to
    // the full FIRES fault set for a like-for-like speed-up figure.
    let atpg_cpu_full = atpg_cpu * fires_found as f64 / targets.len().max(1) as f64;
    let mut t = TextTable::new([
        "Circuit",
        "FIRES #Unt",
        "FIRES CPU s",
        "ATPG #Unt",
        "ATPG #Abo",
        "ATPG #Det",
        "ATPG CPU s",
        "Speed-up",
    ]);
    t.row([
        name.to_string(),
        fires_found.to_string(),
        format!("{fires_cpu:.1}"),
        summary.num_untestable().to_string(),
        summary.num_aborted().to_string(),
        summary.num_detected().to_string(),
        format!("{atpg_cpu:.1}"),
        format!("{:.0}", atpg_cpu_full / fires_cpu.max(1e-9)),
    ]);
    println!("{}", t.render());
    println!(
        "abort rate: {:.0}% of FIRES-identified faults",
        100.0 * summary.num_aborted() as f64 / targets.len().max(1) as f64
    );
    if summary.num_detected() > 0 {
        println!(
            "note: {} target(s) detected — bounded-untestable claims differ \
             from full redundancy; see EXPERIMENTS.md",
            summary.num_detected()
        );
    }

    let (fires_reports, _) = campaign.run_reports();
    let mut rr = fires_reports.into_iter().next().expect("one task");
    rr.tool = "table3".into();
    rr.subject = name.into();
    record_campaign(&mut rr, &summary);
    rr.set_extra("threads", threads as u64);
    rr.set_extra("targets", targets.len() as u64);
    rr.set_extra("fires_cpu_seconds", fires_cpu);
    rr.set_extra("atpg_cpu_seconds", atpg_cpu);
    rr.set_extra("speedup_extrapolated", atpg_cpu_full / fires_cpu.max(1e-9));
    json.write(&rr);
    profile.write(&rr);
    trace.write();
}
