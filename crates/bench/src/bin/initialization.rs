//! Initialization-sequence analysis (paper Section 1 and reference \[11\]):
//! does the circuit have a synchronizing sequence, does each identified
//! fault *preserve* it, and does redundancy removal keep the machine
//! synchronizable?
//!
//! Reference \[11\] deems a fault removable only if the faulty circuit still
//! has an initialization sequence — and the paper criticizes the method
//! because (a) the sequence may have to change and (b) the property is not
//! compositional. This binary measures, on exactly-analyzable circuits,
//! how FIRES' c-cycle redundancies relate to that criterion.
//!
//! Run with `cargo run --release -p fires-bench --bin initialization`.

use fires_bench::{json_row, run_fires, JsonOut, TextTable, Threads};
use fires_core::{remove_redundancies, FiresConfig};
use fires_netlist::{Circuit, LineGraph};
use fires_obs::{Json, RunReport};
use fires_verify::{is_synchronizable, shortest_synchronizing_sequence, BinMachine};

fn analyze(
    t: &mut TextTable,
    rr: &mut RunReport,
    name: &str,
    circuit: &Circuit,
    threads: usize,
) -> Json {
    let lines = LineGraph::build(circuit);
    let good = BinMachine::good(circuit, &lines);
    let sync_good = is_synchronizable(&good).unwrap_or(false);
    let reset_len = shortest_synchronizing_sequence(&good, 1_000_000)
        .ok()
        .flatten()
        .map(|s| s.len());

    let report = run_fires(circuit, FiresConfig::default(), threads);
    let mut preserved = 0usize;
    let mut broken = 0usize;
    for f in report.redundant_faults() {
        let faulty = BinMachine::faulty(circuit, &lines, f.fault);
        match is_synchronizable(&faulty) {
            Ok(true) => preserved += 1,
            Ok(false) => broken += 1,
            Err(_) => {}
        }
    }
    let after = remove_redundancies(circuit, FiresConfig::default(), 50)
        .ok()
        .map(|o| o.circuit);
    let sync_after = after
        .as_ref()
        .map(|c| {
            let lg = LineGraph::build(c);
            is_synchronizable(&BinMachine::good(c, &lg)).unwrap_or(false)
        })
        .unwrap_or(false);

    t.row([
        name.to_string(),
        if sync_good { "yes" } else { "no" }.to_string(),
        reset_len.map_or("-".to_string(), |l| l.to_string()),
        report.len().to_string(),
        preserved.to_string(),
        broken.to_string(),
        if sync_after { "yes" } else { "no" }.to_string(),
    ]);
    rr.metrics.merge(report.metrics());
    rr.total_seconds += report.elapsed().as_secs_f64();
    json_row([
        ("circuit", Json::from(name)),
        ("synchronizable", Json::from(sync_good)),
        ("reset_length", reset_len.map_or(Json::Null, Json::from)),
        ("identified", Json::from(report.len())),
        ("fault_keeps_sync", Json::from(preserved)),
        ("fault_breaks_sync", Json::from(broken)),
        ("sync_after_removal", Json::from(sync_after)),
    ])
}

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let threads = Threads::extract(&mut args).count();
    println!("Initialization analysis: synchronizing sequences vs c-cycle redundancy\n");
    let mut rr = RunReport::new("initialization", "figures+s27+fsm");
    let mut rows = Vec::new();
    let mut t = TextTable::new([
        "Circuit",
        "Sync?",
        "Reset len",
        "Identified",
        "Fault keeps sync",
        "Fault breaks sync",
        "Sync after removal",
    ]);
    rows.push(analyze(
        &mut t,
        &mut rr,
        "figure3",
        &fires_circuits::figures::figure3(),
        threads,
    ));
    rows.push(analyze(
        &mut t,
        &mut rr,
        "figure7",
        &fires_circuits::figures::figure7(),
        threads,
    ));
    rows.push(analyze(
        &mut t,
        &mut rr,
        "s27",
        &fires_circuits::iscas::s27(),
        threads,
    ));
    rows.push(analyze(
        &mut t,
        &mut rr,
        "fsm_one_hot(5)",
        &fires_circuits::generators::fsm_one_hot(5, 2, 3),
        threads,
    ));
    println!("{}", t.render());
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
    println!(
        "c-cycle redundancy needs no initialization assumption at all; the\n\
         'fault breaks sync' column shows faults reference [11] would have\n\
         to reject even though removing them is provably safe after max-c\n\
         warm-up clocks."
    );
}
