//! The paper's yield-loss motivation, measured: sequentially redundant
//! faults (the circuit works perfectly) that become *detectable under
//! full-scan testing* — chips that scan test would reject despite being
//! fully functional.
//!
//! For every fault FIRES identifies as c-cycle redundant, the full-scan
//! envelope is searched exhaustively (the envelope is combinational, so
//! the ATPG verdicts are exact).
//!
//! Run with `cargo run --release -p fires-bench --bin scan_yield
//! [circuit-names...]`.

use std::time::Duration;

use fires_atpg::{Atpg, AtpgConfig};
use fires_bench::{json_row, run_fires, JsonOut, TextTable, Threads};
use fires_core::FiresConfig;
use fires_netlist::{transform, Circuit, Fault, LineGraph};
use fires_obs::{Json, RunReport};

/// Maps a fault of the sequential circuit onto the scan envelope by
/// display name (the transform preserves names); returns `None` for
/// faults on lines that no longer exist (flip-flop D branches).
fn map_fault(
    circuit: &Circuit,
    lines: &LineGraph,
    scan: &Circuit,
    scan_lines: &LineGraph,
    fault: Fault,
) -> Option<Fault> {
    let name = lines.display_name(fault.line, circuit);
    scan_lines
        .line_ids()
        .find(|&l| scan_lines.display_name(l, scan) == name)
        .map(|l| Fault::new(l, fault.stuck))
}

fn analyze(
    t: &mut TextTable,
    rr: &mut RunReport,
    name: &str,
    circuit: &Circuit,
    frames: usize,
    threads: usize,
) -> Json {
    let report = run_fires(circuit, FiresConfig::with_max_frames(frames), threads);
    let scan = transform::full_scan(circuit).expect("scan transform");
    let lines = LineGraph::build(circuit);
    let scan_lines = LineGraph::build(&scan);
    let atpg = Atpg::new(
        &scan,
        &scan_lines,
        AtpgConfig {
            max_unroll: 1, // combinational: exact verdicts
            backtrack_limit: 1_000_000,
            time_limit: Duration::from_secs(5),
        },
    );
    let mut scan_detectable = 0usize;
    let mut unmapped = 0usize;
    for f in report.redundant_faults() {
        match map_fault(circuit, &lines, &scan, &scan_lines, f.fault) {
            Some(scan_fault) => {
                if atpg.run_fault(scan_fault).is_detected() {
                    scan_detectable += 1;
                }
            }
            None => unmapped += 1,
        }
    }
    t.row([
        name.to_string(),
        report.len().to_string(),
        scan_detectable.to_string(),
        unmapped.to_string(),
        if report.is_empty() {
            "-".to_string()
        } else {
            format!(
                "{:.0}%",
                100.0 * scan_detectable as f64 / report.len() as f64
            )
        },
    ]);
    rr.metrics.merge(report.metrics());
    rr.total_seconds += report.elapsed().as_secs_f64();
    json_row([
        ("circuit", Json::from(name)),
        ("seq_redundant", Json::from(report.len())),
        ("scan_detectable", Json::from(scan_detectable)),
        ("unmapped", Json::from(unmapped)),
    ])
}

fn main() {
    let (json, mut filter) = JsonOut::from_env();
    let threads = Threads::extract(&mut filter).count();
    println!("Scan-induced yield loss: redundant faults that full-scan rejects\n");
    let mut rr = RunReport::new("scan_yield", "suite");
    let mut rows = Vec::new();
    let mut t = TextTable::new([
        "Circuit",
        "Seq-redundant",
        "Scan-detectable",
        "Unmapped",
        "Yield loss",
    ]);
    rows.push(analyze(
        &mut t,
        &mut rr,
        "figure3",
        &fires_circuits::figures::figure3(),
        15,
        threads,
    ));
    rows.push(analyze(
        &mut t,
        &mut rr,
        "figure7",
        &fires_circuits::figures::figure7(),
        3,
        threads,
    ));
    let defaults = ["s208_like", "s386_like", "s420_like", "s838_like"];
    for entry in fires_circuits::suite::table2_suite() {
        let selected = if filter.is_empty() {
            defaults.contains(&entry.name)
        } else {
            filter.iter().any(|f| f == entry.name)
        };
        if selected {
            rows.push(analyze(
                &mut t,
                &mut rr,
                entry.name,
                &entry.circuit,
                entry.frames,
                threads,
            ));
        }
    }
    println!("{}", t.render());
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
    println!(
        "Every counted fault leaves the functional circuit indistinguishable\n\
         from a fault-free one (after at most Max-c warm-up clocks), yet a\n\
         full-scan test program would reject the part."
    );
}
