//! Ablation: the frame budget `T_M`. Deeper windows find more (and
//! higher-`c`) redundancies at higher cost, saturating once the circuit's
//! sequential depth is covered — exactly why the paper picks `#Fr <= 15`
//! per circuit size.
//!
//! Run with `cargo run --release -p fires-bench --bin ablation_tm
//! [circuit-name]`.

use fires_bench::{json_row, run_fires, JsonOut, TextTable, Threads};
use fires_core::FiresConfig;
use fires_obs::{Json, RunReport};

fn main() {
    let (json, mut args) = JsonOut::from_env();
    let threads = Threads::extract(&mut args).count();
    let name = args
        .first()
        .cloned()
        .unwrap_or_else(|| "s838_like".to_owned());
    let entry = fires_circuits::suite::by_name(&name).expect("unknown suite circuit");
    println!("Ablation: frame budget T_M on {name}\n");
    let mut rr = RunReport::new("ablation_tm", &name);
    let mut rows = Vec::new();
    let mut t = TextTable::new(["T_M", "# Red.", "0-cycle", "Max. c", "marks", "CPU s"]);
    for tm in [1usize, 2, 3, 5, 7, 9, 11, 13, 15, 20, 25] {
        let report = run_fires(&entry.circuit, FiresConfig::with_max_frames(tm), threads);
        t.row([
            tm.to_string(),
            report.len().to_string(),
            report.num_zero_cycle().to_string(),
            report.max_c().to_string(),
            report.marks_created().to_string(),
            format!("{:.2}", report.elapsed().as_secs_f64()),
        ]);
        rr.metrics.merge(report.metrics());
        rr.total_seconds += report.elapsed().as_secs_f64();
        rows.push(json_row([
            ("max_frames", Json::from(tm)),
            ("redundant", Json::from(report.len())),
            ("zero_cycle", Json::from(report.num_zero_cycle())),
            ("max_c", Json::from(report.max_c())),
            ("marks", Json::from(report.marks_created())),
            ("seconds", Json::from(report.elapsed().as_secs_f64())),
        ]));
    }
    println!("{}", t.render());
    rr.set_extra("rows", Json::Arr(rows));
    json.write(&rr);
}
