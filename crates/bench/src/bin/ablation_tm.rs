//! Ablation: the frame budget `T_M`. Deeper windows find more (and
//! higher-`c`) redundancies at higher cost, saturating once the circuit's
//! sequential depth is covered — exactly why the paper picks `#Fr <= 15`
//! per circuit size.
//!
//! Run with `cargo run --release -p fires-bench --bin ablation_tm
//! [circuit-name]`.

use fires_bench::TextTable;
use fires_core::{Fires, FiresConfig};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s838_like".to_owned());
    let entry = fires_circuits::suite::by_name(&name).expect("unknown suite circuit");
    println!("Ablation: frame budget T_M on {name}\n");
    let mut t = TextTable::new(["T_M", "# Red.", "0-cycle", "Max. c", "marks", "CPU s"]);
    for tm in [1usize, 2, 3, 5, 7, 9, 11, 13, 15, 20, 25] {
        let report = Fires::new(&entry.circuit, FiresConfig::with_max_frames(tm)).run();
        t.row([
            tm.to_string(),
            report.len().to_string(),
            report.num_zero_cycle().to_string(),
            report.max_c().to_string(),
            report.marks_created().to_string(),
            format!("{:.2}", report.elapsed().as_secs_f64()),
        ]);
    }
    println!("{}", t.render());
}
