//! Experiment harness for the FIRES reproduction.
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index):
//!
//! * `table1` — the sequential-implication trace of Example 3;
//! * `table2` — benchmark-suite results with and without validation;
//! * `table3` — FIRES vs the GENTEST-like ATPG budget on `s5378_like`;
//! * `table4` — FIRES vs the HITEC-like ATPG budget on `s838_like`;
//! * `fig2_fault_universe` — exhaustive Figure-2 fault classification;
//! * `ablation_validation`, `ablation_tm`, `ablation_blame` — design-choice
//!   ablations.
//!
//! This library hosts the shared plumbing: text-table rendering, the
//! scaled ATPG budget presets, and the per-circuit experiment runners the
//! binaries and Criterion benches share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use fires_atpg::AtpgConfig;
use fires_circuits::suite::SuiteEntry;
use fires_core::{Fires, FiresConfig, FiresReport, IdentifiedFault, RunMetrics};
use fires_jobs::{CampaignReport, CampaignSpec, RunnerConfig};
use fires_netlist::{Circuit, Fault};

mod reporting;

pub use reporting::{
    json_row, record_campaign, record_fault_sim, JsonOut, ProfileOut, Threads, TraceOut,
};

/// Runs FIRES with the bench-standard thread plumbing: 1 worker uses the
/// serial driver, anything more the in-process worker pool. Results are
/// identical either way; only wall-clock changes.
pub fn run_fires(circuit: &Circuit, config: FiresConfig, threads: usize) -> FiresReport<'_> {
    if threads <= 1 {
        Fires::new(circuit, config).run()
    } else {
        Fires::new(circuit, config).run_threaded(threads)
    }
}

/// Bounded-effort knobs the table binaries forward to their campaigns
/// (failure model in DESIGN.md §10).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CampaignTuning {
    /// Per-stem implication-step budget; over-budget stems are journaled
    /// as `exhausted` and excluded from result claims. `None` runs
    /// unbudgeted.
    pub step_budget: Option<u64>,
    /// How often a panicked unit is re-run before quarantine.
    pub retries: u32,
}

impl CampaignTuning {
    /// Removes `--step-budget N` and `--retries N` flags from `args`,
    /// leaving positional arguments in place (same idiom as
    /// [`Threads::extract`]).
    pub fn extract(args: &mut Vec<String>) -> CampaignTuning {
        let step_budget =
            extract_flag(args, "--step-budget").map(|v| parse_or_die(&v, "--step-budget"));
        let retries = extract_flag(args, "--retries").map_or(0, |v| parse_or_die(&v, "--retries"));
        CampaignTuning {
            step_budget,
            retries,
        }
    }
}

fn extract_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix(&prefix) {
            value = Some(v.to_string());
            args.remove(i);
        } else if args[i] == flag {
            args.remove(i);
            if i < args.len() {
                value = Some(args.remove(i));
            } else {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            }
        } else {
            i += 1;
        }
    }
    value
}

fn parse_or_die<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a number, got {value:?}");
        std::process::exit(2);
    })
}

/// Runs the named circuits as a `fires-jobs` campaign and returns the
/// merged report. This is how the table binaries drive their FIRES
/// stage: per-stem work units, panic isolation and an on-disk journal —
/// a crash mid-table loses at most one stem of work, and the journal can
/// be resumed with the `fires` CLI.
///
/// The journal lives in a per-process temp directory (bench runs are
/// throwaway campaigns); its path is returned alongside the report.
pub fn jobs_campaign(
    name: &str,
    circuits: &[&str],
    validate: bool,
    frames: Option<usize>,
    threads: usize,
) -> (CampaignReport, std::path::PathBuf) {
    jobs_campaign_tuned(
        name,
        circuits,
        validate,
        frames,
        threads,
        CampaignTuning::default(),
    )
}

/// [`jobs_campaign`] with explicit bounded-effort tuning.
pub fn jobs_campaign_tuned(
    name: &str,
    circuits: &[&str],
    validate: bool,
    frames: Option<usize>,
    threads: usize,
    tuning: CampaignTuning,
) -> (CampaignReport, std::path::PathBuf) {
    let mut spec = CampaignSpec::from_circuits(name, circuits.iter().copied());
    for t in &mut spec.tasks {
        t.validate = validate;
        t.frames = frames;
        t.step_budget = tuning.step_budget;
    }
    let dir = std::env::temp_dir().join(format!("fires-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
        panic!("cannot create campaign dir {}: {e}", dir.display());
    });
    let journal = dir.join(format!("{name}.jsonl"));
    let _ = std::fs::remove_file(&journal);
    let rc = RunnerConfig {
        threads,
        retries: tuning.retries,
        ..Default::default()
    };
    let summary = fires_jobs::run(&spec, &journal, &rc)
        .unwrap_or_else(|e| panic!("campaign {name:?} failed: {e}"));
    assert!(
        summary.complete(),
        "campaign {name:?} left units unprocessed"
    );
    if summary.panicked + summary.timed_out + summary.exhausted > 0 {
        eprintln!(
            "warning: campaign {name:?}: {} unit(s) degraded ({} panicked, {} timed out, {} exhausted); see {}",
            summary.panicked + summary.timed_out + summary.exhausted,
            summary.panicked,
            summary.timed_out,
            summary.exhausted,
            journal.display()
        );
    }
    let report = fires_jobs::report(&journal)
        .unwrap_or_else(|e| panic!("campaign {name:?} unreadable: {e}"));
    (report, journal)
}

/// A minimal fixed-width text table (the paper's tables are plain text).
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", c, w = width[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

/// The scaled stand-in for GENTEST's per-fault budget (the paper allowed
/// 100 s/fault on a SPARCstation 10; this machine is orders of magnitude
/// faster and the circuits smaller, so the budget is scaled down while
/// preserving the experiment's shape: generous but finite).
pub fn gentest_like() -> AtpgConfig {
    AtpgConfig {
        max_unroll: 16,
        backtrack_limit: 100_000,
        time_limit: Duration::from_millis(300),
    }
}

/// The scaled stand-in for HITEC's 20 s/fault budget.
pub fn hitec_like() -> AtpgConfig {
    AtpgConfig {
        max_unroll: 16,
        backtrack_limit: 20_000,
        time_limit: Duration::from_millis(60),
    }
}

/// One Table-2 row: the outcome of FIRES on a suite circuit, with and
/// without validation.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Circuit name.
    pub name: &'static str,
    /// Frame budget used.
    pub frames: usize,
    /// Untestable faults found without validation.
    pub untestable: usize,
    /// CPU seconds without validation.
    pub cpu_unvalidated: f64,
    /// Redundant faults found with validation.
    pub redundant: usize,
    /// CPU seconds with validation.
    pub cpu_validated: f64,
    /// Redundant faults with `c = 0`.
    pub zero_cycle: usize,
    /// Largest `c` over the redundant faults.
    pub max_c: u32,
    /// Engine metrics merged over both runs (empty when `fires-core` is
    /// built without its `tracing` feature).
    pub metrics: RunMetrics,
}

/// Runs both FIRES modes on one suite circuit, using every available
/// core (stems are independent; the threaded runner is result-identical
/// to the serial one).
pub fn table2_row(entry: &SuiteEntry) -> Table2Row {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base = FiresConfig::with_max_frames(entry.frames);
    let unvalidated = Fires::new(&entry.circuit, base.without_validation()).run_threaded(threads);
    let validated = Fires::new(&entry.circuit, base).run_threaded(threads);
    let mut metrics = unvalidated.metrics().clone();
    metrics.merge(validated.metrics());
    Table2Row {
        name: entry.name,
        frames: entry.frames,
        untestable: unvalidated.len(),
        cpu_unvalidated: unvalidated.elapsed().as_secs_f64(),
        redundant: validated.len(),
        cpu_validated: validated.elapsed().as_secs_f64(),
        zero_cycle: validated.num_zero_cycle(),
        max_c: validated.max_c(),
        metrics,
    }
}

/// The fault targets a FIRES run hands to the comparison ATPG: the faults
/// identified without validation, exactly as in the paper's Tables 3–4
/// ("the faults found by FIRES (without validation) were passed as the
/// only targets to the test generators"). Takes the identified-fault
/// slice so both the direct driver ([`FiresReport::redundant_faults`])
/// and a merged campaign ([`fires_jobs::TaskReport`]) feed it.
pub fn fires_targets(identified: &[IdentifiedFault]) -> Vec<Fault> {
    identified.iter().map(|f| f.fault).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(["Circuit", "#Unt", "CPU"]);
        t.row(["s27", "0", "0.01"]);
        t.row(["s838_like", "123", "1.20"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Circuit"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns right-aligned: both data rows have equal length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn presets_scale_sensibly() {
        assert!(gentest_like().time_limit > hitec_like().time_limit);
        assert!(gentest_like().backtrack_limit > hitec_like().backtrack_limit);
    }

    #[test]
    fn table2_row_runs_on_a_small_entry() {
        let entry = fires_circuits::suite::by_name("s208_like").unwrap();
        let row = table2_row(&entry);
        assert_eq!(row.name, "s208_like");
        assert!(row.untestable >= row.redundant);
        assert!(row.redundant > 0);
        assert!(row.max_c >= 1);
    }
}
