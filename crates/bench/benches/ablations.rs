//! Criterion: ablation benchmarks for the design choices DESIGN.md calls
//! out — validation on/off, blame-set cap, fault collapsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fires_core::{Fires, FiresConfig};
use fires_netlist::{FaultList, LineGraph};

fn validation_cost(c: &mut Criterion) {
    let entry = fires_circuits::suite::by_name("s420_like").expect("suite circuit");
    let base = FiresConfig::with_max_frames(entry.frames);
    let mut group = c.benchmark_group("ablation_validation");
    group.sample_size(10);
    group.bench_function("without", |b| {
        b.iter(|| {
            Fires::new(&entry.circuit, base.without_validation())
                .run()
                .len()
        })
    });
    group.bench_function("with", |b| {
        b.iter(|| Fires::new(&entry.circuit, base).run().len())
    });
    group.finish();
}

fn blame_cap_cost(c: &mut Criterion) {
    let entry = fires_circuits::suite::by_name("s386_like").expect("suite circuit");
    let mut group = c.benchmark_group("ablation_blame_cap");
    group.sample_size(10);
    for cap in [4usize, 16, 64] {
        let config = FiresConfig {
            max_frames: entry.frames,
            blame_cap: cap,
            ..FiresConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            b.iter(|| Fires::new(&entry.circuit, config).run().len())
        });
    }
    group.finish();
}

fn fault_collapsing(c: &mut Criterion) {
    let entry = fires_circuits::suite::by_name("s1238_like").expect("suite circuit");
    let lines = LineGraph::build(&entry.circuit);
    let mut group = c.benchmark_group("ablation_fault_collapsing");
    group.bench_function("full_universe", |b| {
        b.iter(|| FaultList::full(&lines).len())
    });
    group.bench_function("collapsed", |b| {
        b.iter(|| FaultList::collapsed(&entry.circuit, &lines).len())
    });
    group.finish();
}

criterion_group!(benches, validation_cost, blame_cap_cost, fault_collapsing);
criterion_main!(benches);
