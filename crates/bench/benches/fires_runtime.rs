//! Criterion: end-to-end FIRES runtime across circuit sizes (the CPU
//! columns of Table 2 as a tracked benchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fires_core::{Fires, FiresConfig};

fn fires_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("fires_run");
    group.sample_size(10);
    for name in [
        "s208_like",
        "s420_like",
        "s838_like",
        "s386_like",
        "s1238_like",
    ] {
        let entry = fires_circuits::suite::by_name(name).expect("suite circuit");
        let config = FiresConfig::with_max_frames(entry.frames);
        group.bench_with_input(BenchmarkId::from_parameter(name), &entry, |b, e| {
            b.iter(|| Fires::new(&e.circuit, config).run().len());
        });
    }
    group.finish();
}

fn fires_paper_figures(c: &mut Criterion) {
    let fig3 = fires_circuits::figures::figure3();
    let fig7 = fires_circuits::figures::figure7();
    let s27 = fires_circuits::iscas::s27();
    let config = FiresConfig::default();
    let mut group = c.benchmark_group("fires_figures");
    group.bench_function("figure3", |b| {
        b.iter(|| Fires::new(&fig3, config).run().len())
    });
    group.bench_function("figure7", |b| {
        b.iter(|| Fires::new(&fig7, config).run().len())
    });
    group.bench_function("s27", |b| b.iter(|| Fires::new(&s27, config).run().len()));
    group.finish();
}

criterion_group!(benches, fires_runtime, fires_paper_figures);
criterion_main!(benches);
