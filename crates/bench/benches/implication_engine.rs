//! Criterion: single-stem sequential implication throughput — the inner
//! loop the paper's polynomial-complexity claim rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fires_core::{FiresConfig, Implications, IndicatorView, ProcessScratch, Unc};
use fires_netlist::LineGraph;

fn single_stem(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication_single_stem");
    for name in ["s208_like", "s838_like", "s1238_like"] {
        let entry = fires_circuits::suite::by_name(name).expect("suite circuit");
        let lines = LineGraph::build(&entry.circuit);
        // Pick a stem deterministically: the first fanout stem.
        let stem = lines
            .fanout_stems(&entry.circuit)
            .next()
            .expect("has a fanout stem");
        let config = FiresConfig::with_max_frames(entry.frames);
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(&entry.circuit, &lines),
            |b, (circuit, lines)| {
                // Reuse the scratch pool across iterations, exactly as
                // `Fires::run_stem` reuses it across a campaign's stems.
                let mut scratch = ProcessScratch::default();
                b.iter(|| {
                    let mut imp = Implications::with_scratch(
                        circuit,
                        lines,
                        config,
                        std::mem::take(&mut scratch),
                    );
                    imp.assume(stem, Unc::Zero);
                    imp.propagate();
                    let n = imp.num_marks();
                    scratch = imp.into_scratch();
                    n
                });
            },
        );
    }
    group.finish();
}

fn frame_budget_scaling(c: &mut Criterion) {
    let entry = fires_circuits::suite::by_name("s838_like").expect("suite circuit");
    let lines = LineGraph::build(&entry.circuit);
    let stem = lines
        .fanout_stems(&entry.circuit)
        .next()
        .expect("has a fanout stem");
    let mut group = c.benchmark_group("implication_tm_scaling");
    for tm in [1usize, 5, 10, 15] {
        let config = FiresConfig::with_max_frames(tm);
        group.bench_with_input(BenchmarkId::from_parameter(tm), &tm, |b, _| {
            let mut scratch = ProcessScratch::default();
            b.iter(|| {
                let mut imp = Implications::with_scratch(
                    &entry.circuit,
                    &lines,
                    config,
                    std::mem::take(&mut scratch),
                );
                imp.assume(stem, Unc::One);
                imp.propagate();
                let n = imp.num_marks();
                scratch = imp.into_scratch();
                n
            });
        });
    }
    group.finish();
}

fn simulators(c: &mut Criterion) {
    use fires_sim::{random_vectors, EventSim, SeqSim};
    let entry = fires_circuits::suite::by_name("s1423_like").expect("suite circuit");
    let lines = LineGraph::build(&entry.circuit);
    let vectors = random_vectors(&entry.circuit, 256, 3);
    let mut group = c.benchmark_group("simulators_256_vectors");
    group.bench_function("oblivious", |b| {
        b.iter(|| {
            let mut sim = SeqSim::new(&entry.circuit, &lines);
            vectors
                .iter()
                .map(|v| sim.step(v, None).len())
                .sum::<usize>()
        })
    });
    group.bench_function("event_driven", |b| {
        b.iter(|| {
            let mut sim = EventSim::new(&entry.circuit, &lines);
            vectors
                .iter()
                .map(|v| sim.step(v, None).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn fault_simulators(c: &mut Criterion) {
    use fires_netlist::FaultList;
    use fires_sim::{parallel_simulate_faults, random_vectors, simulate_faults};
    let entry = fires_circuits::suite::by_name("s386_like").expect("suite circuit");
    let lines = LineGraph::build(&entry.circuit);
    let faults: Vec<_> = FaultList::collapsed(&entry.circuit, &lines)
        .iter()
        .take(126)
        .collect();
    let vectors = random_vectors(&entry.circuit, 64, 5);
    let mut group = c.benchmark_group("fault_sim_126_faults");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| simulate_faults(&entry.circuit, &lines, &faults, &vectors).num_detected())
    });
    group.bench_function("bit_parallel", |b| {
        b.iter(|| {
            parallel_simulate_faults(&entry.circuit, &lines, &faults, &vectors).num_detected()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    single_stem,
    frame_budget_scaling,
    simulators,
    fault_simulators
);
criterion_main!(benches);
