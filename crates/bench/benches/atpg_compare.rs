//! Criterion: per-fault ATPG effort on easy (testable) targets vs the
//! faults FIRES identifies — the microscopic view of Tables 3–4: search is
//! cheap when a test exists and expensive when it does not.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fires_atpg::{Atpg, AtpgConfig};
use fires_core::{Fires, FiresConfig};
use fires_netlist::{FaultList, LineGraph};

fn bounded() -> AtpgConfig {
    AtpgConfig {
        max_unroll: 8,
        backtrack_limit: 2_000,
        time_limit: Duration::from_millis(50),
    }
}

fn atpg_effort(c: &mut Criterion) {
    let entry = fires_circuits::suite::by_name("s208_like").expect("suite circuit");
    let lines = LineGraph::build(&entry.circuit);
    let atpg = Atpg::new(&entry.circuit, &lines, bounded());

    // FIRES targets: untestable by construction.
    let report = Fires::new(
        &entry.circuit,
        FiresConfig::with_max_frames(entry.frames).without_validation(),
    )
    .run();
    let hard: Vec<_> = report.redundant_faults().iter().map(|f| f.fault).collect();

    // Easy targets: the first few faults of the full universe that are
    // quickly detected.
    let easy: Vec<_> = FaultList::full(&lines)
        .iter()
        .filter(|&f| atpg.run_fault(f).is_detected())
        .take(4)
        .collect();

    let mut group = c.benchmark_group("atpg_per_fault");
    group.sample_size(10);
    if !easy.is_empty() {
        group.bench_function("easy_detected", |b| {
            b.iter(|| {
                easy.iter()
                    .filter(|&&f| atpg.run_fault(f).is_detected())
                    .count()
            })
        });
    }
    if !hard.is_empty() {
        let sample: Vec<_> = hard.iter().copied().take(4).collect();
        group.bench_function("fires_identified", |b| {
            b.iter(|| {
                sample
                    .iter()
                    .filter(|&&f| atpg.run_fault(f).is_detected())
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, atpg_effort);
criterion_main!(benches);
