//! RunReport schema migration: documents written by older builds must
//! stay readable through the current (v4) reader.
//!
//! The fixtures below are captured verbatim from the serializers of the
//! corresponding schema versions: v1 histograms had no derived quantile
//! fields and v1 campaign extras lacked the degradation counters; v2
//! added `units_exhausted` / `units_retried` / `retry_events` to
//! `extra`; v3 added `p50`/`p95`/`p99` to serialized histograms —
//! derived fields the reader recomputes, so their absence in old
//! documents costs nothing. v4 adds the optional engine hotspot
//! `profile` field, tolerated when absent, so v3 documents (which never
//! carry one) read unchanged.

use fires_obs::{Json, RunReport, SCHEMA_VERSION};

/// A schema_version-1 document as PR 1's serializer wrote it.
const V1_FIXTURE: &str = r#"{
  "schema_version": 1,
  "tool": "fires-bench/table2",
  "subject": "s27",
  "total_seconds": 0.125,
  "phases": {"implication": 0.09, "validation": 0.03},
  "phase_order": ["implication", "validation"],
  "metrics": {
    "counters": {"core.marks_created": 41, "core.stems_processed": 3},
    "maxima": {"core.max_frames_used": 5},
    "histograms": {
      "core.blame_set_size": {
        "count": 4,
        "sum": 70,
        "min": 2,
        "max": 60,
        "mean": 17.5,
        "log2_buckets": {"1": 1, "2": 2, "5": 1}
      }
    }
  },
  "extra": {"identified_faults": 2}
}"#;

/// A schema_version-2 document with the campaign degradation counters.
const V2_FIXTURE: &str = r#"{
  "schema_version": 2,
  "tool": "fires-jobs/campaign",
  "subject": "table2-small",
  "total_seconds": 3.5,
  "phases": {"implication": 2.0, "unobservability": 1.0, "validation": 0.5},
  "phase_order": ["implication", "unobservability", "validation"],
  "metrics": {
    "counters": {"core.marks_created": 120},
    "maxima": {"core.max_queue_depth": 64},
    "histograms": {
      "core.stem_marks": {
        "count": 12,
        "sum": 120,
        "min": 1,
        "max": 40,
        "mean": 10.0,
        "log2_buckets": {"1": 4, "3": 6, "5": 2}
      }
    }
  },
  "extra": {
    "units_ok": 10,
    "units_exhausted": 1,
    "units_retried": 2,
    "retry_events": 3
  }
}"#;

/// A schema_version-3 document as PR 5's serializer wrote it: derived
/// quantiles on histograms, per-stem cost histograms, no `profile`.
const V3_FIXTURE: &str = r#"{
  "schema_version": 3,
  "tool": "table2",
  "subject": "suite",
  "total_seconds": 2.25,
  "phases": {"s208_like": 2.25},
  "phase_order": ["s208_like"],
  "metrics": {
    "counters": {"core.marks_created": 900, "core.stems_processed": 21},
    "maxima": {"core.max_queue_depth": 48},
    "histograms": {
      "core.stem_steps": {
        "count": 21,
        "sum": 4200,
        "min": 40,
        "max": 900,
        "mean": 200.0,
        "p50": 128,
        "p95": 512,
        "p99": 900,
        "log2_buckets": {"5": 6, "7": 10, "9": 5}
      }
    }
  },
  "extra": {"threads": 1}
}"#;

#[test]
fn v1_document_reads_through_current_reader() {
    let report = RunReport::from_json_str(V1_FIXTURE).expect("v1 must stay readable");
    assert_eq!(report.tool, "fires-bench/table2");
    assert_eq!(report.subject, "s27");
    assert_eq!(report.phases.len(), 2);
    assert_eq!(report.metrics.counter("core.marks_created"), 41);
    let h = report.metrics.histogram("core.blame_set_size").unwrap();
    assert_eq!(h.count(), 4);
    assert_eq!(h.max(), 60);
    // Quantiles are recomputed from the buckets even though the v1
    // document never carried them.
    assert!(h.p95() <= h.max() && h.p50() >= h.min());
    assert_eq!(
        report.extra.get("identified_faults").and_then(Json::as_u64),
        Some(2)
    );
}

#[test]
fn v2_document_reads_through_current_reader() {
    let report = RunReport::from_json_str(V2_FIXTURE).expect("v2 must stay readable");
    assert_eq!(report.tool, "fires-jobs/campaign");
    assert_eq!(report.metrics.maximum("core.max_queue_depth"), 64);
    assert_eq!(
        report.extra.get("units_retried").and_then(Json::as_u64),
        Some(2)
    );
    let h = report.metrics.histogram("core.stem_marks").unwrap();
    assert_eq!(h.sum(), 120);
    assert!(h.p50() >= 1 && h.p99() <= 40);
}

#[test]
fn v3_document_reads_through_current_reader() {
    let report = RunReport::from_json_str(V3_FIXTURE).expect("v3 must stay readable");
    assert_eq!(report.tool, "table2");
    assert_eq!(report.metrics.counter("core.stems_processed"), 21);
    let h = report.metrics.histogram("core.stem_steps").unwrap();
    assert_eq!(h.sum(), 4200);
    // The profile field did not exist before v4; its absence reads as
    // "not recorded", never as an error.
    assert!(report.profile.is_none());
}

#[test]
fn migrated_documents_round_trip_at_current_version() {
    // Reading an old document and re-serializing stamps the current
    // schema and produces a self-consistent v4 document.
    for fixture in [V1_FIXTURE, V2_FIXTURE, V3_FIXTURE] {
        let report = RunReport::from_json_str(fixture).unwrap();
        let text = report.to_json_string();
        let j = Json::parse(&text).unwrap();
        assert_eq!(
            j.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        // Serialized histograms now carry the quantile summary fields.
        let hists = j
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(Json::as_obj)
            .unwrap();
        for h in hists.values() {
            for field in ["p50", "p95", "p99"] {
                assert!(h.get(field).and_then(Json::as_u64).is_some(), "{field}");
            }
        }
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }
}

#[test]
fn doctored_quantiles_cannot_poison_the_reader() {
    // p50/p95/p99 are derived on read; a tampered value is ignored.
    let mut j = Json::parse(V2_FIXTURE).unwrap();
    let report_before = RunReport::from_json_str(V2_FIXTURE).unwrap();
    let mut metrics = j.get("metrics").unwrap().clone();
    let mut hists = metrics.get("histograms").unwrap().clone();
    let mut h = hists.get("core.stem_marks").unwrap().clone();
    h.set("p95", 999_999u64);
    hists.set("core.stem_marks", h);
    metrics.set("histograms", hists);
    j.set("metrics", metrics);
    let report_after = RunReport::from_json(&j).unwrap();
    assert_eq!(report_after, report_before);
}

#[test]
fn future_schema_is_rejected() {
    let mut j = Json::parse(V2_FIXTURE).unwrap();
    j.set("schema_version", SCHEMA_VERSION + 1);
    assert!(RunReport::from_json(&j).is_err());
}
