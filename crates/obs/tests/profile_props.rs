//! Property tests for `RuleProfile::merge`: like `Histogram::merge`
//! (see `histogram_props.rs`), the profile merge must behave as a
//! commutative, associative fold that agrees with single-shot recording
//! across *any* split of the event stream. That is what lets per-stem
//! profiles be folded across worker threads, campaign units and
//! kill/resume fragments in whatever order the scheduler produced them.

use fires_obs::{ProfileRule, RuleProfile, ALL_RULES};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Just;

/// One recording call against a profile. Apportioning is deliberately
/// *not* an event: it happens once per measured span (per stem), and its
/// own properties are tested separately below.
#[derive(Clone, Debug)]
enum Event {
    Step(usize),
    Many(usize, u64),
    Unattributed,
    DistCache(bool),
    FrameOffset(u64),
    BlameSize(u64),
}

fn apply(p: &mut RuleProfile, e: &Event) {
    match *e {
        Event::Step(i) => p.record(ALL_RULES[i]),
        Event::Many(i, n) => p.record_many(ALL_RULES[i], n),
        Event::Unattributed => p.note_unattributed(),
        Event::DistCache(hit) => p.record_dist_cache(hit),
        Event::FrameOffset(f) => p.record_frame_offset(f),
        Event::BlameSize(s) => p.record_blame_size(s),
    }
}

fn record_all(events: &[Event]) -> RuleProfile {
    let mut p = RuleProfile::new();
    for e in events {
        apply(&mut p, e);
    }
    p
}

/// Arbitrary recording events. Counts stay below 2^20 per event so that
/// even 60-event streams keep every total far under 2^53, where the JSON
/// layer's `f64` numbers are exact.
fn event_strategy() -> BoxedStrategy<Event> {
    prop_oneof![
        (0..ProfileRule::COUNT).prop_map(Event::Step),
        (0..ProfileRule::COUNT, 1u64..1_000_000).prop_map(|(i, n)| Event::Many(i, n)),
        Just(Event::Unattributed),
        any::<bool>().prop_map(Event::DistCache),
        (0u64..4096).prop_map(Event::FrameOffset),
        (0u64..4096).prop_map(Event::BlameSize),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Splitting the event stream anywhere and merging the halves equals
    /// recording the whole stream into one profile.
    #[test]
    fn merge_agrees_with_single_shot_across_any_split(
        events in vec(event_strategy(), 0..40),
        cut_seed in 0usize..1000,
    ) {
        let whole = record_all(&events);
        let cut = if events.is_empty() { 0 } else { cut_seed % (events.len() + 1) };
        let mut left = record_all(&events[..cut]);
        let right = record_all(&events[cut..]);
        left.merge(&right);
        prop_assert_eq!(&left, &whole);
    }

    /// a ∪ b == b ∪ a.
    #[test]
    fn merge_is_commutative(
        a in vec(event_strategy(), 0..25),
        b in vec(event_strategy(), 0..25),
    ) {
        let (pa, pb) = (record_all(&a), record_all(&b));
        let mut ab = pa.clone();
        ab.merge(&pb);
        let mut ba = pb.clone();
        ba.merge(&pa);
        prop_assert_eq!(ab, ba);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        a in vec(event_strategy(), 0..15),
        b in vec(event_strategy(), 0..15),
        c in vec(event_strategy(), 0..15),
    ) {
        let (pa, pb, pc) = (record_all(&a), record_all(&b), record_all(&c));
        let mut left = pa.clone();
        left.merge(&pb);
        left.merge(&pc);
        let mut bc = pb.clone();
        bc.merge(&pc);
        let mut right = pa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Many-way splits (the realistic campaign shape: one fragment per
    /// worker per resume) still agree with single-shot recording, and the
    /// JSON round trip preserves the merged result exactly — including
    /// per-fragment apportioned nanos, which merge additively.
    #[test]
    fn multiway_merge_and_round_trip(
        events in vec(event_strategy(), 1..60),
        parts in 1usize..8,
        span_nanos in 0u64..1 << 30,
    ) {
        let mut merged = RuleProfile::new();
        let mut expected_steps = 0u64;
        for chunk in events.chunks(events.len().div_ceil(parts)) {
            let mut fragment = record_all(chunk);
            // Each fragment measured its own span, like each stem does.
            fragment.apportion_nanos(span_nanos);
            expected_steps += fragment.total_steps();
            merged.merge(&fragment);
        }
        prop_assert_eq!(merged.total_steps(), expected_steps);
        let back = RuleProfile::from_json(&merged.to_json()).unwrap();
        prop_assert_eq!(back, merged);
    }

    /// Apportioning conserves the measured span up to per-bucket floor
    /// rounding: the per-rule nanos never exceed the span and never lose
    /// more than one nanosecond per rule bucket.
    #[test]
    fn apportioned_nanos_conserve_the_span(
        events in vec(event_strategy(), 0..40),
        span_nanos in 0u64..1 << 40,
    ) {
        let mut p = record_all(&events);
        p.apportion_nanos(span_nanos);
        if p.attributed_steps() == 0 {
            prop_assert_eq!(p.total_nanos(), 0);
        } else {
            prop_assert!(p.total_nanos() <= span_nanos);
            prop_assert!(
                span_nanos - p.total_nanos() < ProfileRule::COUNT as u64,
                "lost {} ns to rounding", span_nanos - p.total_nanos()
            );
        }
    }

    /// The deterministic step counts — and only those — cross over into
    /// gate-able `core.rule.*` counters, whatever was recorded.
    #[test]
    fn exported_counters_mirror_steps_exactly(events in vec(event_strategy(), 0..40)) {
        let mut p = record_all(&events);
        p.apportion_nanos(12_345);
        let mut metrics = fires_obs::RunMetrics::new();
        p.export_counters(&mut metrics);
        for rule in ALL_RULES {
            let name = format!("core.rule.{}", rule.name());
            prop_assert_eq!(metrics.counter(&name), p.steps(rule));
        }
        prop_assert_eq!(metrics.counter("core.rule.unattributed"), p.unattributed_steps());
        let expected = p.entries().count() + usize::from(p.unattributed_steps() > 0);
        prop_assert_eq!(metrics.counters().count(), expected);
    }
}
