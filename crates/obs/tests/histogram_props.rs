//! Property tests for `Histogram::merge`: the merge must behave like a
//! commutative, associative fold that agrees with single-shot recording
//! across *any* split of the observation stream. These mirror the
//! journal resume-cut suite in `fires-jobs` — a campaign's metrics are
//! merged from per-thread, per-resume fragments in whatever order the
//! scheduler produced them, and the result must not depend on that
//! order.

use fires_obs::Histogram;
use proptest::collection::vec;
use proptest::prelude::*;

fn observe_all(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.observe(v);
    }
    h
}

/// Values spanning all bucket magnitudes, including the overflow edge.
fn value_strategy() -> BoxedStrategy<u64> {
    prop_oneof![
        0u64..16,
        16u64..4096,
        4096u64..1_000_000,
        (u64::MAX - 8)..u64::MAX,
    ]
    .boxed()
}

/// Values that survive a JSON round trip exactly: the JSON layer stores
/// numbers as `f64`, so sums must stay below 2^53.
fn json_exact_strategy() -> BoxedStrategy<u64> {
    prop_oneof![0u64..16, 16u64..4096, 4096u64..1_000_000_000].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Splitting the stream anywhere and merging the halves equals
    /// recording the whole stream into one histogram.
    #[test]
    fn merge_agrees_with_single_shot_across_any_split(
        values in vec(value_strategy(), 0..40),
        cut_seed in 0usize..1000,
    ) {
        let whole = observe_all(&values);
        let cut = if values.is_empty() { 0 } else { cut_seed % (values.len() + 1) };
        let mut left = observe_all(&values[..cut]);
        let right = observe_all(&values[cut..]);
        left.merge(&right);
        prop_assert_eq!(&left, &whole);
    }

    /// a ∪ b == b ∪ a.
    #[test]
    fn merge_is_commutative(
        a in vec(value_strategy(), 0..25),
        b in vec(value_strategy(), 0..25),
    ) {
        let (ha, hb) = (observe_all(&a), observe_all(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        a in vec(value_strategy(), 0..15),
        b in vec(value_strategy(), 0..15),
        c in vec(value_strategy(), 0..15),
    ) {
        let (ha, hb, hc) = (observe_all(&a), observe_all(&b), observe_all(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Many-way splits (the realistic campaign shape: one fragment per
    /// worker per resume) still agree with single-shot recording, and
    /// the JSON round trip preserves the merged result exactly.
    #[test]
    fn multiway_merge_and_round_trip(
        values in vec(json_exact_strategy(), 1..60),
        parts in 1usize..8,
    ) {
        let whole = observe_all(&values);
        let mut merged = Histogram::default();
        for chunk in values.chunks(values.len().div_ceil(parts)) {
            merged.merge(&observe_all(chunk));
        }
        prop_assert_eq!(&merged, &whole);
        let back = Histogram::from_json(&merged.to_json()).unwrap();
        prop_assert_eq!(back, whole);
    }

    /// Merging histograms that each went through a JSON
    /// serialize/parse/deserialize cycle stays associative and agrees
    /// with merging the in-memory originals — the path a server takes
    /// when it re-merges fragments recovered from journals on disk.
    #[test]
    fn merge_after_json_round_trip_is_associative(
        a in vec(json_exact_strategy(), 0..15),
        b in vec(json_exact_strategy(), 0..15),
        c in vec(json_exact_strategy(), 0..15),
    ) {
        let reload = |h: &Histogram| {
            let text = h.to_json().to_pretty();
            Histogram::from_json(&fires_obs::Json::parse(&text).unwrap()).unwrap()
        };
        let (ha, hb, hc) = (observe_all(&a), observe_all(&b), observe_all(&c));
        let (ra, rb, rc) = (reload(&ha), reload(&hb), reload(&hc));
        // (a ∪ b) ∪ c through the round trip...
        let mut left = ra.clone();
        left.merge(&rb);
        left.merge(&rc);
        // ...equals a ∪ (b ∪ c) through the round trip...
        let mut bc = rb.clone();
        bc.merge(&rc);
        let mut right = ra;
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // ...and both equal the merge of the in-memory originals.
        let mut direct = ha;
        direct.merge(&hb);
        direct.merge(&hc);
        prop_assert_eq!(left, direct);
    }

    /// Every reported quantile is unchanged by a JSON round trip: the
    /// derived fields are recomputed from the buckets on read, so the
    /// estimate must land on the same value.
    #[test]
    fn quantiles_are_stable_across_json_round_trip(
        values in vec(json_exact_strategy(), 1..50),
    ) {
        let h = observe_all(&values);
        let text = h.to_json().to_pretty();
        let back = Histogram::from_json(&fires_obs::Json::parse(&text).unwrap()).unwrap();
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            prop_assert_eq!(back.quantile(q), h.quantile(q), "q={}", q);
        }
        prop_assert_eq!(back.p50(), h.p50());
        prop_assert_eq!(back.p95(), h.p95());
        prop_assert_eq!(back.p99(), h.p99());
    }

    /// Quantiles stay bracketed by the exact extremes for any stream.
    #[test]
    fn quantiles_stay_in_range(values in vec(value_strategy(), 1..50)) {
        let h = observe_all(&values);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            prop_assert!(est >= h.min() && est <= h.max(), "q={} est={}", q, est);
        }
        prop_assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    }
}
