//! Per-rule hotspot attribution for the implication engine.
//!
//! [`RuleProfile`] is a fixed-arity table: one bucket per *implication
//! rule* — a named (rule, gate type, direction) triple matching the
//! dispatch sites in `fires-core`'s engine — holding a step count and an
//! apportioned wall-time share, plus a per-frame-offset step
//! distribution, a blame-set-size distribution and `DistCache` hit/miss
//! counters. Like [`Histogram`](crate::Histogram) it merges
//! associatively, so per-stem profiles can be folded across worker
//! threads, campaign units and kill/resume fragments in any order and
//! always yield the same table.
//!
//! The step counts are deterministic (a pure function of the circuit and
//! configuration); the per-rule `nanos` are *apportioned* from the
//! measured per-stem wall clock by step share — the hot loop never reads
//! a timer — so they are observability data, not gate-able metrics.
//!
//! [`RuleProfile::folded_lines`] renders the table as folded stacks
//! (`stem;phase;rule;gate_type count`), the input format of
//! `flamegraph.pl`, inferno and speedscope.

use crate::json::Json;
use crate::metrics::RunMetrics;

/// A compact log₂-bucketed distribution for the engine's per-mark path.
///
/// Bucket `k < 15` counts observations `v` with `floor(log2(v+1)) == k`
/// (bucket 0 holds the value 0); bucket 15 absorbs everything from
/// `2^15 - 1` up. The exact sum rides alongside; the count is the bucket
/// total, derived on demand. Unlike [`Histogram`](crate::Histogram)
/// there is no per-observe min/max/count bookkeeping and no 64-slot
/// array to zero — `observe` is a leading-zeros bucket index plus two
/// adds, and a fresh table is 136 bytes — because this type lives inside
/// [`RuleProfile`], which the engine re-zeroes for every stem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepDist {
    sum: u64,
    buckets: [u64; 16],
}

impl StepDist {
    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let k = (64 - v.saturating_add(1).leading_zeros() - 1).min(15) as usize;
        self.sum = self.sum.saturating_add(v);
        self.buckets[k] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Folds another distribution into this one.
    pub fn merge(&mut self, other: &StepDist) {
        self.sum = self.sum.saturating_add(other.sum);
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
    }

    /// JSON form (stable field names; part of the RunReport v4 schema).
    /// `count` and `mean` are derived fields, recomputed on read.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("count", self.count())
            .set("sum", self.sum)
            .set("mean", self.mean());
        let mut buckets = Json::object();
        for (b, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                buckets.set(format!("{b}"), c);
            }
        }
        j.set("log2_buckets", buckets);
        j
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(j: &Json) -> Option<StepDist> {
        let mut d = StepDist {
            sum: j.get("sum")?.as_u64()?,
            buckets: [0; 16],
        };
        for (k, v) in j.get("log2_buckets")?.as_obj()? {
            let bucket: usize = k.parse().ok()?;
            if bucket >= 16 {
                return None;
            }
            d.buckets[bucket] = v.as_u64()?;
        }
        Some(d)
    }
}

/// One named implication rule of the engine: what fired, on which gate
/// class, in which direction.
///
/// The set is closed by design — a fixed-arity table keeps the hot-path
/// cost at one array increment and makes profiles mergeable without any
/// name hashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfileRule {
    /// Forward on an AND/NAND/OR/NOR gate: some input cannot carry the
    /// noncontrolling value, so the output cannot be the all-noncontrolling
    /// value.
    FwdAndBlockedInput,
    /// Forward on an AND/NAND/OR/NOR gate: no input can carry the
    /// controlling value, so the output cannot be the controlled value.
    FwdAndAllBlocked,
    /// Forward through a NOT/BUF: the indicator crosses with (optional)
    /// inversion.
    FwdInvert,
    /// Forward on an XOR/XNOR gate via the achievable-parity mask.
    FwdXorParity,
    /// Forward across a flip-flop: D at frame `t` implies Q at `t + 1`.
    FwdDffShift,
    /// Forward from a stem onto its branch copies.
    FwdBranchCopy,
    /// Backward on an AND/NAND/OR/NOR gate: the output cannot be the
    /// controlled value, so no input may carry the controlling value.
    BwdAndControlledValue,
    /// Backward on an AND/NAND/OR/NOR gate: with every sibling pinned
    /// noncontrolling, the remaining input inherits the output indicator.
    BwdAndSibling,
    /// Backward through a NOT/BUF.
    BwdInvert,
    /// Backward on an XOR/XNOR gate with all siblings pinned.
    BwdXorPinned,
    /// Backward across a flip-flop: Q at frame `t` implies D at `t - 1`.
    BwdDffShift,
    /// Backward from a branch copy onto its stem.
    BwdBranchGather,
    /// Unobservability across a gate: an unobservable output marks its
    /// inputs.
    UnobsGateInput,
    /// Unobservability across a flip-flop: unobservable Q at `t` marks D
    /// at `t - 1`.
    UnobsDffShift,
    /// Unobservability stem merge: all branches unobservable and the
    /// reconvergence side condition holds.
    UnobsStemMerge,
}

/// All rules, in table order.
pub const ALL_RULES: [ProfileRule; ProfileRule::COUNT] = [
    ProfileRule::FwdAndBlockedInput,
    ProfileRule::FwdAndAllBlocked,
    ProfileRule::FwdInvert,
    ProfileRule::FwdXorParity,
    ProfileRule::FwdDffShift,
    ProfileRule::FwdBranchCopy,
    ProfileRule::BwdAndControlledValue,
    ProfileRule::BwdAndSibling,
    ProfileRule::BwdInvert,
    ProfileRule::BwdXorPinned,
    ProfileRule::BwdDffShift,
    ProfileRule::BwdBranchGather,
    ProfileRule::UnobsGateInput,
    ProfileRule::UnobsDffShift,
    ProfileRule::UnobsStemMerge,
];

impl ProfileRule {
    /// Number of rules in the table.
    pub const COUNT: usize = 15;

    /// Table index of this rule.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The rule's own name (unique within its direction × gate type).
    pub fn rule_name(self) -> &'static str {
        match self {
            ProfileRule::FwdAndBlockedInput => "blocked_input",
            ProfileRule::FwdAndAllBlocked => "all_inputs_blocked",
            ProfileRule::FwdInvert | ProfileRule::BwdInvert => "invert",
            ProfileRule::FwdXorParity => "parity_mask",
            ProfileRule::FwdDffShift | ProfileRule::BwdDffShift | ProfileRule::UnobsDffShift => {
                "time_shift"
            }
            ProfileRule::FwdBranchCopy => "branch_copy",
            ProfileRule::BwdAndControlledValue => "controlled_value",
            ProfileRule::BwdAndSibling => "noncontrolling_sibling",
            ProfileRule::BwdXorPinned => "pinned_sibling",
            ProfileRule::BwdBranchGather => "branch_gather",
            ProfileRule::UnobsGateInput => "gate_input",
            ProfileRule::UnobsStemMerge => "stem_merge",
        }
    }

    /// Gate class the rule applies to.
    pub fn gate_type(self) -> &'static str {
        match self {
            ProfileRule::FwdAndBlockedInput
            | ProfileRule::FwdAndAllBlocked
            | ProfileRule::BwdAndControlledValue
            | ProfileRule::BwdAndSibling => "and_like",
            ProfileRule::FwdInvert | ProfileRule::BwdInvert => "inverter",
            ProfileRule::FwdXorParity | ProfileRule::BwdXorPinned => "xor_like",
            ProfileRule::FwdDffShift | ProfileRule::BwdDffShift | ProfileRule::UnobsDffShift => {
                "dff"
            }
            ProfileRule::FwdBranchCopy | ProfileRule::BwdBranchGather => "branch",
            ProfileRule::UnobsGateInput => "gate",
            ProfileRule::UnobsStemMerge => "stem",
        }
    }

    /// Propagation direction: `forward` or `backward`.
    pub fn direction(self) -> &'static str {
        match self {
            ProfileRule::FwdAndBlockedInput
            | ProfileRule::FwdAndAllBlocked
            | ProfileRule::FwdInvert
            | ProfileRule::FwdXorParity
            | ProfileRule::FwdDffShift
            | ProfileRule::FwdBranchCopy => "forward",
            _ => "backward",
        }
    }

    /// Fixpoint the rule belongs to: `implication` (uncontrollability)
    /// or `unobservability`.
    pub fn phase(self) -> &'static str {
        match self {
            ProfileRule::UnobsGateInput
            | ProfileRule::UnobsDffShift
            | ProfileRule::UnobsStemMerge => "unobservability",
            _ => "implication",
        }
    }

    /// Fully qualified bucket name: `phase.direction.gate_type.rule`.
    pub fn name(self) -> String {
        format!(
            "{}.{}.{}.{}",
            self.phase(),
            self.direction(),
            self.gate_type(),
            self.rule_name()
        )
    }

    /// Inverse of [`name`](Self::name); `None` for unknown names (a
    /// profile written by a newer build stays readable).
    pub fn from_name(name: &str) -> Option<ProfileRule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// The engine-side hot half of a profile: bare per-rule step counters
/// and nothing else.
///
/// This is what the implication engine embeds and bumps on its hot path
/// — 16 plain `u64` slots, so construction is a 128-byte zero and every
/// `record` is a single indexed add. Everything heavier (apportioned
/// nanos, distributions, cache rates) lives on [`RuleProfile`], which
/// the engine assembles once per stem at harvest time via `From`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSteps {
    steps: [u64; ProfileRule::COUNT],
    unattributed: u64,
}

impl RuleSteps {
    /// Counts one application of `rule`.
    #[inline]
    pub fn record(&mut self, rule: ProfileRule) {
        self.steps[rule.index()] += 1;
    }

    /// Counts `n` applications of `rule` at once.
    #[inline]
    pub fn record_many(&mut self, rule: ProfileRule, n: u64) {
        self.steps[rule.index()] += n;
    }

    /// Counts one engine step that dispatched to no named rule.
    #[inline]
    pub fn note_unattributed(&mut self) {
        self.unattributed += 1;
    }
}

impl From<RuleSteps> for RuleProfile {
    fn from(s: RuleSteps) -> RuleProfile {
        RuleProfile {
            steps: s.steps,
            unattributed: s.unattributed,
            ..RuleProfile::default()
        }
    }
}

/// A fixed-arity per-rule attribution table; see the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleProfile {
    steps: [u64; ProfileRule::COUNT],
    nanos: [u64; ProfileRule::COUNT],
    unattributed: u64,
    dist_hits: u64,
    dist_misses: u64,
    frame_offsets: StepDist,
    blame_sizes: StepDist,
}

impl Default for RuleProfile {
    fn default() -> Self {
        RuleProfile {
            steps: [0; ProfileRule::COUNT],
            nanos: [0; ProfileRule::COUNT],
            unattributed: 0,
            dist_hits: 0,
            dist_misses: 0,
            frame_offsets: StepDist::default(),
            blame_sizes: StepDist::default(),
        }
    }
}

impl RuleProfile {
    /// An empty table.
    pub fn new() -> Self {
        RuleProfile::default()
    }

    /// Counts one application of `rule`.
    #[inline]
    pub fn record(&mut self, rule: ProfileRule) {
        self.steps[rule.index()] += 1;
    }

    /// Counts `n` applications of `rule` at once.
    #[inline]
    pub fn record_many(&mut self, rule: ProfileRule, n: u64) {
        self.steps[rule.index()] += n;
    }

    /// Counts one engine step that dispatched to no named rule (e.g. a
    /// mark on a primary input, which drives nothing).
    #[inline]
    pub fn note_unattributed(&mut self) {
        self.unattributed += 1;
    }

    /// Counts one `DistCache` lookup.
    #[inline]
    pub fn record_dist_cache(&mut self, hit: bool) {
        if hit {
            self.dist_hits += 1;
        } else {
            self.dist_misses += 1;
        }
    }

    /// Folds externally counted `DistCache` lookups in (the core engine
    /// counts on the cache itself and harvests the delta per stem).
    pub fn add_dist_cache(&mut self, hits: u64, misses: u64) {
        self.dist_hits += hits;
        self.dist_misses += misses;
    }

    /// Records the absolute frame offset of one created indicator.
    #[inline]
    pub fn record_frame_offset(&mut self, offset: u64) {
        self.frame_offsets.observe(offset);
    }

    /// Records the size of a grown blame set.
    #[inline]
    pub fn record_blame_size(&mut self, size: u64) {
        self.blame_sizes.observe(size);
    }

    /// Steps counted for `rule`.
    pub fn steps(&self, rule: ProfileRule) -> u64 {
        self.steps[rule.index()]
    }

    /// Apportioned wall time of `rule`, in nanoseconds.
    pub fn nanos(&self, rule: ProfileRule) -> u64 {
        self.nanos[rule.index()]
    }

    /// Steps attributed to a named rule bucket.
    pub fn attributed_steps(&self) -> u64 {
        self.steps.iter().sum()
    }

    /// Steps that dispatched to no named rule.
    pub fn unattributed_steps(&self) -> u64 {
        self.unattributed
    }

    /// All recorded steps, attributed or not.
    pub fn total_steps(&self) -> u64 {
        self.attributed_steps() + self.unattributed
    }

    /// Total apportioned wall time, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `DistCache` hits.
    pub fn dist_hits(&self) -> u64 {
        self.dist_hits
    }

    /// `DistCache` misses.
    pub fn dist_misses(&self) -> u64 {
        self.dist_misses
    }

    /// `DistCache` hit rate in `[0, 1]`; `None` before any lookup.
    pub fn dist_hit_rate(&self) -> Option<f64> {
        let total = self.dist_hits + self.dist_misses;
        (total > 0).then(|| self.dist_hits as f64 / total as f64)
    }

    /// Distribution of absolute frame offsets of created indicators.
    pub fn frame_offsets(&self) -> &StepDist {
        &self.frame_offsets
    }

    /// Distribution of blame-set sizes at growth points.
    pub fn blame_sizes(&self) -> &StepDist {
        &self.blame_sizes
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total_steps() == 0
            && self.dist_hits == 0
            && self.dist_misses == 0
            && self.frame_offsets.count() == 0
            && self.blame_sizes.count() == 0
    }

    /// Nonzero buckets in table order: `(rule, steps, nanos)`.
    pub fn entries(&self) -> impl Iterator<Item = (ProfileRule, u64, u64)> + '_ {
        ALL_RULES
            .iter()
            .copied()
            .filter(|r| self.steps[r.index()] > 0)
            .map(|r| (r, self.steps[r.index()], self.nanos[r.index()]))
    }

    /// Distributes `total_nanos` of measured wall time across the rule
    /// buckets proportionally to their step counts. The hot loop never
    /// reads a timer; callers measure one elapsed span (typically a whole
    /// stem) and apportion it here.
    pub fn apportion_nanos(&mut self, total_nanos: u64) {
        let attributed = self.attributed_steps();
        if attributed == 0 {
            return;
        }
        for i in 0..ProfileRule::COUNT {
            self.nanos[i] += (u128::from(total_nanos) * u128::from(self.steps[i])
                / u128::from(attributed)) as u64;
        }
    }

    /// Folds `other` into `self`. Commutative and associative: profiles
    /// merged across threads, units and resume fragments in any order
    /// agree.
    pub fn merge(&mut self, other: &RuleProfile) {
        for i in 0..ProfileRule::COUNT {
            self.steps[i] += other.steps[i];
            self.nanos[i] += other.nanos[i];
        }
        self.unattributed += other.unattributed;
        self.dist_hits += other.dist_hits;
        self.dist_misses += other.dist_misses;
        self.frame_offsets.merge(&other.frame_offsets);
        self.blame_sizes.merge(&other.blame_sizes);
    }

    /// Mirrors the deterministic step counts into `metrics` as
    /// `core.rule.*` counters, where `fires compare` can gate them. Only
    /// step counts cross over: apportioned nanos are timing (not
    /// deterministic) and `DistCache` hit counts depend on worker-thread
    /// cache sharing, so both stay profile-only.
    pub fn export_counters(&self, metrics: &mut RunMetrics) {
        for (rule, steps, _) in self.entries() {
            metrics.incr(&format!("core.rule.{}", rule.name()), steps);
        }
        if self.unattributed > 0 {
            metrics.incr("core.rule.unattributed", self.unattributed);
        }
    }

    /// Renders the table as folded stacks — one
    /// `label;phase;rule;gate_type count` line per nonzero bucket,
    /// consumable by `flamegraph.pl`, inferno and speedscope.
    pub fn folded_lines(&self, label: &str) -> String {
        let mut out = String::new();
        for (rule, steps, _) in self.entries() {
            out.push_str(&format!(
                "{label};{};{};{} {steps}\n",
                rule.phase(),
                rule.rule_name(),
                rule.gate_type(),
            ));
        }
        if self.unattributed > 0 {
            out.push_str(&format!(
                "{label};other;unattributed {}\n",
                self.unattributed
            ));
        }
        out
    }

    /// JSON form (stable field names; part of the RunReport v4 schema).
    pub fn to_json(&self) -> Json {
        let mut rules = Json::object();
        for (rule, steps, nanos) in self.entries() {
            let mut r = Json::object();
            r.set("steps", steps)
                .set("nanos", nanos)
                .set("phase", rule.phase())
                .set("direction", rule.direction())
                .set("gate_type", rule.gate_type());
            rules.set(rule.name(), r);
        }
        let mut dist = Json::object();
        dist.set("hits", self.dist_hits)
            .set("misses", self.dist_misses);
        let mut j = Json::object();
        j.set("rules", rules)
            .set("unattributed", self.unattributed)
            .set("dist_cache", dist);
        if self.frame_offsets.count() > 0 {
            j.set("frame_offsets", self.frame_offsets.to_json());
        }
        if self.blame_sizes.count() > 0 {
            j.set("blame_sizes", self.blame_sizes.to_json());
        }
        j
    }

    /// Inverse of [`to_json`](Self::to_json). Unknown rule names are
    /// skipped (a newer build's table stays readable); the taxonomy
    /// fields (`phase`/`direction`/`gate_type`) are derived on read, so
    /// tampering with them cannot poison a reader.
    pub fn from_json(j: &Json) -> Option<RuleProfile> {
        let mut p = RuleProfile::new();
        for (name, r) in j.get("rules")?.as_obj()? {
            let Some(rule) = ProfileRule::from_name(name) else {
                continue;
            };
            p.steps[rule.index()] = r.get("steps")?.as_u64()?;
            p.nanos[rule.index()] = r.get("nanos").and_then(Json::as_u64).unwrap_or(0);
        }
        p.unattributed = j.get("unattributed").and_then(Json::as_u64).unwrap_or(0);
        if let Some(d) = j.get("dist_cache") {
            p.dist_hits = d.get("hits").and_then(Json::as_u64).unwrap_or(0);
            p.dist_misses = d.get("misses").and_then(Json::as_u64).unwrap_or(0);
        }
        if let Some(h) = j.get("frame_offsets") {
            p.frame_offsets = StepDist::from_json(h)?;
        }
        if let Some(h) = j.get("blame_sizes") {
            p.blame_sizes = StepDist::from_json(h)?;
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for rule in ALL_RULES {
            let name = rule.name();
            assert!(seen.insert(name.clone()), "duplicate rule name {name}");
            assert_eq!(ProfileRule::from_name(&name), Some(rule));
        }
        assert_eq!(seen.len(), ProfileRule::COUNT);
        assert!(ProfileRule::from_name("no.such.rule").is_none());
    }

    #[test]
    fn record_merge_and_totals() {
        let mut a = RuleProfile::new();
        assert!(a.is_empty());
        a.record(ProfileRule::FwdAndBlockedInput);
        a.record_many(ProfileRule::BwdDffShift, 4);
        a.note_unattributed();
        a.record_dist_cache(true);
        a.record_frame_offset(2);
        a.record_blame_size(3);
        let mut b = RuleProfile::new();
        b.record(ProfileRule::FwdAndBlockedInput);
        b.record_dist_cache(false);
        a.merge(&b);
        assert_eq!(a.steps(ProfileRule::FwdAndBlockedInput), 2);
        assert_eq!(a.steps(ProfileRule::BwdDffShift), 4);
        assert_eq!(a.attributed_steps(), 6);
        assert_eq!(a.total_steps(), 7);
        assert_eq!(a.dist_hit_rate(), Some(0.5));
        assert!(!a.is_empty());
    }

    #[test]
    fn apportioned_nanos_track_step_share() {
        let mut p = RuleProfile::new();
        p.record_many(ProfileRule::FwdAndBlockedInput, 3);
        p.record_many(ProfileRule::UnobsGateInput, 1);
        p.apportion_nanos(4_000);
        assert_eq!(p.nanos(ProfileRule::FwdAndBlockedInput), 3_000);
        assert_eq!(p.nanos(ProfileRule::UnobsGateInput), 1_000);
        assert_eq!(p.total_nanos(), 4_000);
        // Apportioning on an empty table is a no-op, not a division.
        let mut empty = RuleProfile::new();
        empty.apportion_nanos(1_000);
        assert_eq!(empty.total_nanos(), 0);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut p = RuleProfile::new();
        p.record_many(ProfileRule::FwdXorParity, 7);
        p.record_many(ProfileRule::UnobsStemMerge, 2);
        p.note_unattributed();
        p.record_dist_cache(true);
        p.record_dist_cache(false);
        p.record_frame_offset(0);
        p.record_frame_offset(5);
        p.record_blame_size(12);
        p.apportion_nanos(9_000);
        let back = RuleProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn unknown_rules_in_json_are_skipped() {
        let mut p = RuleProfile::new();
        p.record(ProfileRule::FwdInvert);
        let mut j = p.to_json();
        let mut rules = j.get("rules").unwrap().clone();
        let mut fake = Json::object();
        fake.set("steps", 99u64).set("nanos", 0u64);
        rules.set("implication.forward.quantum.tunnel", fake);
        j.set("rules", rules);
        let back = RuleProfile::from_json(&j).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn folded_lines_have_the_documented_shape() {
        let mut p = RuleProfile::new();
        p.record_many(ProfileRule::FwdAndBlockedInput, 5);
        p.note_unattributed();
        let folded = p.folded_lines("s27/stem3");
        assert!(folded.contains("s27/stem3;implication;blocked_input;and_like 5\n"));
        assert!(folded.contains("s27/stem3;other;unattributed 1\n"));
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(stack.split(';').count() >= 3, "stack too shallow: {line}");
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn exported_counters_are_steps_only() {
        let mut p = RuleProfile::new();
        p.record_many(ProfileRule::BwdAndControlledValue, 10);
        p.record_dist_cache(true);
        p.apportion_nanos(500);
        let mut m = RunMetrics::new();
        p.export_counters(&mut m);
        assert_eq!(
            m.counter("core.rule.implication.backward.and_like.controlled_value"),
            10
        );
        // Timing and cache-sharing-dependent data never become gated
        // counters.
        assert_eq!(m.counters().count(), 1);
    }
}
