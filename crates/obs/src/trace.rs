//! A lightweight `tracing`-style facade.
//!
//! The real `tracing` ecosystem is unavailable offline, so this module
//! provides the two primitives the FIRES pipeline needs — spans with
//! wall-clock duration and point events, both carrying typed key/value
//! fields — behind a global [`Subscriber`]. With no subscriber installed
//! the instrumentation macros cost one relaxed atomic load and construct
//! nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Locks `m`, recovering the guard if a panicking instrumented thread
/// poisoned it. A subscriber must keep collecting after a worker panic
/// (the jobs runner isolates panics and retries the unit); the buffer it
/// protects is append-only, so there is no torn invariant to fear.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One field value attached to a span or event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Text.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self { FieldValue::U64(v as u64) }
        }
    )*};
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self { FieldValue::I64(v as i64) }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Receiver of spans and events.
pub trait Subscriber: Send + Sync {
    /// A span named `name` opened with the given fields.
    fn on_span_enter(&self, name: &'static str, fields: &[(&'static str, FieldValue)]);
    /// The innermost open span named `name` closed after `elapsed`.
    fn on_span_exit(&self, name: &'static str, elapsed: Duration);
    /// A point event.
    fn on_event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();

/// Installs the process-global subscriber. Returns `Err` (with the
/// rejected subscriber) if one is already installed.
pub fn set_subscriber(s: Box<dyn Subscriber>) -> Result<(), Box<dyn Subscriber>> {
    match SUBSCRIBER.set(s) {
        Ok(()) => {
            ENABLED.store(true, Ordering::Release);
            Ok(())
        }
        Err(rejected) => Err(rejected),
    }
}

/// Whether a subscriber is installed. This is the fast path the macros
/// check before building any fields.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed subscriber, if any.
pub fn subscriber() -> Option<&'static dyn Subscriber> {
    if tracing_enabled() {
        SUBSCRIBER.get().map(|b| b.as_ref())
    } else {
        None
    }
}

/// RAII guard closing a span on drop.
pub struct SpanGuard {
    name: &'static str,
    started: Instant,
}

impl SpanGuard {
    /// Opens a span (used by [`obs_span!`](crate::obs_span)).
    pub fn enter(name: &'static str, fields: &[(&'static str, FieldValue)]) -> Option<SpanGuard> {
        let sub = subscriber()?;
        sub.on_span_enter(name, fields);
        Some(SpanGuard {
            name,
            started: Instant::now(),
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(sub) = subscriber() {
            sub.on_span_exit(self.name, self.started.elapsed());
        }
    }
}

/// Emits an event (used by [`obs_event!`](crate::obs_event)).
pub fn emit_event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if let Some(sub) = subscriber() {
        sub.on_event(name, fields);
    }
}

/// Opens a span: `obs_span!("name", key = value, ...)`. Returns an
/// `Option<SpanGuard>`; bind it (`let _span = ...`) so the span closes at
/// scope exit. Field expressions are not evaluated when tracing is off.
#[macro_export]
macro_rules! obs_span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::tracing_enabled() {
            $crate::SpanGuard::enter(
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($value))),*],
            )
        } else {
            None
        }
    };
}

/// Emits a point event: `obs_event!("name", key = value, ...)`. Field
/// expressions are not evaluated when tracing is off.
#[macro_export]
macro_rules! obs_event {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::tracing_enabled() {
            $crate::emit_event(
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

/// One record captured by [`CollectingSubscriber`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// Span opened.
    SpanEnter {
        /// Span name.
        name: &'static str,
        /// Fields at open.
        fields: Vec<(&'static str, FieldValue)>,
    },
    /// Span closed.
    SpanExit {
        /// Span name.
        name: &'static str,
        /// Wall-clock duration.
        elapsed: Duration,
    },
    /// Point event.
    Event {
        /// Event name.
        name: &'static str,
        /// Event fields.
        fields: Vec<(&'static str, FieldValue)>,
    },
}

/// Subscriber buffering every record in memory (for tests and tools).
#[derive(Default)]
pub struct CollectingSubscriber {
    records: Mutex<Vec<TraceRecord>>,
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        lock_unpoisoned(&self.records).clone()
    }
}

impl Subscriber for CollectingSubscriber {
    fn on_span_enter(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        lock_unpoisoned(&self.records).push(TraceRecord::SpanEnter {
            name,
            fields: fields.to_vec(),
        });
    }

    fn on_span_exit(&self, name: &'static str, elapsed: Duration) {
        lock_unpoisoned(&self.records).push(TraceRecord::SpanExit { name, elapsed });
    }

    fn on_event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        lock_unpoisoned(&self.records).push(TraceRecord::Event {
            name,
            fields: fields.to_vec(),
        });
    }
}

/// Subscriber printing one line per record to stderr (for ad-hoc
/// debugging of long runs: `FIRES_TRACE=1` in the bench binaries).
#[derive(Default)]
pub struct StderrSubscriber;

fn render_fields(fields: &[(&'static str, FieldValue)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

impl Subscriber for StderrSubscriber {
    fn on_span_enter(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        eprintln!("[obs] >> {name} {}", render_fields(fields));
    }

    fn on_span_exit(&self, name: &'static str, elapsed: Duration) {
        eprintln!("[obs] << {name} ({elapsed:?})");
    }

    fn on_event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        eprintln!("[obs] -- {name} {}", render_fields(fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The subscriber slot is process-global and tests share one process,
    // so every check that needs an installed subscriber lives in this one
    // test; the "disabled" checks run first, before installation.
    #[test]
    fn facade_lifecycle() {
        // Disabled: macros construct nothing and return None/().
        assert!(!tracing_enabled());
        let guard = crate::obs_span!("quiet", x = 1u64);
        assert!(guard.is_none());
        crate::obs_event!("quiet_event", y = 2u64);

        // Install a collector; macros start recording.
        let collector = Box::leak(Box::new(CollectingSubscriber::new()));
        // Safety valve: installing twice must fail, not panic.
        struct Null;
        impl Subscriber for Null {
            fn on_span_enter(&self, _: &'static str, _: &[(&'static str, FieldValue)]) {}
            fn on_span_exit(&self, _: &'static str, _: Duration) {}
            fn on_event(&self, _: &'static str, _: &[(&'static str, FieldValue)]) {}
        }
        assert!(set_subscriber(Box::new(ForwardTo(collector))).is_ok());
        assert!(set_subscriber(Box::new(Null)).is_err());
        assert!(tracing_enabled());

        {
            let _span = crate::obs_span!("stem", id = 7u64);
            crate::obs_event!("frame", frame = 3i64, marks = 12u64);
        }
        let records = collector.snapshot();
        assert_eq!(records.len(), 3);
        assert!(matches!(
            &records[0],
            TraceRecord::SpanEnter { name: "stem", fields }
                if fields == &vec![("id", FieldValue::U64(7))]
        ));
        assert!(matches!(
            &records[1],
            TraceRecord::Event { name: "frame", fields }
                if fields.len() == 2 && fields[0] == ("frame", FieldValue::I64(3))
        ));
        assert!(matches!(
            &records[2],
            TraceRecord::SpanExit { name: "stem", .. }
        ));
    }

    #[test]
    fn poisoned_collector_keeps_collecting() {
        let collector = std::sync::Arc::new(CollectingSubscriber::new());
        // Poison the internal mutex: panic while holding the guard.
        let poisoner = std::sync::Arc::clone(&collector);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.records.lock().unwrap();
            panic!("instrumented thread dies mid-record");
        })
        .join();
        assert!(collector.records.is_poisoned());
        // The subscriber must shrug and keep recording.
        collector.on_event("after_panic", &[("k", FieldValue::U64(1))]);
        let records = collector.snapshot();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            &records[0],
            TraceRecord::Event {
                name: "after_panic",
                ..
            }
        ));
    }

    /// Forwards to a leaked collector so the test can inspect it after
    /// handing ownership to the global slot.
    struct ForwardTo(&'static CollectingSubscriber);

    impl Subscriber for ForwardTo {
        fn on_span_enter(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
            self.0.on_span_enter(name, fields)
        }
        fn on_span_exit(&self, name: &'static str, elapsed: Duration) {
            self.0.on_span_exit(name, elapsed)
        }
        fn on_event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
            self.0.on_event(name, fields)
        }
    }
}
