//! Canonical metric names for the service layer.
//!
//! `fires serve` reports its counters through [`RunMetrics`] and CI greps
//! them out of status/exit reports; a typo'd name on either side fails
//! silently (the grep just finds nothing). Centralising the names here
//! makes the server, the tests and the soak script agree by
//! construction — the constants are the contract.
//!
//! Naming scheme:
//!
//! * `serve.*` — ordinary service counters (admission, cache, workers);
//! * `serve.degraded.*` — a fault path *fired and was absorbed*: the
//!   daemon kept serving, in a reduced mode, instead of failing. A chaos
//!   soak asserts these are nonzero (the faults really happened) while
//!   the final report stays byte-identical (they didn't matter).
//! * `serve.rejected.<tenant>` — typed admission rejections, by tenant
//!   ([`REJECTED_PREFIX`]).
//!
//! [`RunMetrics`]: crate::RunMetrics

/// Submit requests received (before any admission decision).
pub const SUBMISSIONS: &str = "serve.submissions";
/// Submits answered byte-identically from the in-memory result cache.
pub const CACHE_HITS: &str = "serve.cache_hits";
/// Submits that missed the in-memory cache.
pub const CACHE_MISSES: &str = "serve.cache_misses";
/// Submits attached to an already queued/running job (single-flight).
pub const DEDUPED: &str = "serve.deduped";
/// Engines built (once per job, however many clients attached).
pub const ENGINE_BUILDS: &str = "serve.engine_builds";
/// Jobs that ran to completion.
pub const COMPLETED: &str = "serve.completed";
/// Jobs that ended in a failure phase.
pub const FAILED: &str = "serve.failed";
/// Reports re-merged from the durable journal tier after LRU eviction.
pub const REMERGES: &str = "serve.remerges";
/// Complete journals re-indexed by the startup recovery scan.
pub const RECOVERED: &str = "serve.recovered";
/// Incomplete journals re-queued by the startup recovery scan.
pub const RESUMED: &str = "serve.resumed";
/// Journals the recovery scan could not index (see [`QUARANTINED`]).
pub const SCAN_ERRORS: &str = "serve.scan_errors";
/// Unreadable journals renamed `<key>.jsonl.quarantined` by the scan.
pub const QUARANTINED: &str = "serve.quarantined";
/// Prefix of per-tenant admission rejections (`serve.rejected.<tenant>`).
pub const REJECTED_PREFIX: &str = "serve.rejected.";
/// Submits rejected with the typed `draining` response during drain.
pub const REJECTED_DRAINING: &str = "serve.rejected.draining";
/// Set to 1 when the daemon exited through the graceful-drain path.
pub const DRAINED: &str = "serve.drained";
/// Drains that hit `--drain-timeout-secs` before workers checkpointed.
pub const DRAIN_TIMEOUTS: &str = "serve.drain_timeouts";
/// Watchdog heartbeats journaled to `<state-dir>/heartbeat.json`.
pub const HEARTBEATS: &str = "serve.heartbeats";
/// Request lines rejected for exceeding the protocol line bound.
pub const OVERSIZED_REQUESTS: &str = "serve.oversized_requests";
/// Prometheus snapshot files written under `<state-dir>/metrics/`.
pub const METRIC_SNAPSHOTS: &str = "serve.metric_snapshots";
/// Flight-recorder dumps written (crash triggers plus `debug-dump`).
pub const FLIGHT_DUMPS: &str = "serve.flight_dumps";
/// Per-request Chrome trace files written under `<state-dir>/traces/`.
pub const TRACES_WRITTEN: &str = "serve.traces_written";
/// Queue depth at scrape time (exposition-only gauge; not in reports).
pub const QUEUE_DEPTH: &str = "serve.queue_depth";
/// Daemon uptime at scrape time (exposition-only gauge; not in reports).
pub const UPTIME_SECONDS: &str = "serve.uptime_seconds";

/// Labeled counter: submissions by `tenant`.
pub const TENANT_SUBMISSIONS: &str = "serve.tenant.submissions";
/// Labeled counter: completed jobs by `tenant`.
pub const TENANT_COMPLETED: &str = "serve.tenant.completed";
/// Labeled histogram: wall-clock per job (`tenant`, `job`), ms.
pub const JOB_WALL_MS: &str = "serve.job.wall_ms";
/// Labeled histogram: queue wait per job (`tenant`, `job`), ms.
pub const JOB_QUEUE_WAIT_MS: &str = "serve.job.queue_wait_ms";

/// Result-cache inserts that did not stick (injected ENOSPC or an entry
/// over the whole byte budget); the job serves journal-only from then on.
pub const DEGRADED_CACHE_INSERT_FAILURES: &str = "serve.degraded.cache_insert_failures";
/// Subscribers disconnected for missing their write deadline.
pub const DEGRADED_SLOW_SUBSCRIBERS: &str = "serve.degraded.slow_subscribers";
/// Progress frames coalesced away by a full subscriber queue.
pub const DEGRADED_DROPPED_PROGRESS: &str = "serve.degraded.dropped_progress";
/// Accepted connections dropped by injected accept faults.
pub const DEGRADED_ACCEPT_FAULTS: &str = "serve.degraded.accept_faults";
/// Requests abandoned by injected read faults.
pub const DEGRADED_READ_FAULTS: &str = "serve.degraded.read_faults";
/// Responses abandoned by injected write faults.
pub const DEGRADED_WRITE_FAULTS: &str = "serve.degraded.write_faults";
/// Injected client stalls imposed before handling a request.
pub const DEGRADED_STALLS: &str = "serve.degraded.stalls";
/// Injected disk faults absorbed (cache insert or heartbeat skipped).
pub const DEGRADED_DISK_FAULTS: &str = "serve.degraded.disk_faults";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_well_formed() {
        let all = [
            super::SUBMISSIONS,
            super::CACHE_HITS,
            super::CACHE_MISSES,
            super::DEDUPED,
            super::ENGINE_BUILDS,
            super::COMPLETED,
            super::FAILED,
            super::REMERGES,
            super::RECOVERED,
            super::RESUMED,
            super::SCAN_ERRORS,
            super::QUARANTINED,
            super::REJECTED_DRAINING,
            super::DRAINED,
            super::DRAIN_TIMEOUTS,
            super::HEARTBEATS,
            super::OVERSIZED_REQUESTS,
            super::METRIC_SNAPSHOTS,
            super::FLIGHT_DUMPS,
            super::TRACES_WRITTEN,
            super::QUEUE_DEPTH,
            super::UPTIME_SECONDS,
            super::TENANT_SUBMISSIONS,
            super::TENANT_COMPLETED,
            super::JOB_WALL_MS,
            super::JOB_QUEUE_WAIT_MS,
            super::DEGRADED_CACHE_INSERT_FAILURES,
            super::DEGRADED_SLOW_SUBSCRIBERS,
            super::DEGRADED_DROPPED_PROGRESS,
            super::DEGRADED_ACCEPT_FAULTS,
            super::DEGRADED_READ_FAULTS,
            super::DEGRADED_WRITE_FAULTS,
            super::DEGRADED_STALLS,
            super::DEGRADED_DISK_FAULTS,
        ];
        let unique: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "duplicate metric name");
        for name in all {
            assert!(name.starts_with("serve."), "{name}");
            assert!(!name.ends_with('.'), "{name}");
            assert!(
                name.bytes().all(|b| b.is_ascii_lowercase()
                    || b.is_ascii_digit()
                    || b == b'.'
                    || b == b'_'),
                "{name}"
            );
        }
        assert!(super::REJECTED_DRAINING.starts_with(super::REJECTED_PREFIX));
    }
}
