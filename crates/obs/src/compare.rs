//! Metric-by-metric comparison of two [`RunReport`]s — the
//! perf-regression gate behind `fires compare`.
//!
//! Both reports are flattened into named scalar *cost* metrics (lower is
//! better): total and per-phase seconds, every counter and maximum, and
//! for each histogram its `count`, `sum`, `mean`, `p95` and `max`. A
//! metric **regresses** when the candidate exceeds the baseline by more
//! than the allowed percentage.
//!
//! Wall-clock-derived metrics (anything whose name mentions `seconds`,
//! `micros` or `wall`) can be excluded with
//! [`CompareConfig::include_time`] `= false`: CI runners have noisy
//! clocks, but implication steps, enqueued work and marks created are
//! deterministic for a fixed input, so the CI gate compares only those.
//!
//! A metric present in only one report never regresses: new
//! instrumentation appears in every observability PR and losing a metric
//! is reported as `gone`, both visible in the rendered table but not
//! fatal.

use crate::report::RunReport;

/// How one metric moved between baseline and candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Candidate is worse by more than the allowed percentage.
    Regressed,
    /// Candidate is lower (by any amount).
    Improved,
    /// Within the allowed band.
    Unchanged,
    /// Only the candidate has this metric.
    New,
    /// Only the baseline has this metric.
    Gone,
    /// Excluded wall-clock metric (`include_time` is off).
    SkippedTime,
}

impl DeltaStatus {
    /// Short lower-case label for tables.
    pub fn label(self) -> &'static str {
        match self {
            DeltaStatus::Regressed => "REGRESSED",
            DeltaStatus::Improved => "improved",
            DeltaStatus::Unchanged => "ok",
            DeltaStatus::New => "new",
            DeltaStatus::Gone => "gone",
            DeltaStatus::SkippedTime => "skipped (time)",
        }
    }
}

/// One flattened metric's movement.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Flattened metric name (`phase.validation`, `counter.core.marks_created`,
    /// `hist.core.stem_steps.p95`, ...).
    pub name: String,
    /// Baseline value, if present.
    pub baseline: Option<f64>,
    /// Candidate value, if present.
    pub candidate: Option<f64>,
    /// Percent change vs baseline (`None` when either side is missing or
    /// the baseline is zero).
    pub pct: Option<f64>,
    /// Verdict for this metric.
    pub status: DeltaStatus,
}

/// Comparison policy.
#[derive(Clone, Debug)]
pub struct CompareConfig {
    /// Maximum allowed increase, in percent, before a metric counts as a
    /// regression.
    pub max_regress_pct: f64,
    /// Compare wall-clock-derived metrics too (off for CI determinism).
    pub include_time: bool,
    /// Histogram names (e.g. `core.stem_micros`) whose `p95` stays gated
    /// even when `include_time` is off, against
    /// [`max_time_regress_pct`](Self::max_time_regress_pct). The p95 of a
    /// per-stem wall-clock histogram is stable enough on a quiet runner to
    /// catch order-of-magnitude slowdowns that the deterministic counters
    /// cannot see (e.g. an accidental quadratic rebuild per stem), while
    /// the generous separate threshold keeps clock noise from flaking.
    pub gated_time_hists: Vec<String>,
    /// Allowed increase, in percent, for the gated time histograms'
    /// `p95` metrics. Deliberately looser than `max_regress_pct`.
    pub max_time_regress_pct: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            max_regress_pct: 10.0,
            include_time: true,
            gated_time_hists: Vec::new(),
            max_time_regress_pct: 100.0,
        }
    }
}

/// Result of [`compare_reports`].
#[derive(Clone, Debug, Default)]
pub struct CompareOutcome {
    /// Every flattened metric, in name order.
    pub deltas: Vec<MetricDelta>,
    /// `true` when the two reports describe different subjects (the
    /// comparison still runs, but the caller should warn).
    pub subject_mismatch: bool,
}

impl CompareOutcome {
    /// Number of regressed metrics.
    pub fn regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.status == DeltaStatus::Regressed)
            .count()
    }

    /// Number of metrics actually compared (both sides present, not
    /// skipped).
    pub fn compared(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| {
                matches!(
                    d.status,
                    DeltaStatus::Regressed | DeltaStatus::Improved | DeltaStatus::Unchanged
                )
            })
            .count()
    }

    /// `true` when the candidate passes the gate.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }
}

/// Whether a flattened metric name measures wall-clock time. Phase
/// durations are always seconds, whatever the phase is called.
pub fn is_time_metric(name: &str) -> bool {
    name.starts_with("phase.")
        || name.contains("seconds")
        || name.contains("micros")
        || name.contains("wall")
}

fn flatten(report: &RunReport) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    out.push(("total_seconds".to_string(), report.total_seconds));
    for (name, secs) in &report.phases {
        out.push((format!("phase.{name}"), *secs));
    }
    for (name, v) in report.metrics.counters() {
        out.push((format!("counter.{name}"), v as f64));
    }
    for (name, v) in report.metrics.maxima() {
        out.push((format!("max.{name}"), v as f64));
    }
    for (name, h) in report.metrics.histograms() {
        out.push((format!("hist.{name}.count"), h.count() as f64));
        out.push((format!("hist.{name}.sum"), h.sum() as f64));
        out.push((format!("hist.{name}.mean"), h.mean()));
        out.push((format!("hist.{name}.p95"), h.p95() as f64));
        out.push((format!("hist.{name}.max"), h.max() as f64));
    }
    out
}

/// Flattens both reports and classifies every metric. Deterministic:
/// deltas come back sorted by name.
pub fn compare_reports(
    baseline: &RunReport,
    candidate: &RunReport,
    cfg: &CompareConfig,
) -> CompareOutcome {
    let base: std::collections::BTreeMap<String, f64> = flatten(baseline).into_iter().collect();
    let cand: std::collections::BTreeMap<String, f64> = flatten(candidate).into_iter().collect();
    let mut names: Vec<&String> = base.keys().chain(cand.keys()).collect();
    names.sort();
    names.dedup();

    let mut deltas = Vec::with_capacity(names.len());
    for name in names {
        let b = base.get(name).copied();
        let c = cand.get(name).copied();
        let time_gated = !cfg.include_time
            && cfg
                .gated_time_hists
                .iter()
                .any(|h| *name == format!("hist.{h}.p95"));
        let threshold = if time_gated {
            cfg.max_time_regress_pct
        } else {
            cfg.max_regress_pct
        };
        let (pct, status) = if !cfg.include_time && is_time_metric(name) && !time_gated {
            (None, DeltaStatus::SkippedTime)
        } else {
            match (b, c) {
                (None, _) => (None, DeltaStatus::New),
                (_, None) => (None, DeltaStatus::Gone),
                (Some(b), Some(c)) => {
                    if b == 0.0 {
                        // Zero baseline: any growth is "new territory",
                        // not a measurable percentage.
                        let status = if c > 0.0 {
                            DeltaStatus::New
                        } else {
                            DeltaStatus::Unchanged
                        };
                        (None, status)
                    } else {
                        let pct = (c - b) / b * 100.0;
                        let status = if pct > threshold {
                            DeltaStatus::Regressed
                        } else if c < b {
                            DeltaStatus::Improved
                        } else {
                            DeltaStatus::Unchanged
                        };
                        (Some(pct), status)
                    }
                }
            }
        };
        deltas.push(MetricDelta {
            name: name.clone(),
            baseline: b,
            candidate: c,
            pct,
            status,
        });
    }
    CompareOutcome {
        deltas,
        subject_mismatch: baseline.subject != candidate.subject,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(marks: u64, steps: &[u64], secs: f64) -> RunReport {
        let mut r = RunReport::new("fires-bench/table2", "s27");
        r.total_seconds = secs;
        r.add_phase("implication", secs * 0.8);
        r.metrics.incr("core.marks_created", marks);
        for &s in steps {
            r.metrics.observe("core.stem_steps", s);
        }
        r
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(100, &[5, 9, 30], 1.0);
        let out = compare_reports(&a, &a.clone(), &CompareConfig::default());
        assert!(out.passed());
        assert!(!out.subject_mismatch);
        assert!(out.compared() > 0);
        assert!(out
            .deltas
            .iter()
            .all(|d| d.status != DeltaStatus::Regressed));
    }

    #[test]
    fn doctored_regression_fails_the_gate() {
        let base = report(100, &[5, 9, 30], 1.0);
        // 3× the marks and much heavier stems: well past 10%.
        let worse = report(300, &[50, 90, 300], 1.05);
        let out = compare_reports(&base, &worse, &CompareConfig::default());
        assert!(!out.passed());
        let names: Vec<&str> = out
            .deltas
            .iter()
            .filter(|d| d.status == DeltaStatus::Regressed)
            .map(|d| d.name.as_str())
            .collect();
        assert!(names.contains(&"counter.core.marks_created"), "{names:?}");
        assert!(names.contains(&"hist.core.stem_steps.sum"), "{names:?}");
    }

    #[test]
    fn time_metrics_are_skippable() {
        let base = report(100, &[5], 1.0);
        let slow = report(100, &[5], 100.0); // 100× slower wall clock
        let cfg = CompareConfig {
            include_time: false,
            ..CompareConfig::default()
        };
        let out = compare_reports(&base, &slow, &cfg);
        assert!(out.passed(), "time-only change must pass with time off");
        assert!(out
            .deltas
            .iter()
            .any(|d| d.status == DeltaStatus::SkippedTime));
        // And fails when time is included.
        let out = compare_reports(&base, &slow, &CompareConfig::default());
        assert!(!out.passed());
    }

    #[test]
    fn new_and_gone_metrics_do_not_gate() {
        let mut base = report(100, &[5], 1.0);
        base.metrics.incr("old.counter", 7);
        let mut cand = report(100, &[5], 1.0);
        cand.metrics.incr("brand.new_counter", 1_000_000);
        let out = compare_reports(&base, &cand, &CompareConfig::default());
        assert!(out.passed());
        let by_name = |n: &str| out.deltas.iter().find(|d| d.name == n).unwrap();
        assert_eq!(by_name("counter.old.counter").status, DeltaStatus::Gone);
        assert_eq!(
            by_name("counter.brand.new_counter").status,
            DeltaStatus::New
        );
    }

    #[test]
    fn threshold_is_a_percentage() {
        let base = report(100, &[], 1.0);
        let cand = report(140, &[], 1.0); // +40%
        let lax = CompareConfig {
            max_regress_pct: 50.0,
            ..CompareConfig::default()
        };
        assert!(compare_reports(&base, &cand, &lax).passed());
        let strict = CompareConfig {
            max_regress_pct: 25.0,
            ..CompareConfig::default()
        };
        let out = compare_reports(&base, &cand, &strict);
        assert!(!out.passed());
        let d = out
            .deltas
            .iter()
            .find(|d| d.name == "counter.core.marks_created")
            .unwrap();
        assert!((d.pct.unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn gated_time_hist_p95_survives_skip_time() {
        let mut base = report(100, &[5], 1.0);
        base.metrics.observe("core.stem_micros", 100);
        let mut cand = report(100, &[5], 1.0);
        cand.metrics.observe("core.stem_micros", 500); // 5x slower stems
        let cfg = CompareConfig {
            include_time: false,
            gated_time_hists: vec!["core.stem_micros".into()],
            max_time_regress_pct: 200.0,
            ..CompareConfig::default()
        };
        let out = compare_reports(&base, &cand, &cfg);
        assert!(!out.passed(), "5x p95 must trip a 200% time gate");
        let p95 = out
            .deltas
            .iter()
            .find(|d| d.name == "hist.core.stem_micros.p95")
            .unwrap();
        assert_eq!(p95.status, DeltaStatus::Regressed);
        // The rest of the wall-clock metrics (sum, mean, total_seconds,
        // phases) stay skipped.
        for d in &out.deltas {
            if is_time_metric(&d.name) && d.name != "hist.core.stem_micros.p95" {
                assert_eq!(d.status, DeltaStatus::SkippedTime, "{}", d.name);
            }
        }
        // Within the generous band the gate passes even though the
        // strict counter threshold would have tripped.
        let mut mild = report(100, &[5], 1.0);
        mild.metrics.observe("core.stem_micros", 150); // +50%
        assert!(compare_reports(&base, &mild, &cfg).passed());
    }

    #[test]
    fn ungated_runs_keep_skipping_all_time_metrics() {
        let mut base = report(100, &[5], 1.0);
        base.metrics.observe("core.stem_micros", 100);
        let mut cand = report(100, &[5], 1.0);
        cand.metrics.observe("core.stem_micros", 10_000);
        let cfg = CompareConfig {
            include_time: false,
            ..CompareConfig::default()
        };
        assert!(compare_reports(&base, &cand, &cfg).passed());
    }

    #[test]
    fn subject_mismatch_is_flagged() {
        let a = report(1, &[], 1.0);
        let mut b = report(1, &[], 1.0);
        b.subject = "s838_like".into();
        assert!(compare_reports(&a, &b, &CompareConfig::default()).subject_mismatch);
    }
}
