//! Observability layer for the FIRES reproduction.
//!
//! The algorithm crates (`fires-core`, `fires-sim`, `fires-atpg`) do the
//! work; this crate makes the work *visible*. It provides four pieces,
//! all dependency-free:
//!
//! * [`RunMetrics`] — a registry of named counters, maxima and
//!   log₂-bucketed histograms, mergeable across threads and runs;
//! * [`PhaseClock`] / [`PhaseTimes`] — wall-clock accounting that splits a
//!   run into named phases while guaranteeing the phase breakdown and the
//!   total can never disagree (both come from the same clock);
//! * a lightweight `tracing`-style facade ([`obs_span!`], [`obs_event!`],
//!   [`set_subscriber`]) that is zero-cost when no subscriber is
//!   installed (one relaxed atomic load);
//! * [`RunReport`] — a schema-versioned, machine-readable JSON report
//!   ([`json::Json`] is a small built-in JSON tree with parser and
//!   printer, used instead of serde because the build environment is
//!   offline).
//!
//! `fires-core` pulls this crate in behind its `tracing` feature
//! (default-on); with `--no-default-features` the core algorithm compiles
//! without it and without any instrumentation overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chrome;
pub mod compare;
pub mod json;
mod metrics;
pub mod names;
mod profile;
mod report;
pub mod series;
mod timer;
mod trace;

pub use chrome::{install_chrome_trace, trace_events_named, ChromeTraceSubscriber, TimedRecord};
pub use compare::{compare_reports, CompareConfig, CompareOutcome, DeltaStatus, MetricDelta};
pub use json::Json;
pub use metrics::{Histogram, RunMetrics};
pub use profile::{ProfileRule, RuleProfile, RuleSteps, StepDist, ALL_RULES};
pub use report::{RunReport, SCHEMA_VERSION};
pub use series::{prom_name, render_prometheus, SeriesRegistry};
pub use timer::{PhaseClock, PhaseTimes};
pub use trace::{
    emit_event, set_subscriber, subscriber, tracing_enabled, CollectingSubscriber, FieldValue,
    SpanGuard, StderrSubscriber, Subscriber, TraceRecord,
};
