//! The run-metrics registry: named counters, maxima and histograms.

use std::collections::BTreeMap;

use crate::json::Json;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucket `k` counts observations `v` with `floor(log2(v+1)) == k`
/// (bucket 0 holds the value 0). Exact `count`, `sum`, `min` and `max`
/// are kept alongside, so means and extremes are not bucketed.
///
/// The buckets are a fixed 64-slot array so `observe` is a pair of
/// integer ops with no allocation or tree walk — cheap enough for
/// per-mark call sites inside the implication engine's hot loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> u8 {
        (64 - v.saturating_add(1).leading_zeros() - 1) as u8
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_of(v) as usize] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), by linear interpolation
    /// inside the log₂ bucket holding the target rank.
    ///
    /// Bucket `k` spans values `[2^k - 1, 2^(k+1) - 2]`, so the estimate
    /// is exact for buckets 0 and 1 and off by at most half a bucket
    /// width otherwise; the result is always clamped to `[min, max]`,
    /// which are tracked exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if next as f64 >= target {
                let lo = (1u64 << k) - 1;
                let hi = if k >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 2
                };
                let frac = if c == 0 {
                    0.0
                } else {
                    ((target - seen as f64) / c as f64).clamp(0.0, 1.0)
                };
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            seen = next;
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
    }

    /// JSON form (stable field names; part of the RunReport schema).
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("count", self.count)
            .set("sum", self.sum)
            .set("min", self.min)
            .set("max", self.max)
            .set("mean", self.mean())
            .set("p50", self.p50())
            .set("p95", self.p95())
            .set("p99", self.p99());
        let mut buckets = Json::object();
        for (b, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                buckets.set(format!("{b}"), c);
            }
        }
        j.set("log2_buckets", buckets);
        j
    }

    /// Inverse of [`to_json`](Self::to_json). The derived fields
    /// (`mean`, `p50`, `p95`, `p99`) are recomputed, not read, so
    /// doctored values cannot desynchronize them from the buckets.
    pub fn from_json(j: &Json) -> Option<Histogram> {
        let mut h = Histogram {
            count: j.get("count")?.as_u64()?,
            sum: j.get("sum")?.as_u64()?,
            min: j.get("min")?.as_u64()?,
            max: j.get("max")?.as_u64()?,
            buckets: [0; 64],
        };
        for (k, v) in j.get("log2_buckets")?.as_obj()? {
            let bucket: u8 = k.parse().ok()?;
            if bucket >= 64 {
                return None;
            }
            h.buckets[bucket as usize] = v.as_u64()?;
        }
        Some(h)
    }
}

/// A registry of named metrics for one run.
///
/// Three kinds, chosen by the *recording call*, not by prior declaration:
/// monotonically-added **counters** ([`incr`](Self::incr)), running
/// **maxima** ([`set_max`](Self::set_max)) and **histograms**
/// ([`observe`](Self::observe)). Names are dotted paths by convention,
/// e.g. `core.marks_created` or `sim.gate_evaluations`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    counters: BTreeMap<String, u64>,
    maxima: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl RunMetrics {
    /// An empty registry.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// Adds `by` to counter `name` (creating it at 0).
    pub fn incr(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Raises maximum `name` to at least `v`.
    pub fn set_max(&mut self, name: &str, v: u64) {
        match self.maxima.get_mut(name) {
            Some(m) => *m = (*m).max(v),
            None => {
                self.maxima.insert(name.to_string(), v);
            }
        }
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::default();
                h.observe(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// The value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of maximum `name` (0 when absent).
    pub fn maximum(&self, name: &str) -> u64 {
        self.maxima.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates maxima in name order.
    pub fn maxima(&self) -> impl Iterator<Item = (&str, u64)> {
        self.maxima.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of distinct metrics of all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.maxima.len() + self.histograms.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds another registry into this one: counters add, maxima take
    /// the max, histograms merge. Used to combine per-thread registries.
    pub fn merge(&mut self, other: &RunMetrics) {
        for (k, &v) in &other.counters {
            self.incr(k, v);
        }
        for (k, &v) in &other.maxima {
            self.set_max(k, v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// JSON form (stable field names; part of the RunReport schema).
    pub fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (k, &v) in &self.counters {
            counters.set(k.clone(), v);
        }
        let mut maxima = Json::object();
        for (k, &v) in &self.maxima {
            maxima.set(k.clone(), v);
        }
        let mut histograms = Json::object();
        for (k, h) in &self.histograms {
            histograms.set(k.clone(), h.to_json());
        }
        let mut j = Json::object();
        j.set("counters", counters)
            .set("maxima", maxima)
            .set("histograms", histograms);
        j
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(j: &Json) -> Option<RunMetrics> {
        let mut m = RunMetrics::new();
        for (k, v) in j.get("counters")?.as_obj()? {
            m.counters.insert(k.clone(), v.as_u64()?);
        }
        for (k, v) in j.get("maxima")?.as_obj()? {
            m.maxima.insert(k.clone(), v.as_u64()?);
        }
        for (k, v) in j.get("histograms")?.as_obj()? {
            m.histograms.insert(k.clone(), Histogram::from_json(v)?);
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_maxima_race_upward() {
        let mut m = RunMetrics::new();
        m.incr("a", 2);
        m.incr("a", 3);
        m.set_max("b", 7);
        m.set_max("b", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.maximum("b"), 7);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 8, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 112);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 112.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::default();
        assert_eq!(h.p50(), 0);
        for v in 1..=100u64 {
            h.observe(v);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((1..=100).contains(&p50));
        assert!(p99 <= h.max());
        // A single observation: every quantile is that value.
        let mut one = Histogram::default();
        one.observe(42);
        assert_eq!(one.quantile(0.0), 42);
        assert_eq!(one.p50(), 42);
        assert_eq!(one.quantile(1.0), 42);
        // Small exact buckets (0 and 1) are exact.
        let mut z = Histogram::default();
        for _ in 0..10 {
            z.observe(0);
        }
        assert_eq!(z.p99(), 0);
    }

    #[test]
    fn quantile_tracks_the_bulk_of_a_skewed_distribution() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(100_000);
        // p50 must stay near the bulk, p99+ may reach the outlier bucket.
        assert!(h.p50() <= 14, "p50 = {}", h.p50());
        assert!(h.quantile(1.0) == 100_000);
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = RunMetrics::new();
        a.incr("c", 1);
        a.set_max("m", 5);
        a.observe("h", 10);
        let mut b = RunMetrics::new();
        b.incr("c", 2);
        b.set_max("m", 3);
        b.observe("h", 20);
        b.observe("h2", 1);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.maximum("m"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn json_round_trip() {
        let mut m = RunMetrics::new();
        m.incr("core.marks", 42);
        m.set_max("core.frames", 9);
        for v in [1, 2, 3, 1000] {
            m.observe("core.blame", v);
        }
        let j = m.to_json();
        let back = RunMetrics::from_json(&j).unwrap();
        assert_eq!(back, m);
        // And through actual text.
        let text = j.to_pretty();
        let re = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(re, m);
    }
}
