//! Prometheus text exposition over the metrics registry.
//!
//! [`RunMetrics`] keeps the canonical dotted names (`serve.cache_hits`)
//! that CI greps out of reports; Prometheus requires `[a-zA-Z0-9_:]`
//! metric names. The mangling therefore happens *here*, at render time
//! — the registry, the reports and the journal never see the mangled
//! form, so canonical outputs stay byte-identical whether or not
//! anything ever scrapes the daemon.
//!
//! Two sources feed one exposition document:
//!
//! * the flat [`RunMetrics`] registry — counters render as `counter`,
//!   maxima as `gauge`, histograms as `summary` (quantiles plus
//!   `_sum`/`_count`, the closest native Prometheus shape for a
//!   pre-aggregated log₂ histogram);
//! * a [`SeriesRegistry`] of *labeled* series — the same three kinds
//!   keyed additionally by label pairs (`tenant`, `job`), so per-tenant
//!   and per-job attribution is a PromQL `sum by (tenant)` away.
//!
//! Rendering is deterministic: metric names in lexicographic order,
//! label sets in lexicographic order within a name, label keys sorted
//! within a set. Two scrapes of the same state are byte-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{Histogram, RunMetrics};

/// Mangles a dotted metric name into the Prometheus charset.
///
/// Every byte outside `[a-zA-Z0-9_:]` becomes `_`; a leading digit is
/// prefixed with `_`. `serve.cache_hits` → `serve_cache_hits`.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, b) in name.bytes().enumerate() {
        let ok = b.is_ascii_alphanumeric() || b == b'_' || b == b':';
        if i == 0 && b.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { b as char } else { '_' });
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a sorted label set as `{k="v",...}` (empty string when no
/// labels). `extra` appends one more pair (used for `quantile`).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// A labeled series key: metric name plus sorted label pairs.
///
/// Ordered (name first, then label sets), so a `BTreeMap` keyed by it
/// iterates grouped by metric name — exactly the order the exposition
/// format wants (`# TYPE` once per name, then every label set).
type SeriesKey = (String, Vec<(String, String)>);

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut pairs: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    pairs.sort();
    (name.to_string(), pairs)
}

/// A registry of labeled time series (counters, gauges, histograms).
///
/// The labeled twin of [`RunMetrics`]: where the flat registry answers
/// "how many cache hits", this one answers "how many cache hits *for
/// tenant X*" and "how long did *job Y* wait in the queue". Kept
/// separate so the flat registry — which rides inside canonical
/// reports — never grows label-dependent entries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesRegistry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, u64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

impl SeriesRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SeriesRegistry::default()
    }

    /// Adds `by` to counter `name` with `labels` (creating it at 0).
    pub fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        *self.counters.entry(series_key(name, labels)).or_insert(0) += by;
    }

    /// Sets gauge `name` with `labels` to `v` (last write wins).
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.gauges.insert(series_key(name, labels), v);
    }

    /// Records `v` into histogram `name` with `labels`.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.histograms
            .entry(series_key(name, labels))
            .or_default()
            .observe(v);
    }

    /// The value of counter `name` with `labels` (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&series_key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct labeled series of all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Appends `# TYPE` once per metric name as the iteration crosses into
/// a new name.
fn type_line(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last.clear();
        last.push_str(name);
    }
}

fn render_summary(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
        let block = label_block(labels, Some(("quantile", q)));
        let _ = writeln!(out, "{name}{block} {v}");
    }
    let block = label_block(labels, None);
    let _ = writeln!(out, "{name}_sum{block} {}", h.sum());
    let _ = writeln!(out, "{name}_count{block} {}", h.count());
}

/// Renders the flat registry plus the labeled registry as one
/// Prometheus text exposition document (version 0.0.4).
///
/// Flat metrics render first (no labels), then labeled series; within
/// each section counters, then gauges, then summaries, each in name
/// order. The output is a pure function of the inputs — no timestamps
/// — so snapshot files diff cleanly between beats.
pub fn render_prometheus(flat: &RunMetrics, series: &SeriesRegistry) -> String {
    let mut out = String::new();
    let mut last = String::new();
    for (name, v) in flat.counters() {
        let name = prom_name(name);
        type_line(&mut out, &mut last, &name, "counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in flat.maxima() {
        let name = prom_name(name);
        type_line(&mut out, &mut last, &name, "gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in flat.histograms() {
        let name = prom_name(name);
        type_line(&mut out, &mut last, &name, "summary");
        render_summary(&mut out, &name, &[], h);
    }
    for ((name, labels), v) in &series.counters {
        let name = prom_name(name);
        type_line(&mut out, &mut last, &name, "counter");
        let _ = writeln!(out, "{name}{} {v}", label_block(labels, None));
    }
    for ((name, labels), v) in &series.gauges {
        let name = prom_name(name);
        type_line(&mut out, &mut last, &name, "gauge");
        let _ = writeln!(out, "{name}{} {v}", label_block(labels, None));
    }
    for ((name, labels), h) in &series.histograms {
        let name = prom_name(name);
        type_line(&mut out, &mut last, &name, "summary");
        render_summary(&mut out, &name, labels, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_mangled_into_the_prometheus_charset() {
        assert_eq!(prom_name("serve.cache_hits"), "serve_cache_hits");
        assert_eq!(
            prom_name("serve.degraded.disk_faults"),
            "serve_degraded_disk_faults"
        );
        assert_eq!(prom_name("0weird-name"), "_0weird_name");
        assert_eq!(prom_name("already_fine:ok"), "already_fine:ok");
    }

    #[test]
    fn flat_registry_renders_counters_gauges_and_summaries() {
        let mut m = RunMetrics::new();
        m.incr("serve.submissions", 3);
        m.set_max("serve.queue.depth", 2);
        for v in [1, 2, 3] {
            m.observe("serve.wait_ms", v);
        }
        let text = render_prometheus(&m, &SeriesRegistry::new());
        assert!(text.contains("# TYPE serve_submissions counter\nserve_submissions 3\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n"));
        assert!(text.contains("# TYPE serve_wait_ms summary\n"));
        assert!(text.contains("serve_wait_ms{quantile=\"0.5\"}"));
        assert!(text.contains("serve_wait_ms_sum 6\n"));
        assert!(text.contains("serve_wait_ms_count 3\n"));
    }

    #[test]
    fn labeled_series_render_sorted_label_blocks() {
        let mut s = SeriesRegistry::new();
        // Insert with unsorted label order; the block must sort keys.
        s.incr("serve.tenant.submissions", &[("tenant", "acme")], 2);
        s.observe(
            "serve.job.wall_ms",
            &[("tenant", "acme"), ("job", "00000000deadbeef")],
            40,
        );
        s.set("serve.job.units", &[("job", "00000000deadbeef")], 7);
        let text = render_prometheus(&RunMetrics::new(), &s);
        assert!(
            text.contains("serve_tenant_submissions{tenant=\"acme\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains(
                "serve_job_wall_ms{job=\"00000000deadbeef\",tenant=\"acme\",quantile=\"0.5\"}"
            ),
            "{text}"
        );
        assert!(
            text.contains("serve_job_wall_ms_count{job=\"00000000deadbeef\",tenant=\"acme\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains(
                "# TYPE serve_job_units gauge\nserve_job_units{job=\"00000000deadbeef\"} 7\n"
            ),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut s = SeriesRegistry::new();
        s.incr("serve.tenant.submissions", &[("tenant", "a\"b\\c\nd")], 1);
        let text = render_prometheus(&RunMetrics::new(), &s);
        assert!(text.contains("tenant=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    fn rendering_is_deterministic_and_type_lines_are_unique() {
        let mut m = RunMetrics::new();
        m.incr("serve.b", 1);
        m.incr("serve.a", 1);
        let mut s = SeriesRegistry::new();
        s.incr("serve.t", &[("tenant", "b")], 1);
        s.incr("serve.t", &[("tenant", "a")], 1);
        let a = render_prometheus(&m, &s);
        let b = render_prometheus(&m, &s);
        assert_eq!(a, b);
        // One TYPE line per name even with several label sets.
        assert_eq!(a.matches("# TYPE serve_t counter").count(), 1);
        // Name order, then label-set order.
        let ia = a.find("serve_a 1").unwrap();
        let ib = a.find("serve_b 1").unwrap();
        assert!(ia < ib, "{a}");
        let ta = a.find("serve_t{tenant=\"a\"}").unwrap();
        let tb = a.find("serve_t{tenant=\"b\"}").unwrap();
        assert!(ta < tb, "{a}");
    }

    #[test]
    fn counter_accumulates_and_len_counts_kinds() {
        let mut s = SeriesRegistry::new();
        assert!(s.is_empty());
        s.incr("serve.x", &[("tenant", "t")], 1);
        s.incr("serve.x", &[("tenant", "t")], 2);
        assert_eq!(s.counter("serve.x", &[("tenant", "t")]), 3);
        assert_eq!(s.counter("serve.x", &[("tenant", "other")]), 0);
        s.set("serve.g", &[], 5);
        s.observe("serve.h", &[], 9);
        assert_eq!(s.len(), 3);
    }
}
