//! Phase timing that cannot disagree with itself.
//!
//! A [`PhaseClock`] is started once per run; every moment between
//! `start()` and `finish()` is attributed to exactly one named phase (or
//! to the implicit `"other"` phase while no phase is active). Because the
//! total and the per-phase durations come from the same monotonic clock
//! and every instant is attributed once, `total == sum(phases) + other`
//! up to clock-read jitter — the per-phase breakdown and the headline
//! elapsed time can never tell different stories.

use std::time::{Duration, Instant};

/// Accumulating wall-clock splitter. See the module docs.
#[derive(Clone, Debug)]
pub struct PhaseClock {
    started: Instant,
    /// Insertion-ordered accumulated phases.
    acc: Vec<(String, Duration)>,
    current: Option<(usize, Instant)>,
}

impl PhaseClock {
    /// Starts the run clock with no active phase.
    pub fn start() -> Self {
        PhaseClock {
            started: Instant::now(),
            acc: Vec::new(),
            current: None,
        }
    }

    fn slot(&mut self, name: &str) -> usize {
        match self.acc.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.acc.push((name.to_string(), Duration::ZERO));
                self.acc.len() - 1
            }
        }
    }

    /// Ends the active phase (if any) and begins `name`. Re-entering a
    /// name accumulates into the same bucket.
    pub fn enter(&mut self, name: &str) {
        self.exit();
        let slot = self.slot(name);
        self.current = Some((slot, Instant::now()));
    }

    /// Ends the active phase; subsequent time is unattributed until the
    /// next [`enter`](Self::enter).
    pub fn exit(&mut self) {
        if let Some((slot, since)) = self.current.take() {
            self.acc[slot].1 += since.elapsed();
        }
    }

    /// Runs `f` attributed to phase `name`, then restores "no phase".
    pub fn phase<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.enter(name);
        let out = f();
        self.exit();
        out
    }

    /// Adds an externally measured duration to phase `name` (used when a
    /// worker thread measured its own slice).
    pub fn add(&mut self, name: &str, d: Duration) {
        let slot = self.slot(name);
        self.acc[slot].1 += d;
    }

    /// Wall-clock time since [`start`](Self::start).
    pub fn total(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops the clock and freezes the breakdown.
    pub fn finish(mut self) -> PhaseTimes {
        self.exit();
        PhaseTimes {
            total: self.started.elapsed(),
            phases: self.acc,
        }
    }
}

/// The frozen result of a [`PhaseClock`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Wall-clock time from `start()` to `finish()`.
    pub total: Duration,
    /// Accumulated named phases, in first-entered order.
    pub phases: Vec<(String, Duration)>,
}

impl PhaseTimes {
    /// The duration attributed to `name` (zero when absent).
    pub fn of(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// Time inside `total` not attributed to any named phase.
    pub fn unattributed(&self) -> Duration {
        let named: Duration = self.phases.iter().map(|(_, d)| *d).sum();
        self.total.saturating_sub(named)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_stay_under_total() {
        let mut clock = PhaseClock::start();
        clock.phase("a", || std::thread::sleep(Duration::from_millis(2)));
        clock.phase("b", || std::thread::sleep(Duration::from_millis(1)));
        clock.phase("a", || std::thread::sleep(Duration::from_millis(2)));
        let times = clock.finish();
        assert_eq!(times.phases.len(), 2, "re-entered phase must merge");
        assert_eq!(times.phases[0].0, "a");
        assert!(times.of("a") >= Duration::from_millis(4));
        assert!(times.of("b") >= Duration::from_millis(1));
        let named: Duration = times.phases.iter().map(|(_, d)| *d).sum();
        assert!(named <= times.total, "phases exceed total");
    }

    #[test]
    fn enter_switches_attribution() {
        let mut clock = PhaseClock::start();
        clock.enter("x");
        clock.enter("y");
        std::thread::sleep(Duration::from_millis(1));
        let times = clock.finish();
        assert!(times.of("y") >= Duration::from_millis(1));
        assert!(times.of("y") >= times.of("x"));
    }

    #[test]
    fn finish_closes_open_phase_and_add_merges() {
        let mut clock = PhaseClock::start();
        clock.enter("open");
        clock.add("external", Duration::from_millis(5));
        let times = clock.finish();
        assert!(times.phases.iter().any(|(n, _)| n == "open"));
        assert_eq!(times.of("external"), Duration::from_millis(5));
    }

    #[test]
    fn unattributed_tracks_gap() {
        let mut clock = PhaseClock::start();
        clock.phase("p", || {});
        std::thread::sleep(Duration::from_millis(2));
        let times = clock.finish();
        assert!(times.unattributed() >= Duration::from_millis(2));
    }
}
