//! Chrome Trace Event Format export.
//!
//! Converts the [`TraceRecord`] stream produced by the tracing facade
//! into a `trace.json` document loadable in `chrome://tracing` or
//! Perfetto. The facade's records carry no timestamps or thread
//! identity (keeping the hot path cheap), so this module provides
//! [`ChromeTraceSubscriber`]: a collector that stamps every record with
//! microseconds-since-origin and a small per-thread *lane* number
//! assigned in first-seen order. Worker threads of the jobs pool each
//! get their own lane, which Chrome renders as separate tracks.
//!
//! Event mapping (see the Trace Event Format spec):
//!
//! * span enter → `"ph": "B"` (duration begin) with `args` = fields;
//! * span exit  → `"ph": "E"` (duration end);
//! * point event → `"ph": "i"` (instant, thread-scoped) with `args`;
//! * one `"ph": "M"` metadata event per lane names the track.
//!
//! Timestamps (`ts`) are microseconds, as the format requires. All
//! events share `pid` 1 — the exporter describes one process.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::trace::{lock_unpoisoned, FieldValue, Subscriber, TraceRecord};

/// One facade record stamped with a timestamp and a thread lane.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedRecord {
    /// Microseconds since the subscriber was created.
    pub ts_us: u64,
    /// Dense per-thread lane id (0 = first thread seen).
    pub lane: u64,
    /// The underlying facade record.
    pub record: TraceRecord,
}

#[derive(Debug, Default)]
struct State {
    records: Vec<TimedRecord>,
    lanes: HashMap<ThreadId, u64>,
}

/// Subscriber that buffers timestamped records for Chrome-trace export.
///
/// Unlike [`CollectingSubscriber`](crate::CollectingSubscriber) it
/// records *when* and *where* (which thread) each span and event
/// happened, which is exactly the extra information the Trace Event
/// Format needs. Poisoned locks are recovered, not propagated: a
/// panicking instrumented thread must not take the collector with it.
#[derive(Debug)]
pub struct ChromeTraceSubscriber {
    origin: Instant,
    state: Mutex<State>,
}

impl Default for ChromeTraceSubscriber {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceSubscriber {
    /// An empty collector; timestamps count from this moment.
    pub fn new() -> Self {
        ChromeTraceSubscriber {
            origin: Instant::now(),
            state: Mutex::new(State::default()),
        }
    }

    fn push(&self, record: TraceRecord) {
        let ts_us = self.origin.elapsed().as_micros() as u64;
        let tid = std::thread::current().id();
        let mut state = lock_unpoisoned(&self.state);
        let next = state.lanes.len() as u64;
        let lane = *state.lanes.entry(tid).or_insert(next);
        state.records.push(TimedRecord {
            ts_us,
            lane,
            record,
        });
    }

    /// Snapshot of everything recorded so far, in arrival order.
    pub fn snapshot(&self) -> Vec<TimedRecord> {
        lock_unpoisoned(&self.state).records.clone()
    }

    /// Number of distinct threads seen so far.
    pub fn lane_count(&self) -> usize {
        lock_unpoisoned(&self.state).lanes.len()
    }

    /// The complete Chrome Trace Event Format document.
    pub fn trace_json(&self) -> Json {
        trace_events(&self.snapshot())
    }

    /// Writes the trace document to `path` (pretty-printed JSON).
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.trace_json().to_pretty())
    }
}

impl Subscriber for ChromeTraceSubscriber {
    fn on_span_enter(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        self.push(TraceRecord::SpanEnter {
            name,
            fields: fields.to_vec(),
        });
    }

    fn on_span_exit(&self, name: &'static str, elapsed: Duration) {
        self.push(TraceRecord::SpanExit { name, elapsed });
    }

    fn on_event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        self.push(TraceRecord::Event {
            name,
            fields: fields.to_vec(),
        });
    }
}

fn field_to_json(v: &FieldValue) -> Json {
    match v {
        FieldValue::U64(n) => Json::Num(*n as f64),
        FieldValue::I64(n) => Json::Num(*n as f64),
        FieldValue::F64(n) => Json::Num(*n),
        FieldValue::Str(s) => Json::Str(s.clone()),
    }
}

fn args_json(fields: &[(&'static str, FieldValue)]) -> Json {
    let mut args = Json::object();
    for (k, v) in fields {
        args.set(*k, field_to_json(v));
    }
    args
}

fn base_event(ph: &str, name: &str, ts_us: u64, lane: u64) -> Json {
    let mut e = Json::object();
    e.set("name", name)
        .set("cat", "fires")
        .set("ph", ph)
        .set("ts", ts_us as f64)
        .set("pid", 1u64)
        .set("tid", lane);
    e
}

/// Pure converter: a timed record stream → the Chrome Trace Event
/// Format document (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// Emits one `thread_name` metadata event per lane so the tracks are
/// labelled (`lane-0` is the first thread that produced a record —
/// usually the orchestrator; workers follow in first-seen order).
pub fn trace_events(records: &[TimedRecord]) -> Json {
    trace_events_named(records, &[])
}

/// [`trace_events`] with caller-supplied lane names.
///
/// `lane_names` maps lane ids to track labels; lanes not listed keep
/// the `lane-{n}` default. The serve layer uses this to label a
/// request lane with its trace id (`request 7b1f…`), so the rendered
/// track answers "whose submit is this" without opening the args.
pub fn trace_events_named(records: &[TimedRecord], lane_names: &[(u64, &str)]) -> Json {
    let mut events = Vec::new();
    let mut lanes: Vec<u64> = records.iter().map(|r| r.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        let mut meta = Json::object();
        let mut args = Json::object();
        let label = lane_names
            .iter()
            .find(|(l, _)| *l == lane)
            .map(|(_, n)| (*n).to_string())
            .unwrap_or_else(|| format!("lane-{lane}"));
        args.set("name", label);
        meta.set("name", "thread_name")
            .set("ph", "M")
            .set("pid", 1u64)
            .set("tid", lane)
            .set("args", args);
        events.push(meta);
    }
    for r in records {
        let e = match &r.record {
            TraceRecord::SpanEnter { name, fields } => {
                let mut e = base_event("B", name, r.ts_us, r.lane);
                e.set("args", args_json(fields));
                e
            }
            TraceRecord::SpanExit { name, .. } => base_event("E", name, r.ts_us, r.lane),
            TraceRecord::Event { name, fields } => {
                let mut e = base_event("i", name, r.ts_us, r.lane);
                e.set("s", "t").set("args", args_json(fields));
                e
            }
        };
        events.push(e);
    }
    let mut doc = Json::object();
    doc.set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms");
    doc
}

/// Creates a [`ChromeTraceSubscriber`], installs it as the process
/// global subscriber and returns a `'static` handle for export at the
/// end of the run. Returns `None` when a subscriber is already
/// installed (the global slot is one-shot).
///
/// The subscriber is intentionally leaked — it must outlive every
/// instrumented thread, and the CLI exports and exits right after.
pub fn install_chrome_trace() -> Option<&'static ChromeTraceSubscriber> {
    if crate::trace::subscriber().is_some() {
        return None;
    }
    let collector: &'static ChromeTraceSubscriber =
        Box::leak(Box::new(ChromeTraceSubscriber::new()));
    struct Forward(&'static ChromeTraceSubscriber);
    impl Subscriber for Forward {
        fn on_span_enter(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
            self.0.on_span_enter(name, fields)
        }
        fn on_span_exit(&self, name: &'static str, elapsed: Duration) {
            self.0.on_span_exit(name, elapsed)
        }
        fn on_event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
            self.0.on_event(name, fields)
        }
    }
    match crate::trace::set_subscriber(Box::new(Forward(collector))) {
        Ok(()) => Some(collector),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_balanced(events: &[Json]) -> bool {
        // Per lane, B/E must nest like parentheses.
        let mut depth: HashMap<u64, i64> = HashMap::new();
        for e in events {
            let lane = e.get("tid").and_then(Json::as_u64).unwrap();
            match e.get("ph").and_then(Json::as_str).unwrap() {
                "B" => *depth.entry(lane).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(lane).or_insert(0);
                    *d -= 1;
                    if *d < 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        depth.values().all(|&d| d == 0)
    }

    #[test]
    fn structural_validity_of_exported_trace() {
        let sub = ChromeTraceSubscriber::new();
        sub.on_span_enter("stem", &[("id", FieldValue::U64(7))]);
        sub.on_event("frame", &[("frame", FieldValue::I64(-1))]);
        sub.on_span_exit("stem", Duration::from_micros(5));

        let doc = sub.trace_json();
        // Must survive an actual serialize/parse cycle.
        let doc = Json::parse(&doc.to_pretty()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 1 metadata + 3 records.
        assert_eq!(events.len(), 4);
        for e in events {
            // Required Trace Event Format fields on every entry.
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(e.get("ph").and_then(Json::as_str).is_some());
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
            if e.get("ph").and_then(Json::as_str) != Some("M") {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
            }
        }
        assert!(spans_balanced(events));
        // The B event carries its fields; the instant event is scoped.
        let b = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .unwrap();
        assert_eq!(
            b.get("args")
                .and_then(|a| a.get("id"))
                .and_then(Json::as_u64),
            Some(7)
        );
        let i = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .unwrap();
        assert_eq!(i.get("s").and_then(Json::as_str), Some("t"));
    }

    #[test]
    fn lanes_are_dense_and_per_thread() {
        let sub = std::sync::Arc::new(ChromeTraceSubscriber::new());
        sub.on_event("main", &[]);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = std::sync::Arc::clone(&sub);
            handles.push(std::thread::spawn(move || {
                s.on_span_enter("work", &[]);
                s.on_span_exit("work", Duration::ZERO);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sub.lane_count(), 4);
        let records = sub.snapshot();
        assert_eq!(records.len(), 7);
        // Lane ids are dense 0..4 and each thread's records share one.
        let mut lanes: Vec<u64> = records.iter().map(|r| r.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes, vec![0, 1, 2, 3]);
        // Timestamps never run backwards in arrival order.
        for pair in records.windows(2) {
            assert!(pair[0].ts_us <= pair[1].ts_us);
        }
    }

    #[test]
    fn timed_records_round_trip_through_converter() {
        let records = vec![
            TimedRecord {
                ts_us: 10,
                lane: 0,
                record: TraceRecord::SpanEnter {
                    name: "campaign",
                    fields: vec![("units", FieldValue::U64(3))],
                },
            },
            TimedRecord {
                ts_us: 90,
                lane: 1,
                record: TraceRecord::Event {
                    name: "unit_done",
                    fields: vec![("stem", FieldValue::Str("G7".into()))],
                },
            },
            TimedRecord {
                ts_us: 120,
                lane: 0,
                record: TraceRecord::SpanExit {
                    name: "campaign",
                    elapsed: Duration::from_micros(110),
                },
            },
        ];
        let doc = trace_events(&records);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 lanes → 2 metadata events, then the 3 records in order.
        assert_eq!(events.len(), 5);
        assert_eq!(events[2].get("ts").and_then(Json::as_f64), Some(10.0));
        assert_eq!(events[3].get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(
            events[3]
                .get("args")
                .and_then(|a| a.get("stem"))
                .and_then(Json::as_str),
            Some("G7")
        );
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
    }

    #[test]
    fn named_lanes_override_the_default_label() {
        let records = vec![
            TimedRecord {
                ts_us: 1,
                lane: 0,
                record: TraceRecord::Event {
                    name: "submit",
                    fields: vec![],
                },
            },
            TimedRecord {
                ts_us: 2,
                lane: 1,
                record: TraceRecord::Event {
                    name: "unit",
                    fields: vec![],
                },
            },
        ];
        let doc = trace_events_named(&records, &[(0, "request 7b1f")]);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let label = |i: usize| {
            events[i]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        };
        // Lane 0 takes the supplied name; lane 1 keeps the default.
        assert_eq!(label(0), "request 7b1f");
        assert_eq!(label(1), "lane-1");
    }
}
