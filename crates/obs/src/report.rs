//! Schema-versioned, machine-readable run reports.
//!
//! Every bench binary (and any embedding application) can serialize one
//! [`RunReport`] per run. The JSON layout is stable and versioned so perf
//! trajectories (`BENCH_*.json` artifacts) can be compared across
//! commits:
//!
//! ```json
//! {
//!   "schema_version": 4,
//!   "tool": "fires-bench/table2",
//!   "subject": "s838_like",
//!   "total_seconds": 1.234,
//!   "phases": {"implication": 0.9, "validation": 0.3},
//!   "phase_order": ["implication", "validation"],
//!   "metrics": {"counters": {...}, "maxima": {...}, "histograms": {...}},
//!   "extra": { ...free-form experiment payload... },
//!   "profile": { ...optional per-rule hotspot table... }
//! }
//! ```
//!
//! `phases` maps phase name → seconds; `phase_order` preserves execution
//! order (JSON objects here are key-sorted). `extra` carries
//! experiment-specific tables that do not need a cross-run schema.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::{Json, JsonError};
use crate::metrics::RunMetrics;
use crate::profile::RuleProfile;
use crate::timer::PhaseTimes;

/// Version of the JSON layout written by [`RunReport::to_json`]. Bump on
/// any incompatible change and keep `from_json` accepting old versions
/// where practical.
///
/// Version 2 added the campaign degradation counters
/// (`units_exhausted`, `units_retried`, `retry_events`) to the `extra`
/// payload written by `fires-jobs`. Version 3 added derived quantile
/// summaries (`p50`/`p95`/`p99`) to every serialized [`Histogram`] and
/// the per-stem cost histograms recorded by `fires-core`
/// (`core.stem_*`). Version 4 added the optional engine hotspot
/// `profile` field (a [`RuleProfile`] table) and the deterministic
/// `core.rule.*` per-rule step counters. Every change is additive —
/// quantiles are recomputed from the buckets on read, never parsed, and
/// `profile` is tolerated when absent — so version-1 through version-3
/// documents are still readable and [`RunReport::from_json`] accepts
/// `1..=4`.
///
/// [`Histogram`]: crate::Histogram
pub const SCHEMA_VERSION: u64 = 4;

/// One run's worth of observability output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Producing tool, conventionally `crate-or-bin[/variant]`.
    pub tool: String,
    /// What was processed (circuit name, suite name, ...).
    pub subject: String,
    /// Total wall-clock seconds of the run.
    pub total_seconds: f64,
    /// Named phase durations in seconds, in execution order.
    pub phases: Vec<(String, f64)>,
    /// Counters, maxima and histograms recorded during the run.
    pub metrics: RunMetrics,
    /// Engine hotspot attribution, when the producing run recorded one
    /// (schema v4; absent in older documents and untraced runs).
    pub profile: Option<RuleProfile>,
    /// Free-form experiment payload (rows of the rendered table etc.).
    pub extra: BTreeMap<String, Json>,
}

impl RunReport {
    /// An empty report for `tool` on `subject`.
    pub fn new(tool: impl Into<String>, subject: impl Into<String>) -> Self {
        RunReport {
            tool: tool.into(),
            subject: subject.into(),
            ..RunReport::default()
        }
    }

    /// Copies a [`PhaseTimes`] breakdown (total + phases) into the report.
    pub fn set_phase_times(&mut self, times: &PhaseTimes) -> &mut Self {
        self.total_seconds = times.total.as_secs_f64();
        self.phases = times
            .phases
            .iter()
            .map(|(n, d)| (n.clone(), d.as_secs_f64()))
            .collect();
        self
    }

    /// Sets the total from a raw duration (when no phase split exists).
    pub fn set_total(&mut self, total: Duration) -> &mut Self {
        self.total_seconds = total.as_secs_f64();
        self
    }

    /// Adds one phase duration (kept in insertion order).
    pub fn add_phase(&mut self, name: impl Into<String>, seconds: f64) -> &mut Self {
        self.phases.push((name.into(), seconds));
        self
    }

    /// Stores a free-form payload value under `extra.key`.
    pub fn set_extra(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Self {
        self.extra.insert(key.into(), value.into());
        self
    }

    /// The JSON tree (layout documented at module level).
    pub fn to_json(&self) -> Json {
        let mut phases = Json::object();
        let mut order = Vec::new();
        for (name, secs) in &self.phases {
            phases.set(name.clone(), *secs);
            order.push(Json::Str(name.clone()));
        }
        let mut j = Json::object();
        j.set("schema_version", SCHEMA_VERSION)
            .set("tool", self.tool.clone())
            .set("subject", self.subject.clone())
            .set("total_seconds", self.total_seconds)
            .set("phases", phases)
            .set("phase_order", Json::Arr(order))
            .set("metrics", self.metrics.to_json())
            .set("extra", Json::Obj(self.extra.clone()));
        if let Some(profile) = &self.profile {
            j.set("profile", profile.to_json());
        }
        j
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a report back from its JSON tree.
    pub fn from_json(j: &Json) -> Result<RunReport, JsonError> {
        let field = |name: &str| {
            j.get(name).ok_or_else(|| JsonError {
                message: format!("missing field {name:?}"),
            })
        };
        let version = field("schema_version")?.as_u64().ok_or_else(|| JsonError {
            message: "schema_version is not an integer".into(),
        })?;
        if version == 0 || version > SCHEMA_VERSION {
            return Err(JsonError {
                message: format!(
                    "unsupported schema_version {version} (this build reads 1..={SCHEMA_VERSION})"
                ),
            });
        }
        let phases_obj = field("phases")?.as_obj().ok_or_else(|| JsonError {
            message: "phases is not an object".into(),
        })?;
        let order = field("phase_order")?.as_arr().ok_or_else(|| JsonError {
            message: "phase_order is not an array".into(),
        })?;
        let mut phases = Vec::new();
        for name in order {
            let name = name.as_str().ok_or_else(|| JsonError {
                message: "phase_order entry is not a string".into(),
            })?;
            let secs = phases_obj
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| JsonError {
                    message: format!("phase {name:?} missing from phases"),
                })?;
            phases.push((name.to_string(), secs));
        }
        let metrics = RunMetrics::from_json(field("metrics")?).ok_or_else(|| JsonError {
            message: "malformed metrics".into(),
        })?;
        // Tolerated when absent (documents up to v3 and untraced runs),
        // rejected when present but malformed.
        let profile = match j.get("profile") {
            None => None,
            Some(p) => Some(RuleProfile::from_json(p).ok_or_else(|| JsonError {
                message: "malformed profile".into(),
            })?),
        };
        Ok(RunReport {
            tool: field("tool")?
                .as_str()
                .ok_or_else(|| JsonError {
                    message: "tool is not a string".into(),
                })?
                .to_string(),
            subject: field("subject")?
                .as_str()
                .ok_or_else(|| JsonError {
                    message: "subject is not a string".into(),
                })?
                .to_string(),
            total_seconds: field("total_seconds")?.as_f64().ok_or_else(|| JsonError {
                message: "total_seconds is not a number".into(),
            })?,
            phases,
            metrics,
            profile,
            extra: field("extra")?
                .as_obj()
                .ok_or_else(|| JsonError {
                    message: "extra is not an object".into(),
                })?
                .clone(),
        })
    }

    /// Parses a report from JSON text.
    pub fn from_json_str(text: &str) -> Result<RunReport, JsonError> {
        RunReport::from_json(&Json::parse(text)?)
    }

    /// Rolls several per-task reports up into one campaign-level report.
    ///
    /// Totals add, phase durations add (first-seen order), metrics merge
    /// (counters add, maxima max, histograms fold). Each child is
    /// summarized — subject, tool, total and its own `extra` payload —
    /// under `extra.tasks`, in the order given, so the campaign report
    /// remains a single self-contained JSON document.
    pub fn aggregate(
        tool: impl Into<String>,
        subject: impl Into<String>,
        children: &[RunReport],
    ) -> RunReport {
        let mut agg = RunReport::new(tool, subject);
        let mut tasks = Vec::with_capacity(children.len());
        for child in children {
            agg.total_seconds += child.total_seconds;
            for (name, secs) in &child.phases {
                match agg.phases.iter_mut().find(|(n, _)| n == name) {
                    Some((_, s)) => *s += secs,
                    None => agg.phases.push((name.clone(), *secs)),
                }
            }
            agg.metrics.merge(&child.metrics);
            if let Some(p) = &child.profile {
                agg.profile.get_or_insert_with(RuleProfile::new).merge(p);
            }
            let mut summary = Json::object();
            summary
                .set("tool", child.tool.clone())
                .set("subject", child.subject.clone())
                .set("total_seconds", child.total_seconds)
                .set("extra", Json::Obj(child.extra.clone()));
            tasks.push(summary);
        }
        agg.set_extra("task_count", children.len() as u64);
        agg.set_extra("tasks", Json::Arr(tasks));
        agg
    }

    /// Writes the pretty JSON document to `path`.
    pub fn write_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("fires-bench/test", "s27");
        r.total_seconds = 1.5;
        r.add_phase("implication", 0.9);
        r.add_phase("validation", 0.4);
        r.metrics.incr("core.stems_processed", 3);
        r.metrics.incr("core.marks_created", 120);
        r.metrics.set_max("core.max_frames_used", 5);
        r.metrics.observe("core.blame_set_size", 4);
        r.metrics.observe("core.blame_set_size", 60);
        r.set_extra("note", "unit test");
        r.set_extra("faults", vec![1u64, 2, 3]);
        r
    }

    #[test]
    fn json_round_trip_is_identity() {
        let report = sample();
        let text = report.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn profile_round_trips_and_aggregates() {
        use crate::profile::ProfileRule;
        let mut a = sample();
        let mut pa = RuleProfile::new();
        pa.record_many(ProfileRule::FwdAndBlockedInput, 8);
        a.profile = Some(pa.clone());
        let back = RunReport::from_json_str(&a.to_json_string()).unwrap();
        assert_eq!(back, a);
        // A profile-free child leaves the aggregate's profile equal to
        // the sum of those that have one.
        let b = sample();
        assert!(b.profile.is_none());
        let agg = RunReport::aggregate("t", "s", &[a, b]);
        assert_eq!(agg.profile, Some(pa));
        // Malformed profile is rejected, absent profile tolerated.
        let mut j = sample().to_json();
        j.set("profile", Json::Arr(vec![]));
        assert!(RunReport::from_json(&j).is_err());
    }

    #[test]
    fn schema_version_is_stamped_and_enforced() {
        let report = sample();
        let mut j = report.to_json();
        assert_eq!(
            j.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        j.set("schema_version", 999u64);
        let err = RunReport::from_json(&j).unwrap_err();
        assert!(err.message.contains("schema_version"), "{err}");
        // Older documents stay readable; version 0 never existed.
        j.set("schema_version", 1u64);
        assert!(RunReport::from_json(&j).is_ok());
        j.set("schema_version", 0u64);
        assert!(RunReport::from_json(&j).is_err());
    }

    #[test]
    fn phase_order_survives_sorting() {
        // "validation" sorts before "implication"? No — but "a_late"
        // would sort before "z_early"; the order array must win.
        let mut r = RunReport::new("t", "s");
        r.add_phase("z_first", 1.0);
        r.add_phase("a_second", 2.0);
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.phases[0].0, "z_first");
        assert_eq!(back.phases[1].0, "a_second");
    }

    #[test]
    fn missing_fields_error_cleanly() {
        let j = Json::parse("{\"schema_version\": 1}").unwrap();
        assert!(RunReport::from_json(&j).is_err());
    }

    #[test]
    fn aggregate_sums_and_keeps_child_summaries() {
        let mut a = RunReport::new("fires/table2", "s27");
        a.total_seconds = 1.0;
        a.add_phase("implication", 0.7);
        a.add_phase("validation", 0.3);
        a.metrics.incr("core.marks_created", 10);
        a.metrics.set_max("core.max_frames_used", 4);
        a.set_extra("identified_faults", 2u64);
        let mut b = RunReport::new("fires/table2", "s208_like");
        b.total_seconds = 2.0;
        b.add_phase("implication", 1.5);
        b.add_phase("setup", 0.5);
        b.metrics.incr("core.marks_created", 5);
        b.metrics.set_max("core.max_frames_used", 9);

        let agg = RunReport::aggregate("fires/campaign", "smoke", &[a.clone(), b.clone()]);
        assert_eq!(agg.tool, "fires/campaign");
        assert_eq!(agg.subject, "smoke");
        assert!((agg.total_seconds - 3.0).abs() < 1e-12);
        // Phases add by name, first-seen order preserved.
        assert_eq!(agg.phases[0], ("implication".into(), 2.2));
        assert_eq!(agg.phases[1], ("validation".into(), 0.3));
        assert_eq!(agg.phases[2], ("setup".into(), 0.5));
        assert_eq!(agg.metrics.counter("core.marks_created"), 15);
        assert_eq!(agg.metrics.maximum("core.max_frames_used"), 9);
        assert_eq!(agg.extra.get("task_count").and_then(Json::as_u64), Some(2));
        let tasks = agg.extra.get("tasks").and_then(Json::as_arr).unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].get("subject").and_then(Json::as_str), Some("s27"));
        assert_eq!(
            tasks[0]
                .get("extra")
                .and_then(|e| e.get("identified_faults"))
                .and_then(Json::as_u64),
            Some(2)
        );
        // The aggregate still round-trips through JSON.
        let back = RunReport::from_json_str(&agg.to_json_string()).unwrap();
        assert_eq!(back, agg);
    }

    #[test]
    fn aggregate_of_nothing_is_empty() {
        let agg = RunReport::aggregate("t", "s", &[]);
        assert_eq!(agg.total_seconds, 0.0);
        assert!(agg.phases.is_empty());
        assert!(agg.metrics.is_empty());
        assert_eq!(agg.extra.get("task_count").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn file_round_trip() {
        let report = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("fires_obs_report_test.json");
        report.write_to_file(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(RunReport::from_json_str(&text).unwrap(), report);
        let _ = std::fs::remove_file(&path);
    }
}
