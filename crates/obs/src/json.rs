//! A minimal JSON tree with printer and parser.
//!
//! The build environment has no crates.io access, so `serde_json` is not
//! available; this module covers what run reports need: the six JSON
//! value kinds, deterministic (sorted-key) object printing, pretty and
//! compact rendering, and a strict recursive-descent parser sufficient to
//! round-trip everything the printer emits.

use std::collections::BTreeMap;
use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Parse or access error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description with byte offset where applicable.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
    })
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `key` into an object value; panics on non-objects (an
    /// internal misuse, not a data error).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.into(), value.into());
            }
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.render(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Strict parse of a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; fold to null per common practice.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or_else(|| JsonError {
                            message: "truncated \\u escape".into(),
                        })?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| JsonError {
                                message: "non-ASCII \\u escape".into(),
                            })?,
                            16,
                        )
                        .map_err(|_| JsonError {
                            message: "invalid \\u escape".into(),
                        })?;
                        // Surrogate pairs are not produced by our printer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    message: "invalid UTF-8 in string".into(),
                })?;
                let Some(c) = rest.chars().next() else {
                    return err(format!("unexpected end of string at byte {pos}"));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    // The scanned range is ASCII digits/signs/dots by construction; an
    // empty fallback just reports "invalid number" below.
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
    match text.parse::<f64>() {
        Ok(n) => Ok(Json::Num(n)),
        Err(_) => err(format!("invalid number {text:?} at byte {start}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.5),
            Json::Num(1e300),
            Json::Str("hello \"world\"\n\t\\".into()),
            Json::Str("ünïcödé ✓".into()),
        ] {
            assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
            assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let mut obj = Json::object();
        obj.set("alpha", 1u64)
            .set("beta", vec!["x", "y"])
            .set("nested", {
                let mut n = Json::object();
                n.set("deep", Json::Arr(vec![Json::Null, Json::Bool(true)]));
                n
            });
        assert_eq!(Json::parse(&obj.to_compact()).unwrap(), obj);
        assert_eq!(Json::parse(&obj.to_pretty()).unwrap(), obj);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\": 3, \"s\": \"x\", \"a\": [1]}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn control_chars_escaped() {
        let s = Json::Str("\u{1}".into()).to_compact();
        assert_eq!(s, "\"\\u0001\"");
        assert_eq!(Json::parse(&s).unwrap(), Json::Str("\u{1}".into()));
    }
}
