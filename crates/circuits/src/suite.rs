//! The ISCAS89-*like* benchmark suite used to regenerate the paper's
//! Table 2.
//!
//! The original ISCAS89 netlists are not redistributable with this
//! repository, so each row is a generated circuit of the same structural
//! family and comparable size (see DESIGN.md §3). Counter rows
//! (`s208/s420/s838`) follow the original scaling chain — each roughly
//! doubles the previous — and carry deep chain-pair patterns so that, like
//! the originals, their maximum `c` grows with the counter depth. Rows that
//! had only 0-cycle redundancies in the paper inject only combinational
//! conflicts. Frame budgets (`# Fr.`) are chosen per circuit the way the
//! paper describes ("depending upon the circuit size, such that #Fr ≤ 15").

use fires_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};

use crate::generators::{
    chain_pair_pattern, comb_conflict_pattern, fig3_pattern, random_sequential, RandomConfig,
};

/// One row of the benchmark suite.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// Row name (`s208_like`, ...).
    pub name: &'static str,
    /// The frame budget `T_M` used for this circuit (the paper's `# Fr.`).
    pub frames: usize,
    /// The circuit itself.
    pub circuit: Circuit,
}

/// A counter core with injected redundancy patterns hanging off its bits.
fn counter_with_patterns(
    bits: usize,
    chains: (usize, usize),
    fig3: usize,
    conflicts: usize,
) -> Circuit {
    let mut b = CircuitBuilder::new();
    let en = b.input("en");
    let qs: Vec<NodeId> = (0..bits).map(|i| b.placeholder(&format!("q{i}"))).collect();
    let mut carry = en;
    for (i, &q) in qs.iter().enumerate() {
        let t = b.gate(&format!("t{i}"), GateKind::Xor, &[q, carry]);
        b.define(q, GateKind::Dff, &[t]);
        carry = b.gate(&format!("c{i}"), GateKind::And, &[carry, q]);
    }
    let mut observed: Vec<NodeId> = vec![carry];
    let (nchains, depth) = chains;
    for k in 0..nchains {
        let src = qs[(k * 3) % bits];
        observed.push(chain_pair_pattern(&mut b, &format!("cp{k}"), src, depth));
    }
    for k in 0..fig3 {
        let src = qs[(k * 5 + 1) % bits];
        let (and, ff) = fig3_pattern(&mut b, &format!("f3_{k}"), src);
        observed.push(and);
        b.output(ff);
    }
    for k in 0..conflicts {
        let src = qs[(k * 7 + 2) % bits];
        observed.push(comb_conflict_pattern(&mut b, &format!("cc{k}"), src));
    }
    // Merge the pattern outputs pairwise into ORs so a single PO does not
    // dominate, then observe everything plus a few raw counter bits.
    for (i, &o) in observed.iter().enumerate() {
        let po = b.gate(&format!("po{i}"), GateKind::Or, &[o, qs[i % bits]]);
        b.output(po);
    }
    for &q in qs.iter().take(bits / 2) {
        b.output(q);
    }
    b.build().expect("counter suite circuit is well-formed")
}

/// A pipeline with combinational conflicts on the input side.
fn pipeline_with_conflicts(width: usize, depth: usize, conflicts: usize) -> Circuit {
    let mut b = CircuitBuilder::new();
    let mut lane: Vec<NodeId> = (0..width).map(|i| b.input(&format!("in{i}"))).collect();
    let mut observed = Vec::new();
    for k in 0..conflicts {
        observed.push(comb_conflict_pattern(
            &mut b,
            &format!("cc{k}"),
            lane[k % width],
        ));
    }
    for d in 0..depth {
        let mixed: Vec<NodeId> = (0..width)
            .map(|i| {
                let kind = match (d + i) % 3 {
                    0 => GateKind::Nand,
                    1 => GateKind::Nor,
                    _ => GateKind::Xor,
                };
                b.gate(
                    &format!("m{d}_{i}"),
                    kind,
                    &[lane[i], lane[(i + 1) % width]],
                )
            })
            .collect();
        lane = mixed
            .iter()
            .enumerate()
            .map(|(i, &m)| b.gate(&format!("r{d}_{i}"), GateKind::Dff, &[m]))
            .collect();
    }
    for (i, &o) in observed.iter().enumerate() {
        let po = b.gate(&format!("po{i}"), GateKind::Or, &[o, lane[i % width]]);
        b.output(po);
    }
    for &l in lane.iter().take(width / 2) {
        b.output(l);
    }
    b.build().expect("pipeline suite circuit is well-formed")
}

/// Builds the full Table-2 suite. Deterministic: repeated calls construct
/// identical circuits.
///
/// # Example
///
/// ```
/// let suite = fires_circuits::suite::table2_suite();
/// assert!(suite.iter().any(|e| e.name == "s838_like"));
/// ```
pub fn table2_suite() -> Vec<SuiteEntry> {
    let mut rows = Vec::new();
    let mut push = |name: &'static str, frames: usize, circuit: Circuit| {
        rows.push(SuiteEntry {
            name,
            frames,
            circuit,
        });
    };
    push("s208_like", 13, counter_with_patterns(8, (2, 4), 0, 0));
    push(
        "s349_like",
        4,
        random_sequential(&RandomConfig {
            seed: 349,
            inputs: 9,
            gates: 120,
            ffs: 15,
            outputs: 11,
            fig3: 0,
            chains: (0, 0),
            conflicts: 1,
        }),
    );
    push(
        "s386_like",
        4,
        random_sequential(&RandomConfig {
            seed: 386,
            inputs: 7,
            gates: 140,
            ffs: 6,
            outputs: 7,
            fig3: 2,
            chains: (1, 2),
            conflicts: 2,
        }),
    );
    push(
        "s400_like",
        12,
        random_sequential(&RandomConfig {
            seed: 400,
            inputs: 3,
            gates: 150,
            ffs: 21,
            outputs: 6,
            fig3: 0,
            chains: (1, 2),
            conflicts: 0,
        }),
    );
    push("s420_like", 15, counter_with_patterns(16, (3, 7), 1, 0));
    push(
        "s444_like",
        11,
        random_sequential(&RandomConfig {
            seed: 444,
            inputs: 3,
            gates: 160,
            ffs: 21,
            outputs: 6,
            fig3: 0,
            chains: (0, 0),
            conflicts: 3,
        }),
    );
    push("s838_like", 15, counter_with_patterns(32, (4, 11), 2, 0));
    push("s1238_like", 3, pipeline_with_conflicts(16, 3, 3));
    push(
        "s1423_like",
        10,
        random_sequential(&RandomConfig {
            seed: 1423,
            inputs: 17,
            gates: 500,
            ffs: 74,
            outputs: 5,
            fig3: 2,
            chains: (0, 0),
            conflicts: 1,
        }),
    );
    push(
        "prolog_like",
        5,
        random_sequential(&RandomConfig {
            seed: 1010,
            inputs: 36,
            gates: 1200,
            ffs: 136,
            outputs: 73,
            fig3: 10,
            chains: (6, 2),
            conflicts: 12,
        }),
    );
    push(
        "s5378_like",
        15,
        random_sequential(&RandomConfig {
            seed: 5378,
            inputs: 35,
            gates: 2200,
            ffs: 164,
            outputs: 49,
            fig3: 12,
            chains: (6, 8),
            conflicts: 10,
        }),
    );
    push(
        "s9234_like",
        15,
        random_sequential(&RandomConfig {
            seed: 9234,
            inputs: 36,
            gates: 4500,
            ffs: 211,
            outputs: 39,
            fig3: 16,
            chains: (8, 6),
            conflicts: 14,
        }),
    );
    rows
}

/// A fast subset of the suite for smoke tests and CI campaigns: the
/// circuits that analyse in well under a second each. Deterministic, like
/// [`table2_suite`].
pub fn small_suite() -> Vec<SuiteEntry> {
    const SMALL: &[&str] = &["s208_like", "s349_like", "s386_like", "s1238_like"];
    let mut rows: Vec<SuiteEntry> = table2_suite()
        .into_iter()
        .filter(|e| SMALL.contains(&e.name))
        .collect();
    rows.insert(
        0,
        SuiteEntry {
            name: "s27",
            frames: 5,
            circuit: crate::iscas::s27(),
        },
    );
    rows
}

/// Looks one suite circuit up by name.
pub fn by_name(name: &str) -> Option<SuiteEntry> {
    table2_suite().into_iter().find(|e| e.name == name)
}

/// Resolves any named circuit this crate can build: suite rows
/// ([`by_name`]), the public `s27` benchmark, and the paper's figure
/// circuits (`fig3`/`figure3`, `fig7`/`figure7`). The campaign layer
/// (`fires-jobs`) uses this to turn task specs into circuits.
pub fn resolve(name: &str) -> Option<SuiteEntry> {
    let fixed = |name: &'static str, frames, circuit| {
        Some(SuiteEntry {
            name,
            frames,
            circuit,
        })
    };
    match name {
        "s27" => fixed("s27", 5, crate::iscas::s27()),
        "fig3" | "figure3" => fixed("fig3", 5, crate::figures::figure3()),
        "fig7" | "figure7" => fixed("fig7", 5, crate::figures::figure7()),
        _ => by_name(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic() {
        let a = table2_suite();
        let b = table2_suite();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(
                fires_netlist::bench::to_text(&x.circuit),
                fires_netlist::bench::to_text(&y.circuit)
            );
        }
    }

    #[test]
    fn frame_budgets_respect_paper_limit() {
        for e in table2_suite() {
            assert!(e.frames <= 15, "{}", e.name);
            assert!(e.frames >= 1, "{}", e.name);
        }
    }

    #[test]
    fn sizes_scale_like_the_originals() {
        let suite = table2_suite();
        let ffs = |name: &str| {
            suite
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.circuit.num_dffs())
                .unwrap()
        };
        // The counter chain roughly doubles, like s208 -> s420 -> s838.
        assert!(ffs("s420_like") > ffs("s208_like"));
        assert!(ffs("s838_like") > ffs("s420_like"));
        let gates = |name: &str| {
            suite
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.circuit.num_gates())
                .unwrap()
        };
        assert!(gates("s5378_like") > 2000);
        assert!(gates("s9234_like") > gates("s5378_like"));
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("s27_like").is_none());
        assert_eq!(by_name("s838_like").unwrap().frames, 15);
    }

    #[test]
    fn small_suite_is_a_fast_subset() {
        let small = small_suite();
        assert!(small.len() >= 3);
        assert_eq!(small[0].name, "s27");
        for e in &small {
            assert!(e.circuit.num_gates() < 500, "{} too large", e.name);
        }
    }

    #[test]
    fn resolve_covers_all_families() {
        assert_eq!(resolve("s27").unwrap().circuit.num_dffs(), 3);
        assert_eq!(resolve("fig3").unwrap().circuit.num_dffs(), 2);
        assert_eq!(resolve("figure3").unwrap().name, "fig3");
        assert!(resolve("fig7").is_some());
        assert_eq!(resolve("s838_like").unwrap().frames, 15);
        assert!(resolve("nonexistent").is_none());
    }
}
