//! Deterministic circuit generators and redundancy-injection patterns.
//!
//! The injected patterns are the redundancy families the paper's benchmark
//! results exhibit:
//!
//! * [`fig3_pattern`] — the "same signal through two flip-flops into one
//!   gate" family (1-cycle redundancies, Examples 1–2);
//! * [`chain_pair_pattern`] — two parallel `k`-deep flip-flop chains fed
//!   by one source whose XOR can never be 1 after `k` clocks (`k`-cycle
//!   redundancies; this is what produces the large `Max. c` values of
//!   circuits like S838);
//! * [`comb_conflict_pattern`] — a combinational reconvergence that needs
//!   `x = 0 ∧ x = 1` (0-cycle, i.e. conventional, redundancies).
//!
//! c-cycle redundancy is *compositional* (paper Section 4): a redundant
//! subcircuit stays redundant when embedded in any larger circuit, so the
//! generators are free to OR-merge pattern outputs into the surrounding
//! random logic.

use fires_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synchronous binary up-counter with enable: bit `i` toggles when the
/// enable and all lower bits are 1; the carry out of the top bit is
/// observed, as is the low half of the count. This is the structural
/// family of the ISCAS89 S208/S420/S838 chain (each is roughly a doubling
/// of the previous).
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// let c = fires_circuits::generators::counter(8);
/// assert_eq!(c.num_dffs(), 8);
/// ```
pub fn counter(bits: usize) -> Circuit {
    assert!(bits > 0, "counter needs at least one bit");
    let mut b = CircuitBuilder::new();
    let en = b.input("en");
    let qs: Vec<NodeId> = (0..bits).map(|i| b.placeholder(&format!("q{i}"))).collect();
    // carry[i] = en & q0 & ... & q{i-1}
    let mut carry = en;
    for (i, &q) in qs.iter().enumerate() {
        let t = b.gate(&format!("t{i}"), GateKind::Xor, &[q, carry]);
        b.define(q, GateKind::Dff, &[t]);
        carry = b.gate(&format!("c{i}"), GateKind::And, &[carry, q]);
    }
    b.output(carry);
    for &q in qs.iter().take(bits.div_ceil(2)) {
        b.output(q);
    }
    b.build().expect("counter is well-formed")
}

/// An `n`-stage shift register with an XOR tap network (an LFSR-style
/// observation): fully initializable, no redundancies expected.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn shift_register(n: usize) -> Circuit {
    assert!(n > 0, "shift register needs at least one stage");
    let mut b = CircuitBuilder::new();
    let din = b.input("din");
    let mut prev = din;
    let mut stages = Vec::with_capacity(n);
    for i in 0..n {
        prev = b.gate(&format!("s{i}"), GateKind::Dff, &[prev]);
        stages.push(prev);
    }
    let mut acc = stages[0];
    for (i, &s) in stages.iter().enumerate().skip(1).step_by(2) {
        acc = b.gate(&format!("x{i}"), GateKind::Xor, &[acc, s]);
    }
    b.output(acc);
    b.output(*stages.last().expect("n > 0"));
    b.build().expect("shift register is well-formed")
}

/// A `depth`-stage pipeline over `width` bit lanes with a layer of mixing
/// logic between flip-flop ranks. When `balanced` is true every
/// input-to-output path crosses the same number of flip-flops (the
/// "balanced pipeline" structure for which reference \[5\] of the paper
/// proved untestable ⇒ redundant); when false, a combinational bypass from
/// the first lane skews path depths.
///
/// # Panics
///
/// Panics if `width < 2` or `depth == 0`.
pub fn pipeline(width: usize, depth: usize, balanced: bool) -> Circuit {
    assert!(
        width >= 2 && depth >= 1,
        "pipeline needs width >= 2, depth >= 1"
    );
    let mut b = CircuitBuilder::new();
    let mut lane: Vec<NodeId> = (0..width).map(|i| b.input(&format!("in{i}"))).collect();
    let first_input = lane[0];
    for d in 0..depth {
        // Mixing layer: each lane combines with its right neighbour.
        let mixed: Vec<NodeId> = (0..width)
            .map(|i| {
                let kind = match (d + i) % 3 {
                    0 => GateKind::Nand,
                    1 => GateKind::Nor,
                    _ => GateKind::Xor,
                };
                b.gate(
                    &format!("m{d}_{i}"),
                    kind,
                    &[lane[i], lane[(i + 1) % width]],
                )
            })
            .collect();
        lane = mixed
            .iter()
            .enumerate()
            .map(|(i, &m)| b.gate(&format!("r{d}_{i}"), GateKind::Dff, &[m]))
            .collect();
    }
    if !balanced {
        // A zero-flip-flop bypass unbalances every path through lane 0.
        lane[0] = b.gate("bypass", GateKind::Xor, &[lane[0], first_input]);
    }
    for (i, &l) in lane.iter().enumerate() {
        if i % 2 == 0 {
            b.output(l);
        }
    }
    b.output(lane[1]);
    b.build().expect("pipeline is well-formed")
}

/// Adds the Figure-3 pattern fed by `src`: two flip-flops latch `src` and
/// an AND recombines them. Returns `(and_output, observed_ff)`; the caller
/// must keep both observable for the pattern's 1-cycle redundancy to be
/// non-trivial.
pub fn fig3_pattern(b: &mut CircuitBuilder, tag: &str, src: NodeId) -> (NodeId, NodeId) {
    let ff1 = b.gate(&format!("{tag}_b"), GateKind::Dff, &[src]);
    let ff2 = b.gate(&format!("{tag}_c"), GateKind::Dff, &[src]);
    let and = b.gate(&format!("{tag}_d"), GateKind::And, &[ff1, ff2]);
    (and, ff2)
}

/// Adds two parallel `depth`-deep flip-flop chains fed by `src` and the
/// XOR of their ends, which is constant 0 once the machine has been
/// clocked `depth` times: every fault whose detection requires that XOR to
/// be 1 is `depth`-cycle redundant. Returns the XOR output.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn chain_pair_pattern(b: &mut CircuitBuilder, tag: &str, src: NodeId, depth: usize) -> NodeId {
    assert!(depth > 0, "chain pair needs depth >= 1");
    let mut p = src;
    let mut q = src;
    for i in 0..depth {
        p = b.gate(&format!("{tag}_p{i}"), GateKind::Dff, &[p]);
        q = b.gate(&format!("{tag}_q{i}"), GateKind::Dff, &[q]);
    }
    b.gate(&format!("{tag}_x"), GateKind::Xor, &[p, q])
}

/// Adds the classic combinational conflict fed by `src`:
/// `AND(src, NOT(src))`, constant 0. Its s-a-0 (and any detection path
/// requiring it to be 1) is a conventional 0-cycle redundancy. Returns the
/// AND output.
pub fn comb_conflict_pattern(b: &mut CircuitBuilder, tag: &str, src: NodeId) -> NodeId {
    let n = b.gate(&format!("{tag}_n"), GateKind::Not, &[src]);
    b.gate(&format!("{tag}_z"), GateKind::And, &[src, n])
}

/// A one-hot encoded Moore finite-state machine without reset.
///
/// Each state gets one flip-flop; the next-state function is
/// `s_j' = OR(AND(s_i, cond_ij))` over the incoming transitions, where
/// each condition tests one (possibly negated) primary input. One-hot
/// controllers without reset are a classic source of sequential
/// redundancy: encodings outside the one-hot set (all-zero, multi-hot)
/// either die out or become unreachable after a few clocks, so logic that
/// distinguishes them is c-cycle redundant. The structural family matches
/// the ISCAS89 controller circuits (s386, s510).
///
/// # Panics
///
/// Panics if `states < 2` or `inputs == 0`.
///
/// # Example
///
/// ```
/// let c = fires_circuits::generators::fsm_one_hot(4, 2, 99);
/// assert_eq!(c.num_dffs(), 4);
/// ```
pub fn fsm_one_hot(states: usize, inputs: usize, seed: u64) -> Circuit {
    assert!(states >= 2, "FSM needs at least two states");
    assert!(inputs >= 1, "FSM needs at least one input");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new();
    let ins: Vec<NodeId> = (0..inputs).map(|i| b.input(&format!("x{i}"))).collect();
    let negs: Vec<NodeId> = ins
        .iter()
        .enumerate()
        .map(|(i, &x)| b.gate(&format!("nx{i}"), GateKind::Not, &[x]))
        .collect();
    let ffs: Vec<NodeId> = (0..states)
        .map(|j| b.placeholder(&format!("s{j}")))
        .collect();

    // Every state gets two outgoing transitions on complementary input
    // tests, so each state always hands its token somewhere.
    let mut incoming: Vec<Vec<NodeId>> = vec![Vec::new(); states];
    for (i, &sf) in ffs.iter().enumerate() {
        let x = rng.random_range(0..inputs);
        let t_true = rng.random_range(0..states);
        let t_false = rng.random_range(0..states);
        let a = b.gate(&format!("tr{i}t"), GateKind::And, &[sf, ins[x]]);
        let c = b.gate(&format!("tr{i}f"), GateKind::And, &[sf, negs[x]]);
        incoming[t_true].push(a);
        incoming[t_false].push(c);
    }
    for (j, &ff) in ffs.iter().enumerate() {
        let d = match incoming[j].len() {
            0 => b.gate(&format!("d{j}"), GateKind::Const0, &[]),
            1 => incoming[j][0],
            _ => b.gate(&format!("d{j}"), GateKind::Or, &incoming[j]),
        };
        b.define(ff, GateKind::Dff, &[d]);
    }
    // Moore outputs over random state subsets (at least one state each).
    let n_out = (states / 2).max(1);
    for o in 0..n_out {
        let mut members: Vec<NodeId> = ffs
            .iter()
            .copied()
            .filter(|_| rng.random::<bool>())
            .collect();
        if members.is_empty() {
            members.push(ffs[o % states]);
        }
        let po = if members.len() == 1 {
            b.gate(&format!("out{o}"), GateKind::Buf, &[members[0]])
        } else {
            b.gate(&format!("out{o}"), GateKind::Or, &members)
        };
        b.output(po);
    }
    b.build().expect("FSM is well-formed by construction")
}

/// Configuration for [`random_sequential`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomConfig {
    /// RNG seed; equal seeds give identical circuits.
    pub seed: u64,
    /// Primary inputs.
    pub inputs: usize,
    /// Random combinational gates in the base netlist.
    pub gates: usize,
    /// Flip-flops in the base netlist (their D pins close feedback loops).
    pub ffs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Number of injected Figure-3 patterns (1-cycle redundancies).
    pub fig3: usize,
    /// Injected chain pairs as `(count, depth)` (`depth`-cycle
    /// redundancies).
    pub chains: (usize, usize),
    /// Injected combinational conflicts (0-cycle redundancies).
    pub conflicts: usize,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            seed: 1,
            inputs: 8,
            gates: 100,
            ffs: 12,
            outputs: 6,
            fig3: 2,
            chains: (1, 3),
            conflicts: 2,
        }
    }
}

/// Generates a random synchronous netlist with injected redundancies.
///
/// The base is a random DAG of two-input gates over the inputs and
/// flip-flop outputs; flip-flop D pins are connected last and may point
/// anywhere, creating feedback that is always broken by the flip-flops
/// themselves (no combinational cycles by construction). Pattern outputs
/// are OR-merged into the primary outputs, which keeps the injected
/// redundancies redundant by compositionality.
///
/// # Example
///
/// ```
/// use fires_circuits::generators::{random_sequential, RandomConfig};
/// let a = random_sequential(&RandomConfig::default());
/// let b = random_sequential(&RandomConfig::default());
/// assert_eq!(fires_netlist::bench::to_text(&a), fires_netlist::bench::to_text(&b));
/// ```
pub fn random_sequential(cfg: &RandomConfig) -> Circuit {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = CircuitBuilder::new();
    let mut pool: Vec<NodeId> = (0..cfg.inputs.max(1))
        .map(|i| b.input(&format!("pi{i}")))
        .collect();
    let ffs: Vec<NodeId> = (0..cfg.ffs)
        .map(|i| b.placeholder(&format!("ff{i}")))
        .collect();
    pool.extend(&ffs);

    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ];
    for i in 0..cfg.gates {
        let kind = kinds[rng.random_range(0..kinds.len())];
        let a = pool[rng.random_range(0..pool.len())];
        let g = if kind == GateKind::Not {
            b.gate(&format!("g{i}"), kind, &[a])
        } else {
            let c = pool[rng.random_range(0..pool.len())];
            b.gate(&format!("g{i}"), kind, &[a, c])
        };
        pool.push(g);
    }
    // Close the flip-flop feedback.
    for (i, &ff) in ffs.iter().enumerate() {
        let d = pool[rng.random_range(0..pool.len())];
        let _ = i;
        b.define(ff, GateKind::Dff, &[d]);
    }

    // Injected redundancies, fed from random existing signals.
    let mut extra_observed: Vec<NodeId> = Vec::new();
    for k in 0..cfg.fig3 {
        let src = pool[rng.random_range(0..pool.len())];
        let (and, ff) = fig3_pattern(&mut b, &format!("f3_{k}"), src);
        extra_observed.push(and);
        b.output(ff); // the pattern's c2 observation
    }
    let (nchains, depth) = cfg.chains;
    for k in 0..nchains {
        let src = pool[rng.random_range(0..pool.len())];
        let x = chain_pair_pattern(&mut b, &format!("cp{k}"), src, depth.max(1));
        extra_observed.push(x);
    }
    for k in 0..cfg.conflicts {
        let src = pool[rng.random_range(0..pool.len())];
        extra_observed.push(comb_conflict_pattern(&mut b, &format!("cc{k}"), src));
    }

    // Primary outputs: random base signals OR-merged with pattern outputs.
    let n_outputs = cfg.outputs.max(1);
    for o in 0..n_outputs {
        let base = pool[rng.random_range(0..pool.len())];
        let merged = match extra_observed.get(o % extra_observed.len().max(1)) {
            Some(&p) if !extra_observed.is_empty() => {
                b.gate(&format!("po{o}"), GateKind::Or, &[base, p])
            }
            _ => b.gate(&format!("po{o}"), GateKind::Buf, &[base]),
        };
        b.output(merged);
    }
    b.build()
        .expect("random circuit is well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fires_sim::{Logic3, SeqSim};

    #[test]
    fn counter_counts() {
        let c = counter(3);
        let lines = fires_netlist::LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lines);
        // Set a known state and count: carry-out pulses at 111 & en.
        sim.set_state(&[Logic3::One, Logic3::One, Logic3::One]);
        let out = sim.step(&[Logic3::One], None);
        assert_eq!(out[0], Logic3::One, "carry out at full count");
        // After the toggle everything is 0.
        let out = sim.step(&[Logic3::One], None);
        assert_eq!(out[0], Logic3::Zero);
    }

    #[test]
    fn counter_wraps_like_binary() {
        let c = counter(2);
        let lines = fires_netlist::LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lines);
        sim.set_state(&[Logic3::Zero, Logic3::Zero]);
        // Count 4 steps with enable: q0 pattern 0,1,0,1; q1 pattern 0,0,1,1.
        let mut q0 = Vec::new();
        for _ in 0..4 {
            let out = sim.step(&[Logic3::One], None);
            q0.push(out[1]); // first observed bit is q0
        }
        assert_eq!(
            q0,
            vec![Logic3::Zero, Logic3::One, Logic3::Zero, Logic3::One]
        );
    }

    #[test]
    fn shift_register_delays() {
        let c = shift_register(4);
        assert_eq!(c.num_dffs(), 4);
        let lines = fires_netlist::LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lines);
        sim.set_state(&[Logic3::Zero; 4]);
        // Push a single 1 and watch it at the last stage (second output).
        let mut seen = Vec::new();
        seen.push(sim.step(&[Logic3::One], None)[1]);
        for _ in 0..4 {
            seen.push(sim.step(&[Logic3::Zero], None)[1]);
        }
        assert_eq!(seen[4], Logic3::One, "the pulse arrives after 4 clocks");
    }

    #[test]
    fn pipeline_shapes() {
        let bal = pipeline(4, 3, true);
        assert_eq!(bal.num_dffs(), 12);
        let unbal = pipeline(4, 3, false);
        assert_eq!(unbal.num_dffs(), 12);
        assert!(unbal.find("bypass").is_some());
        assert!(bal.find("bypass").is_none());
    }

    #[test]
    fn chain_pair_xor_settles_to_zero() {
        let mut b = fires_netlist::CircuitBuilder::new();
        let a = b.input("a");
        let x = chain_pair_pattern(&mut b, "cp", a, 3);
        b.output(x);
        let c = b.build().unwrap();
        let lines = fires_netlist::LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lines);
        // Set an arbitrary binary state, clock 3 times: XOR must be 0.
        sim.set_state(&[
            Logic3::One,
            Logic3::Zero,
            Logic3::One,
            Logic3::Zero,
            Logic3::Zero,
            Logic3::One,
        ]);
        let mut out = Logic3::X;
        for _ in 0..4 {
            out = sim.step(&[Logic3::One], None)[0];
        }
        assert_eq!(out, Logic3::Zero);
    }

    #[test]
    fn fsm_structure_and_determinism() {
        let a = fsm_one_hot(5, 2, 42);
        let b = fsm_one_hot(5, 2, 42);
        assert_eq!(
            fires_netlist::bench::to_text(&a),
            fires_netlist::bench::to_text(&b)
        );
        assert_eq!(a.num_dffs(), 5);
        assert_eq!(a.num_inputs(), 2);
        assert!(a.num_outputs() >= 2);
    }

    #[test]
    fn fsm_token_is_conserved_from_one_hot_states() {
        // Starting one-hot, the machine stays one-hot forever.
        let c = fsm_one_hot(4, 1, 7);
        let lines = fires_netlist::LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lines);
        sim.set_state(&[Logic3::One, Logic3::Zero, Logic3::Zero, Logic3::Zero]);
        for step in 0..8 {
            let _ = sim.step(&[Logic3::from(step % 2 == 0)], None);
            let ones = sim.state().iter().filter(|&&v| v == Logic3::One).count();
            assert_eq!(ones, 1, "token lost or duplicated at step {step}");
        }
    }

    #[test]
    fn fsm_all_zero_state_is_absorbing() {
        let c = fsm_one_hot(4, 1, 7);
        let lines = fires_netlist::LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lines);
        sim.set_state(&[Logic3::Zero; 4]);
        let _ = sim.step(&[Logic3::One], None);
        assert!(sim.state().iter().all(|&v| v == Logic3::Zero));
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let cfg = RandomConfig {
            seed: 7,
            gates: 60,
            ..RandomConfig::default()
        };
        let a = random_sequential(&cfg);
        let b = random_sequential(&cfg);
        assert_eq!(
            fires_netlist::bench::to_text(&a),
            fires_netlist::bench::to_text(&b)
        );
        let c = random_sequential(&RandomConfig { seed: 8, ..cfg });
        assert_ne!(
            fires_netlist::bench::to_text(&a),
            fires_netlist::bench::to_text(&c)
        );
    }

    #[test]
    fn random_respects_sizes() {
        let cfg = RandomConfig {
            inputs: 5,
            ffs: 9,
            outputs: 4,
            fig3: 1,
            chains: (1, 2),
            conflicts: 1,
            ..RandomConfig::default()
        };
        let c = random_sequential(&cfg);
        assert_eq!(c.num_inputs(), 5);
        // Base FFs + 2 per fig3 + 2*depth per chain.
        assert_eq!(c.num_dffs(), 9 + 2 + 4);
        // outputs + one observed FF per fig3 pattern.
        assert_eq!(c.num_outputs(), 4 + 1);
    }
}
