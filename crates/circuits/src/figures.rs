//! The paper's example circuits.

use fires_netlist::{bench, Circuit};

/// The circuit of Figure 3 (Examples 1 and 2).
///
/// The input `a` feeds two flip-flops `b` and `c`; the stem `c` splits
/// into branch `c1` (into gate `d = AND(b, c1)`) and `c2` (observed as a
/// primary output). The fault `c1` s-a-1 is untestable, *not* redundant
/// under Definition 4 (the faulty power-up state `{b, c} = {1, 0}` yields
/// the response `{d, c2} = {1, 0}` which the good circuit can never
/// produce), but 1-cycle redundant: one clock with any input forces
/// `b = c`.
///
/// # Example
///
/// ```
/// let c = fires_circuits::figures::figure3();
/// assert_eq!(c.num_inputs(), 1);
/// assert_eq!(c.num_outputs(), 2);
/// ```
pub fn figure3() -> Circuit {
    bench::parse(
        "\
# Paper Figure 3: same signal fed twice into gate d through two FFs.
INPUT(a)
OUTPUT(d)
OUTPUT(c)
b = DFF(a)
c = DFF(a)
d = AND(b, c)
",
    )
    .expect("figure 3 is well-formed")
}

/// A reconstruction of the circuit of Figure 7 (Example 3, Table 1).
///
/// The original figure is only available as an unreadable scan, so this
/// circuit is rebuilt from the paper's prose and Table 1: it has the same
/// line names (`a`, `b`, `d`, `e`, `f`, stem `c` with branches into `f`
/// and a flip-flop, `g`, `h`, `i`) and reproduces the same implication
/// *shape*:
///
/// * `c = 0̄` at time 0 implies `c1 = c2 = 0̄` at 0 and `h = i = 0̄` at 1,
///   making `g` unobservable at time 1, then `f`, `e`, `c1` unobservable
///   at 0 and `d`, `a`, `b` unobservable at −1;
/// * `c = 1̄` gives `f = 1̄` at 0 and `h = g = i = 1̄` at 1;
/// * the intersection identifies 0-cycle redundancies at frames 0/−1 and
///   the 1-cycle redundancy on `g` at frame +1.
///
/// Because the reconstruction is behavioural rather than literal, the
/// exact fault lists differ from Table 1; the test suite instead verifies
/// every identified fault against the exact state-space checker.
///
/// # Example
///
/// ```
/// let c = fires_circuits::figures::figure7();
/// assert_eq!(c.num_dffs(), 3);
/// ```
pub fn figure7() -> Circuit {
    bench::parse(
        "\
# Reconstruction of paper Figure 7 (see rustdoc).
INPUT(a)
INPUT(b)
INPUT(w)
OUTPUT(z)
c = BUFF(w)
d = AND(a, b)
e = DFF(d)
f = AND(e, c)
i = DFF(c)
h = DFF(f)
g = OR(h, i)
z = AND(g, i)
",
    )
    .expect("figure 7 reconstruction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_structure() {
        let c = figure3();
        assert_eq!(c.num_dffs(), 2);
        assert_eq!(c.num_gates(), 1);
        // The stem `c` fans out: branch into d plus the PO observation.
        let lines = fires_netlist::LineGraph::build(&c);
        let stem = lines.stem_of(c.find("c").unwrap());
        assert_eq!(lines.line(stem).branches().len(), 1);
    }

    #[test]
    fn figure7_structure() {
        let c = figure7();
        assert_eq!(c.num_inputs(), 3);
        assert_eq!(c.num_dffs(), 3);
        // Stem c fans out into f (c1) and the flip-flop i (c2).
        let lines = fires_netlist::LineGraph::build(&c);
        let stem = lines.stem_of(c.find("c").unwrap());
        assert_eq!(lines.line(stem).branches().len(), 2);
        // Stem i fans out into g and z.
        let i = lines.stem_of(c.find("i").unwrap());
        assert_eq!(lines.line(i).branches().len(), 2);
    }
}
