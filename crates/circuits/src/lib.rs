//! Benchmark circuits for the FIRES reproduction.
//!
//! Three families:
//!
//! * [`figures`] — the paper's own example circuits (Figure 3 exactly as
//!   described in Examples 1–2; Figure 7 as a documented reconstruction,
//!   since the original figure is only available as a low-quality scan);
//! * [`iscas`] — the public tiny ISCAS89 benchmark `s27`;
//! * [`generators`] — deterministic parametric generators (counters, shift
//!   registers, pipelines, random sequential glue) plus *redundancy
//!   injection* patterns of the families the paper's results exhibit;
//! * [`suite`] — a named ISCAS89-*like* benchmark suite sized to mirror
//!   the rows of the paper's Table 2 (the original netlists are not
//!   redistributable; see DESIGN.md §3 for the substitution argument).
//!
//! # Example
//!
//! ```
//! let c = fires_circuits::figures::figure3();
//! assert_eq!(c.num_dffs(), 2);
//! let s27 = fires_circuits::iscas::s27();
//! assert_eq!(s27.num_dffs(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod generators;
pub mod iscas;
pub mod suite;
