//! Embedded public ISCAS89 benchmark circuits.
//!
//! Only the tiny `s27` is embedded verbatim (it is reproduced in full in
//! many papers and textbooks). The larger ISCAS89 netlists are not
//! redistributable with this repository; [`crate::suite`] provides
//! generated circuits of comparable structure instead.

use fires_netlist::{bench, Circuit};

/// The `.bench` source of ISCAS89 `s27` (4 PIs, 1 PO, 3 DFFs, 10 gates).
pub const S27_BENCH: &str = "\
# ISCAS89 benchmark s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Parses the embedded `s27`.
///
/// # Example
///
/// ```
/// let c = fires_circuits::iscas::s27();
/// assert_eq!((c.num_inputs(), c.num_outputs(), c.num_dffs()), (4, 1, 3));
/// ```
pub fn s27() -> Circuit {
    bench::parse(S27_BENCH).expect("embedded s27 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_statistics() {
        let c = s27();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_gates(), 10);
    }

    #[test]
    fn s27_simulates_sanely() {
        use fires_sim::{Logic3, SeqSim};
        let c = s27();
        let lines = fires_netlist::LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lines);
        // All-ones input makes G9 = 1 and hence G11 = 0 combinationally:
        // G17 is binary from the very first vector.
        let last = sim.step(&[Logic3::One; 4], None)[0];
        assert!(last.is_binary(), "s27 output should resolve, got {last}");
    }
}
