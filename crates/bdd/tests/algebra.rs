//! Property tests: random Boolean expressions evaluate identically through
//! the BDD and through direct interpretation.

use fires_bdd::{Bdd, Ref};
use proptest::prelude::*;

/// A tiny expression AST over `n` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn expr_strategy(vars: u32) -> impl Strategy<Value = Expr> {
    let leaf = (0..vars).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(bdd: &mut Bdd, e: &Expr) -> Ref {
    match e {
        Expr::Var(v) => bdd.var(*v),
        Expr::Not(a) => {
            let x = build(bdd, a);
            bdd.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (build(bdd, a), build(bdd, b));
            bdd.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (build(bdd, a), build(bdd, b));
            bdd.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (build(bdd, a), build(bdd, b));
            bdd.xor(x, y)
        }
    }
}

fn interpret(e: &Expr, assignment: &[bool]) -> bool {
    match e {
        Expr::Var(v) => assignment[*v as usize],
        Expr::Not(a) => !interpret(a, assignment),
        Expr::And(a, b) => interpret(a, assignment) & interpret(b, assignment),
        Expr::Or(a, b) => interpret(a, assignment) | interpret(b, assignment),
        Expr::Xor(a, b) => interpret(a, assignment) ^ interpret(b, assignment),
    }
}

const VARS: u32 = 5;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Full truth-table agreement between the ROBDD and the interpreter.
    #[test]
    fn bdd_matches_interpreter(e in expr_strategy(VARS)) {
        let mut bdd = Bdd::new(VARS);
        let f = build(&mut bdd, &e);
        for bits in 0..1u32 << VARS {
            let assignment: Vec<bool> =
                (0..VARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(bdd.eval(f, &assignment), interpret(&e, &assignment));
        }
    }

    /// Canonicity: equal truth tables imply identical node references.
    #[test]
    fn equal_functions_share_a_node(a in expr_strategy(3), b in expr_strategy(3)) {
        let mut bdd = Bdd::new(3);
        let fa = build(&mut bdd, &a);
        let fb = build(&mut bdd, &b);
        let equal_tables = (0..8u32).all(|bits| {
            let assignment: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            interpret(&a, &assignment) == interpret(&b, &assignment)
        });
        prop_assert_eq!(fa == fb, equal_tables);
    }

    /// Quantification really is disjunction of cofactors.
    #[test]
    fn exists_is_cofactor_or(e in expr_strategy(4), v in 0u32..4) {
        let mut bdd = Bdd::new(4);
        let f = build(&mut bdd, &e);
        let q = bdd.exists(f, &[v]).unwrap();
        for bits in 0..1u32 << 4 {
            let mut assignment: Vec<bool> =
                (0..4).map(|i| bits >> i & 1 == 1).collect();
            assignment[v as usize] = false;
            let lo = bdd.eval(f, &assignment);
            assignment[v as usize] = true;
            let hi = bdd.eval(f, &assignment);
            prop_assert_eq!(bdd.eval(q, &assignment), lo | hi);
        }
    }
}
