//! Symbolic (BDD) circuit semantics: next-state and output functions,
//! image computation and reachability — the machinery of implicit state
//! enumeration.

use std::collections::HashMap;

use fires_netlist::{Circuit, Fault, GateKind, LineGraph, NodeId};

use crate::{Bdd, BddError, Ref};

/// Builds the combinational functions of `circuit` over caller-chosen
/// variables: `pi_vars[j]` is the BDD variable of primary input `j`,
/// `ff_vars[i]` that of flip-flop output `i`. With `fault` set, the stuck
/// line is forced, exactly as in the workspace's simulators.
///
/// Returns `(d_pins, outputs)`: the flip-flops' next-state functions (in
/// `circuit.dffs()` order) and the primary-output functions.
///
/// # Errors
///
/// [`BddError::Overflow`] when the manager's node budget is exhausted.
///
/// # Panics
///
/// Panics if the variable slices do not match the circuit's interface.
pub fn circuit_functions(
    bdd: &mut Bdd,
    circuit: &Circuit,
    lines: &LineGraph,
    fault: Option<Fault>,
    pi_vars: &[u32],
    ff_vars: &[u32],
) -> Result<(Vec<Ref>, Vec<Ref>), BddError> {
    assert_eq!(pi_vars.len(), circuit.num_inputs(), "PI variable count");
    assert_eq!(ff_vars.len(), circuit.num_dffs(), "FF variable count");
    let mut value: Vec<Ref> = vec![bdd.zero(); circuit.num_nodes()];
    for (j, &pi) in circuit.inputs().iter().enumerate() {
        value[pi.index()] = bdd.var(pi_vars[j]);
    }
    for (i, &ff) in circuit.dffs().iter().enumerate() {
        value[ff.index()] = bdd.var(ff_vars[i]);
    }
    let pin_value = |bdd: &Bdd, value: &[Ref], node: NodeId, pin: usize| -> Ref {
        let src = circuit.node(node).fanin()[pin];
        match fault {
            Some(f) if lines.in_line(node, pin) == f.line => {
                if f.stuck.as_bool() {
                    bdd.one()
                } else {
                    bdd.zero()
                }
            }
            _ => value[src.index()],
        }
    };
    for &id in circuit.topo_order() {
        let kind = circuit.node(id).kind();
        let v = match kind {
            GateKind::Input | GateKind::Dff => value[id.index()],
            GateKind::Const0 => bdd.zero(),
            GateKind::Const1 => bdd.one(),
            _ => {
                let n = circuit.node(id).fanin().len();
                let mut acc = match kind {
                    GateKind::And | GateKind::Nand => bdd.one(),
                    _ => bdd.zero(),
                };
                for pin in 0..n {
                    let x = pin_value(bdd, &value, id, pin);
                    acc = match kind {
                        GateKind::And | GateKind::Nand => bdd.try_and(acc, x)?,
                        GateKind::Or | GateKind::Nor => bdd.try_or(acc, x)?,
                        GateKind::Xor | GateKind::Xnor => bdd.try_xor(acc, x)?,
                        GateKind::Not | GateKind::Buf => x,
                        _ => unreachable!("sources handled above"),
                    };
                }
                if kind.is_inverting() {
                    bdd.try_not(acc)?
                } else {
                    acc
                }
            }
        };
        value[id.index()] = match fault {
            Some(f) if lines.stem_of(id) == f.line => {
                if f.stuck.as_bool() {
                    bdd.one()
                } else {
                    bdd.zero()
                }
            }
            _ => v,
        };
    }
    let mut d_pins = Vec::with_capacity(circuit.num_dffs());
    for &ff in circuit.dffs() {
        d_pins.push(pin_value(bdd, &value, ff, 0));
    }
    let outputs = circuit
        .outputs()
        .iter()
        .map(|&o| value[o.index()])
        .collect();
    Ok((d_pins, outputs))
}

/// A circuit compiled to symbolic transition form with the standard
/// interleaved variable order: flip-flop `i` gets current-state variable
/// `2i` and next-state variable `2i + 1`; primary input `j` gets variable
/// `2·FF + j`.
#[derive(Debug)]
pub struct SymbolicMachine {
    /// The manager holding every function below.
    pub bdd: Bdd,
    nff: usize,
    /// The transition relation `∧ᵢ (s'ᵢ ↔ δᵢ(s, x))`.
    pub transition: Ref,
    /// Output functions over `(s, x)`.
    pub outputs: Vec<Ref>,
    quantify: Vec<u32>,
    rename: HashMap<u32, u32>,
}

impl SymbolicMachine {
    /// Compiles `circuit` (optionally with a fault injected) under a node
    /// budget.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the budget is exhausted during
    /// compilation.
    pub fn build(
        circuit: &Circuit,
        lines: &LineGraph,
        fault: Option<Fault>,
        node_budget: usize,
    ) -> Result<Self, BddError> {
        let nff = circuit.num_dffs();
        let npi = circuit.num_inputs();
        let mut bdd = Bdd::new((2 * nff + npi) as u32);
        bdd.set_node_budget(node_budget);
        let pi_vars: Vec<u32> = (0..npi).map(|j| (2 * nff + j) as u32).collect();
        let cur_vars: Vec<u32> = (0..nff).map(|i| (2 * i) as u32).collect();
        let (d_pins, outputs) =
            circuit_functions(&mut bdd, circuit, lines, fault, &pi_vars, &cur_vars)?;
        let mut transition = bdd.one();
        for (i, &d) in d_pins.iter().enumerate() {
            let next = bdd.var((2 * i + 1) as u32);
            let bit = bdd.iff(next, d)?;
            transition = bdd.try_and(transition, bit)?;
        }
        let mut quantify: Vec<u32> = cur_vars.clone();
        quantify.extend(&pi_vars);
        quantify.sort_unstable();
        let rename: HashMap<u32, u32> = (0..nff)
            .map(|i| ((2 * i + 1) as u32, (2 * i) as u32))
            .collect();
        Ok(SymbolicMachine {
            bdd,
            nff,
            transition,
            outputs,
            quantify,
            rename,
        })
    }

    /// The characteristic function of one concrete state.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the flip-flop count.
    pub fn state_cube(&mut self, bits: &[bool]) -> Ref {
        assert_eq!(bits.len(), self.nff, "state width");
        let mut cube = self.bdd.one();
        for (i, &b) in bits.iter().enumerate() {
            let lit = if b {
                self.bdd.var((2 * i) as u32)
            } else {
                self.bdd.nvar((2 * i) as u32)
            };
            cube = self.bdd.and(cube, lit);
        }
        cube
    }

    /// One symbolic image step: the states reachable from `r` in one clock
    /// under any input.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the budget is exhausted.
    pub fn image(&mut self, r: Ref) -> Result<Ref, BddError> {
        let conj = self.bdd.try_and(r, self.transition)?;
        let quantified = self.bdd.exists(conj, &self.quantify)?;
        self.bdd.rename(quantified, &self.rename)
    }

    /// The least fixpoint of states reachable from `init`.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the budget is exhausted.
    pub fn reachable(&mut self, init: Ref) -> Result<Ref, BddError> {
        let mut r = init;
        loop {
            let img = self.image(r)?;
            let next = self.bdd.try_or(r, img)?;
            if next == r {
                return Ok(r);
            }
            r = next;
        }
    }

    /// Enumerates the concrete states in a state set (current-state
    /// variables only). Exponential; intended for tests on small machines.
    pub fn enumerate_states(&self, set: Ref) -> Vec<u64> {
        let nvars = self.bdd.num_vars() as usize;
        let mut found = Vec::new();
        for state in 0..1u64 << self.nff {
            // Any input assignment will do: state cubes are input-free.
            let mut assignment = vec![false; nvars];
            for i in 0..self.nff {
                assignment[2 * i] = state >> i & 1 == 1;
            }
            if self.bdd.eval(set, &assignment) {
                found.push(state);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use fires_netlist::bench;

    use super::*;

    #[test]
    fn functions_match_truth_table() {
        let c = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n").unwrap();
        let lines = LineGraph::build(&c);
        let mut bdd = Bdd::new(2);
        let (_, outs) = circuit_functions(&mut bdd, &c, &lines, None, &[0, 1], &[]).unwrap();
        assert!(bdd.eval(outs[0], &[false, false]));
        assert!(bdd.eval(outs[0], &[true, false]));
        assert!(!bdd.eval(outs[0], &[true, true]));
    }

    #[test]
    fn fault_injection_forces_lines() {
        use fires_netlist::Fault;
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n").unwrap();
        let lines = LineGraph::build(&c);
        let z = lines.stem_of(c.find("z").unwrap());
        let mut bdd = Bdd::new(1);
        let (_, outs) =
            circuit_functions(&mut bdd, &c, &lines, Some(Fault::sa1(z)), &[0], &[]).unwrap();
        assert_eq!(outs[0], bdd.one());
    }

    #[test]
    fn reachability_matches_figure3_shrinkage() {
        // Figure 3: from the full state space the reachable set after the
        // first clock collapses to {00, 11}; from reset 00 it is the same.
        let c =
            bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
                .unwrap();
        let lines = LineGraph::build(&c);
        let mut m = SymbolicMachine::build(&c, &lines, None, 1 << 20).unwrap();
        let init = m.state_cube(&[false, false]);
        let r = m.reachable(init).unwrap();
        assert_eq!(m.enumerate_states(r), vec![0b00, 0b11]);
    }

    #[test]
    fn symbolic_reachability_matches_explicit_machine() {
        let c = fires_circuits::iscas::s27();
        let lines = LineGraph::build(&c);
        let mut m = SymbolicMachine::build(&c, &lines, None, 1 << 22).unwrap();
        let init = m.state_cube(&[false, false, false]);
        let r = m.reachable(init).unwrap();
        let mut symbolic = m.enumerate_states(r);
        symbolic.sort_unstable();

        // Explicit BFS on the binary machine.
        let machine = fires_verify::BinMachine::good(&c, &lines);
        let mut seen = vec![false; machine.num_states()];
        let mut stack = vec![0u64];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            for v in 0..machine.num_input_vectors() as u64 {
                let (n, _) = machine.step(s, v);
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    stack.push(n);
                }
            }
        }
        let explicit: Vec<u64> = (0..machine.num_states() as u64)
            .filter(|&s| seen[s as usize])
            .collect();
        assert_eq!(symbolic, explicit);
    }

    #[test]
    fn overflow_surfaces_cleanly() {
        let c = fires_circuits::suite::by_name("s1423_like")
            .unwrap()
            .circuit;
        let lines = LineGraph::build(&c);
        match SymbolicMachine::build(&c, &lines, None, 256) {
            Err(BddError::Overflow { .. }) => {}
            other => panic!("expected overflow on a tiny budget, got {other:?}"),
        }
    }
}
