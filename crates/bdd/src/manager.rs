//! The ROBDD manager.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A reference to a BDD node (index into the manager's node table).
/// `Ref(0)` is the constant FALSE, `Ref(1)` the constant TRUE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ref(u32);

impl Ref {
    const ZERO: Ref = Ref(0);
    const ONE: Ref = Ref(1);

    fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// Errors from BDD construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The node budget was exhausted — the classical BDD blowup the paper
    /// cites as the practical limitation of implicit state enumeration.
    Overflow {
        /// The configured node budget.
        budget: usize,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::Overflow { budget } => {
                write!(f, "BDD node budget exhausted ({budget} nodes)")
            }
        }
    }
}

impl Error for BddError {}

/// A reduced-ordered binary decision diagram manager with a fixed variable
/// order `0 < 1 < ... < n-1` (variable 0 closest to the root).
///
/// Operations are memoized (unique table + ITE cache). All operations are
/// total except where a node budget is set, in which case they return
/// [`BddError::Overflow`] instead of thrashing — see
/// [`set_node_budget`](Self::set_node_budget).
#[derive(Clone, Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    num_vars: u32,
    budget: usize,
}

impl Bdd {
    /// Creates a manager over `num_vars` variables.
    pub fn new(num_vars: u32) -> Self {
        Bdd {
            // Slots 0/1 are placeholders for the terminals.
            nodes: vec![
                Node {
                    var: u32::MAX,
                    lo: Ref::ZERO,
                    hi: Ref::ZERO,
                },
                Node {
                    var: u32::MAX,
                    lo: Ref::ONE,
                    hi: Ref::ONE,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
            budget: usize::MAX,
        }
    }

    /// Caps the number of nodes the manager may allocate; operations that
    /// would exceed it return [`BddError::Overflow`].
    pub fn set_node_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    /// The constant FALSE.
    pub fn zero(&self) -> Ref {
        Ref::ZERO
    }

    /// The constant TRUE.
    pub fn one(&self) -> Ref {
        Ref::ONE
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Nodes allocated so far (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The function of a single variable.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable out of range");
        self.mk(var, Ref::ZERO, Ref::ONE).expect("two terminals")
    }

    /// The negated single-variable function.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nvar(&mut self, var: u32) -> Ref {
        assert!(var < self.num_vars, "variable out of range");
        self.mk(var, Ref::ONE, Ref::ZERO).expect("two terminals")
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Result<Ref, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return Ok(r);
        }
        if self.nodes.len() >= self.budget {
            return Err(BddError::Overflow {
                budget: self.budget,
            });
        }
        let r = Ref(u32::try_from(self.nodes.len()).expect("node index fits u32"));
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        Ok(r)
    }

    fn top_var(&self, f: Ref) -> u32 {
        if f.is_terminal() {
            u32::MAX
        } else {
            self.nodes[f.0 as usize].var
        }
    }

    fn cofactors(&self, f: Ref, var: u32) -> (Ref, Ref) {
        if f.is_terminal() || self.nodes[f.0 as usize].var != var {
            (f, f)
        } else {
            let n = self.nodes[f.0 as usize];
            (n.lo, n.hi)
        }
    }

    /// If-then-else: `f ? g : h`, the universal BDD operation.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, BddError> {
        // Terminal cases.
        if f == Ref::ONE {
            return Ok(g);
        }
        if f == Ref::ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Ref::ONE && h == Ref::ZERO {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let v = self.top_var(f).min(self.top_var(g)).min(self.top_var(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(v, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Conjunction. See [`ite`](Self::ite) for errors.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.try_and(f, g).expect("unbounded manager")
    }

    /// Fallible conjunction.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    pub fn try_and(&mut self, f: Ref, g: Ref) -> Result<Ref, BddError> {
        self.ite(f, g, Ref::ZERO)
    }

    /// Disjunction (panicking convenience; use with an unbounded manager).
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.try_or(f, g).expect("unbounded manager")
    }

    /// Fallible disjunction.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    pub fn try_or(&mut self, f: Ref, g: Ref) -> Result<Ref, BddError> {
        self.ite(f, Ref::ONE, g)
    }

    /// Exclusive-or (panicking convenience).
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.try_xor(f, g).expect("unbounded manager")
    }

    /// Fallible exclusive-or.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    pub fn try_xor(&mut self, f: Ref, g: Ref) -> Result<Ref, BddError> {
        let ng = self.try_not(g)?;
        self.ite(f, ng, g)
    }

    /// Negation (panicking convenience).
    pub fn not(&mut self, f: Ref) -> Ref {
        self.try_not(f).expect("unbounded manager")
    }

    /// Fallible negation.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    pub fn try_not(&mut self, f: Ref) -> Result<Ref, BddError> {
        self.ite(f, Ref::ZERO, Ref::ONE)
    }

    /// Biconditional `f ↔ g`.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    pub fn iff(&mut self, f: Ref, g: Ref) -> Result<Ref, BddError> {
        let x = self.try_xor(f, g)?;
        self.try_not(x)
    }

    /// Existentially quantifies every variable in `vars` (sorted slice).
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    pub fn exists(&mut self, f: Ref, vars: &[u32]) -> Result<Ref, BddError> {
        let mut memo: HashMap<Ref, Ref> = HashMap::new();
        self.exists_rec(f, vars, &mut memo)
    }

    fn exists_rec(
        &mut self,
        f: Ref,
        vars: &[u32],
        memo: &mut HashMap<Ref, Ref>,
    ) -> Result<Ref, BddError> {
        if f.is_terminal() {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let n = self.nodes[f.0 as usize];
        // Variables above the node's var no longer matter.
        let lo = self.exists_rec(n.lo, vars, memo)?;
        let hi = self.exists_rec(n.hi, vars, memo)?;
        let r = if vars.binary_search(&n.var).is_ok() {
            self.try_or(lo, hi)?
        } else {
            self.mk(n.var, lo, hi)?
        };
        memo.insert(f, r);
        Ok(r)
    }

    /// Renames variables according to `map` (identity where absent). The
    /// mapping must preserve the variable order (strictly monotone on its
    /// domain), which keeps the result reduced and ordered without a
    /// re-sort; image computation's next→current renaming satisfies this
    /// by construction.
    ///
    /// # Errors
    ///
    /// [`BddError::Overflow`] when the node budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the mapping is not order-preserving.
    pub fn rename(&mut self, f: Ref, map: &HashMap<u32, u32>) -> Result<Ref, BddError> {
        #[cfg(debug_assertions)]
        {
            let mut pairs: Vec<(u32, u32)> = map.iter().map(|(&a, &b)| (a, b)).collect();
            pairs.sort_unstable();
            for w in pairs.windows(2) {
                debug_assert!(w[0].1 < w[1].1, "rename map must preserve order");
            }
        }
        let mut memo: HashMap<Ref, Ref> = HashMap::new();
        self.rename_rec(f, map, &mut memo)
    }

    fn rename_rec(
        &mut self,
        f: Ref,
        map: &HashMap<u32, u32>,
        memo: &mut HashMap<Ref, Ref>,
    ) -> Result<Ref, BddError> {
        if f.is_terminal() {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let n = self.nodes[f.0 as usize];
        let lo = self.rename_rec(n.lo, map, memo)?;
        let hi = self.rename_rec(n.hi, map, memo)?;
        let var = map.get(&n.var).copied().unwrap_or(n.var);
        let r = self.mk(var, lo, hi)?;
        memo.insert(f, r);
        Ok(r)
    }

    /// Evaluates `f` under a full assignment (index = variable).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < num_vars` and `f` tests a missing
    /// variable.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        cur == Ref::ONE
    }

    /// Picks one satisfying assignment, or `None` for the constant FALSE.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<bool>> {
        if f == Ref::ZERO {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.nodes[cur.0 as usize];
            if n.hi != Ref::ZERO {
                assignment[n.var as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_algebra_basics() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xy = b.and(x, y);
        let or = b.or(xy, z);
        assert!(b.eval(or, &[true, true, false]));
        assert!(b.eval(or, &[false, false, true]));
        assert!(!b.eval(or, &[false, true, false]));
        // Idempotence and canonicity.
        assert_eq!(b.and(x, x), x);
        assert_eq!(b.or(x, x), x);
        let nx = b.not(x);
        assert_eq!(b.and(x, nx), b.zero());
        assert_eq!(b.or(x, nx), b.one());
        let nnx = b.not(nx);
        assert_eq!(nnx, x);
    }

    #[test]
    fn xor_and_iff() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let xo = b.xor(x, y);
        let eq = b.iff(x, y).unwrap();
        let nxo = b.not(xo);
        assert_eq!(eq, nxo);
        assert!(b.eval(xo, &[true, false]));
        assert!(!b.eval(xo, &[true, true]));
    }

    #[test]
    fn exists_quantification() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        // ∃x. x ∧ y = y
        assert_eq!(b.exists(f, &[0]).unwrap(), y);
        // ∃x∃y. x ∧ y = true
        assert_eq!(b.exists(f, &[0, 1]).unwrap(), b.one());
        let g = b.xor(x, y);
        assert_eq!(b.exists(g, &[0]).unwrap(), b.one());
    }

    #[test]
    fn rename_shifts_variables() {
        let mut b = Bdd::new(4);
        let x1 = b.var(1);
        let x3 = b.var(3);
        let f = b.and(x1, x3);
        let map: HashMap<u32, u32> = [(1, 0), (3, 2)].into_iter().collect();
        let g = b.rename(f, &map).unwrap();
        let x0 = b.var(0);
        let x2 = b.var(2);
        let expect = b.and(x0, x2);
        assert_eq!(g, expect);
    }

    #[test]
    fn any_sat_finds_a_witness() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let ny = b.nvar(1);
        let f = b.and(x, ny);
        let w = b.any_sat(f).unwrap();
        assert!(b.eval(f, &w));
        assert!(b.any_sat(b.zero()).is_none());
    }

    #[test]
    fn node_budget_overflows() {
        let mut b = Bdd::new(16);
        // Allocate the variables before arming the budget (var() panics on
        // overflow by design; the fallible surface is the operations).
        let vars: Vec<Ref> = (0..16).map(|v| b.var(v)).collect();
        b.set_node_budget(b.num_nodes() + 4);
        let mut acc = b.one();
        let mut failed = false;
        for (i, &x) in vars.iter().enumerate() {
            // Parity functions blow up node count quickly.
            match b.try_xor(acc, x) {
                Ok(r) => acc = r,
                Err(BddError::Overflow { budget }) => {
                    assert!(budget >= 4);
                    failed = true;
                    break;
                }
            }
            let _ = i;
        }
        assert!(failed, "tiny budget must overflow");
    }

    #[test]
    fn canonical_equality_of_equivalent_formulas() {
        // (x ∧ y) ∨ (x ∧ z) == x ∧ (y ∨ z)
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        let xy = b.and(x, y);
        let xz = b.and(x, z);
        let lhs = b.or(xy, xz);
        let yz = b.or(y, z);
        let rhs = b.and(x, yz);
        assert_eq!(lhs, rhs);
    }
}
