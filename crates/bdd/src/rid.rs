//! Reset-assuming redundancy identification by implicit state enumeration
//! (the reference-\[7\] baseline).
//!
//! A fault is *reset-redundant* when the good and faulty machines, both
//! started from the same (assumed fault-free) reset state, produce equal
//! outputs on every reachable product state under every input. This is
//! the notion the paper criticizes: it needs a global reset, the reset
//! must be fault-free, and the symbolic reachability can blow up — all
//! three limitations are observable through this implementation.

use std::collections::HashMap;

use fires_netlist::{Circuit, Fault, LineGraph};

use crate::symbolic::circuit_functions;
use crate::{Bdd, BddError};

/// Verdict of the reset-assuming analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResetRidOutcome {
    /// No reachable product state distinguishes the machines: the fault is
    /// redundant *under the reset assumption*.
    Redundant {
        /// Image iterations until the fixpoint.
        iterations: usize,
    },
    /// A reachable product state plus input shows different outputs.
    Irredundant {
        /// Iteration at which the difference appeared (0 = at reset).
        at_iteration: usize,
    },
    /// The BDDs exceeded the node budget — the blowup failure mode the
    /// paper cites for implicit state enumeration.
    Overflow {
        /// Nodes allocated when the budget tripped.
        nodes: usize,
    },
}

/// Runs the reset-assuming product-machine analysis for one fault.
///
/// Variable order: flip-flop `i` contributes four adjacent variables
/// (good current, faulty current, good next, faulty next); primary inputs
/// come last. The product transition relation is built once; reachability
/// iterates images from the doubled reset state, checking the output
/// difference predicate at every frontier.
///
/// # Panics
///
/// Panics if `reset.len()` differs from the flip-flop count.
///
/// # Example
///
/// ```
/// use fires_bdd::{reset_redundant, ResetRidOutcome};
/// use fires_netlist::{bench, Fault, LineGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 3 with reset 00: the branch fault is invisible from reset.
/// let c = bench::parse(
///     "INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n",
/// )?;
/// let lines = LineGraph::build(&c);
/// let c_stem = lines.stem_of(c.find("c").unwrap());
/// let c1 = lines.line(c_stem).branches()[0];
/// let out = reset_redundant(&c, &lines, Fault::sa1(c1), &[false, false], 1 << 20);
/// assert!(matches!(out, ResetRidOutcome::Redundant { .. }));
/// # Ok(())
/// # }
/// ```
pub fn reset_redundant(
    circuit: &Circuit,
    lines: &LineGraph,
    fault: Fault,
    reset: &[bool],
    node_budget: usize,
) -> ResetRidOutcome {
    match run(circuit, lines, fault, reset, node_budget) {
        Ok(outcome) => outcome,
        Err(BddError::Overflow { budget }) => ResetRidOutcome::Overflow { nodes: budget },
    }
}

fn run(
    circuit: &Circuit,
    lines: &LineGraph,
    fault: Fault,
    reset: &[bool],
    node_budget: usize,
) -> Result<ResetRidOutcome, BddError> {
    let nff = circuit.num_dffs();
    let npi = circuit.num_inputs();
    assert_eq!(reset.len(), nff, "reset width");
    // Layout: [g_cur, f_cur, g_next, f_next] per FF, inputs last.
    let g_cur: Vec<u32> = (0..nff).map(|i| (4 * i) as u32).collect();
    let f_cur: Vec<u32> = (0..nff).map(|i| (4 * i + 1) as u32).collect();
    let g_next: Vec<u32> = (0..nff).map(|i| (4 * i + 2) as u32).collect();
    let f_next: Vec<u32> = (0..nff).map(|i| (4 * i + 3) as u32).collect();
    let pi: Vec<u32> = (0..npi).map(|j| (4 * nff + j) as u32).collect();

    let mut bdd = Bdd::new((4 * nff + npi) as u32);
    bdd.set_node_budget(node_budget);

    let (gd, gout) = circuit_functions(&mut bdd, circuit, lines, None, &pi, &g_cur)?;
    let (fd, fout) = circuit_functions(&mut bdd, circuit, lines, Some(fault), &pi, &f_cur)?;

    // Output difference predicate over (cur, in).
    let mut diff = bdd.zero();
    for (g, f) in gout.iter().zip(&fout) {
        let x = bdd.try_xor(*g, *f)?;
        diff = bdd.try_or(diff, x)?;
    }

    // Product transition relation.
    let mut trans = bdd.one();
    for i in 0..nff {
        let gn = bdd.var(g_next[i]);
        let bit = bdd.iff(gn, gd[i])?;
        trans = bdd.try_and(trans, bit)?;
        let fn_ = bdd.var(f_next[i]);
        let bit = bdd.iff(fn_, fd[i])?;
        trans = bdd.try_and(trans, bit)?;
    }

    let mut quantify: Vec<u32> = g_cur.iter().chain(&f_cur).chain(&pi).copied().collect();
    quantify.sort_unstable();
    let rename: HashMap<u32, u32> = g_next
        .iter()
        .zip(&g_cur)
        .chain(f_next.iter().zip(&f_cur))
        .map(|(&n, &c)| (n, c))
        .collect();

    // Doubled reset state.
    let mut r = bdd.one();
    for (i, &bit) in reset.iter().enumerate() {
        let gl = if bit {
            bdd.var(g_cur[i])
        } else {
            bdd.nvar(g_cur[i])
        };
        r = bdd.try_and(r, gl)?;
        let fl = if bit {
            bdd.var(f_cur[i])
        } else {
            bdd.nvar(f_cur[i])
        };
        r = bdd.try_and(r, fl)?;
    }

    let mut iterations = 0usize;
    loop {
        let bad = bdd.try_and(r, diff)?;
        if bad != bdd.zero() {
            return Ok(ResetRidOutcome::Irredundant {
                at_iteration: iterations,
            });
        }
        let conj = bdd.try_and(r, trans)?;
        let quantified = bdd.exists(conj, &quantify)?;
        let img = bdd.rename(quantified, &rename)?;
        let next = bdd.try_or(r, img)?;
        if next == r {
            return Ok(ResetRidOutcome::Redundant { iterations });
        }
        r = next;
        iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use fires_netlist::{bench, FaultList};

    use super::*;

    fn figure3() -> Circuit {
        bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
            .unwrap()
    }

    #[test]
    fn detectable_fault_is_irredundant_from_reset() {
        let c = figure3();
        let lines = LineGraph::build(&c);
        // The PO stem d s-a-1 is plainly detectable.
        let d = lines.stem_of(c.find("d").unwrap());
        let out = reset_redundant(&c, &lines, Fault::sa1(d), &[false, false], 1 << 20);
        assert!(matches!(
            out,
            ResetRidOutcome::Irredundant { at_iteration: 0 }
        ));
    }

    #[test]
    fn figure3_branch_fault_is_reset_redundant() {
        let c = figure3();
        let lines = LineGraph::build(&c);
        let c_stem = lines.stem_of(c.find("c").unwrap());
        let c1 = lines.line(c_stem).branches()[0];
        let out = reset_redundant(&c, &lines, Fault::sa1(c1), &[false, false], 1 << 20);
        assert!(matches!(out, ResetRidOutcome::Redundant { .. }), "{out:?}");
    }

    #[test]
    fn verdicts_match_explicit_product_bfs() {
        // Cross-check every fault of Figure 3 against an explicit-state
        // product BFS from the doubled reset state.
        let c = figure3();
        let lines = LineGraph::build(&c);
        let good = fires_verify::BinMachine::good(&c, &lines);
        for fault in FaultList::full(&lines).iter() {
            let faulty = fires_verify::BinMachine::faulty(&c, &lines, fault);
            // Explicit BFS.
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![(0u64, 0u64)];
            seen.insert((0u64, 0u64));
            let mut differs = false;
            while let Some((sg, sf)) = stack.pop() {
                for v in 0..good.num_input_vectors() as u64 {
                    let (ng, og) = good.step(sg, v);
                    let (nf, of) = faulty.step(sf, v);
                    if og != of {
                        differs = true;
                    }
                    if seen.insert((ng, nf)) {
                        stack.push((ng, nf));
                    }
                }
            }
            let out = reset_redundant(&c, &lines, fault, &[false, false], 1 << 20);
            match (differs, &out) {
                (true, ResetRidOutcome::Irredundant { .. })
                | (false, ResetRidOutcome::Redundant { .. }) => {}
                other => panic!(
                    "mismatch for {}: explicit differs={differs}, symbolic {other:?}",
                    fault.display(&lines, &c)
                ),
            }
        }
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        let c = fires_circuits::suite::by_name("s1423_like")
            .unwrap()
            .circuit;
        let lines = LineGraph::build(&c);
        let fault = FaultList::full(&lines).iter().next().unwrap();
        let reset = vec![false; c.num_dffs()];
        let out = reset_redundant(&c, &lines, fault, &reset, 512);
        assert!(matches!(out, ResetRidOutcome::Overflow { .. }));
    }
}
