//! A compact reduced-ordered BDD package and the implicit-state-enumeration
//! redundancy identification it enables.
//!
//! The paper's Section 1 discusses the approach of Cho, Hachtel and
//! Somenzi (reference \[7\]): identify sequential redundancies by symbolic
//! reachability over the good/faulty product machine, **assuming a
//! fault-free global reset**. FIRES' headline advantages over it are that
//! FIRES needs no reset and no state-transition information and never
//! blows up the way BDDs can. To make that comparison concrete, this crate
//! implements the baseline from scratch:
//!
//! * [`Bdd`] — a classical ROBDD manager (unique table, ITE with memo,
//!   existential quantification, substitution);
//! * [`symbolic`] — next-state/output functions of a
//!   [`Circuit`](fires_netlist::Circuit) as BDDs, symbolic image and
//!   reachability;
//! * [`reset_redundant`] — redundancy identification with a reset state:
//!   a fault is redundant (w.r.t. the reset assumption) iff the good and
//!   faulty machines, both started at the reset state, agree on every
//!   reachable product state.
//!
//! # Example
//!
//! ```
//! use fires_bdd::Bdd;
//!
//! let mut bdd = Bdd::new(2);
//! let x = bdd.var(0);
//! let y = bdd.var(1);
//! let f = bdd.and(x, y);
//! let g = bdd.not(f);
//! let h = bdd.or(f, g);            // tautology
//! assert_eq!(h, bdd.one());
//! assert_eq!(bdd.eval(f, &[true, true]), true);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod rid;
pub mod symbolic;

pub use manager::{Bdd, BddError, Ref};
pub use rid::{reset_redundant, ResetRidOutcome};
