//! Mutation fuzzing of the `.bench` parser: start from *valid* sources
//! and break them — truncation, byte flips, duplicated definitions,
//! pathologically deep or wide netlists. Whatever the damage, `parse`
//! must return `Err` or a circuit whose serialization round-trips; it
//! must never panic and never hang.

use fires_netlist::{bench, Circuit, LineGraph};
use proptest::prelude::*;

/// Valid seed sources the mutations start from.
const SEEDS: &[&str] = &[
    // Combinational with fanout.
    "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(y)\nm = NAND(a, b)\nz = NOT(m)\ny = BUFF(m)\n",
    // Sequential loop through a flip-flop.
    "INPUT(G0)\nINPUT(G1)\nOUTPUT(G17)\nG5 = DFF(G10)\nG10 = NAND(G0, G5)\n\
     G11 = NOR(G1, G5)\nG17 = XOR(G10, G11)\n",
    // Constants and comments.
    "# header\nINPUT(a)\nOUTPUT(z)\nk = CONST1()\nz = AND(a, k) # trailing\n",
];

/// Parsing must succeed or fail cleanly; on success the circuit must
/// survive serialize → reparse with the same shape, and the line graph
/// must build (downstream layers trust accepted circuits completely).
fn must_handle(text: &str) {
    if let Ok(circuit) = bench::parse(text) {
        let serialized = bench::to_text(&circuit);
        let round = bench::parse(&serialized).expect("own output parses");
        assert_eq!(round.num_nodes(), circuit.num_nodes());
        assert_eq!(round.num_outputs(), circuit.num_outputs());
        // `to_text` orders inputs first, so one serialization pass
        // normalizes node ids; after that the text is a fixed point.
        assert_eq!(bench::to_text(&round), serialized);
        let _ = LineGraph::build(&circuit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    /// Truncating a valid source at any byte never panics the parser.
    #[test]
    fn truncation_is_handled(pick in (0..SEEDS.len(), 0..4096usize)) {
        let (which, cut) = pick;
        let src = SEEDS[which];
        let cut = cut.min(src.len());
        let text = String::from_utf8_lossy(&src.as_bytes()[..cut]);
        must_handle(&text);
    }

    /// Flipping arbitrary bytes to arbitrary values never panics.
    #[test]
    fn byte_flips_are_handled(
        pick in (0..SEEDS.len(),
                 proptest::collection::vec((0..4096usize, 0..256usize), 1..8))
    ) {
        let (which, flips) = pick;
        let mut bytes = SEEDS[which].as_bytes().to_vec();
        for (pos, value) in flips {
            let at = pos % bytes.len();
            bytes[at] = value as u8;
        }
        let text = String::from_utf8_lossy(&bytes);
        must_handle(&text);
    }

    /// Re-appending lines of a valid source (duplicate INPUT / OUTPUT /
    /// gate definitions) errors cleanly or round-trips.
    #[test]
    fn duplicated_lines_are_handled(
        pick in (0..SEEDS.len(), proptest::collection::vec(0..16usize, 1..4))
    ) {
        let (which, dups) = pick;
        let src = SEEDS[which];
        let lines: Vec<&str> = src.lines().collect();
        let mut text = String::from(src);
        for d in dups {
            text.push_str(lines[d % lines.len()]);
            text.push('\n');
        }
        must_handle(&text);
    }

    /// Splicing a random line from one seed into another never panics
    /// (undefined signals, arity clashes, redefinitions).
    #[test]
    fn spliced_sources_are_handled(
        pick in (0..SEEDS.len(), 0..SEEDS.len(), 0..16usize, 0..16usize)
    ) {
        let (dst, src, take, at) = pick;
        let donor: Vec<&str> = SEEDS[src].lines().collect();
        let mut lines: Vec<&str> = SEEDS[dst].lines().collect();
        lines.insert(at % (lines.len() + 1), donor[take % donor.len()]);
        must_handle(&lines.join("\n"));
    }
}

/// A deep inverter chain parses, builds and levelizes without blowing
/// the stack or hanging — topological order must be iterative.
#[test]
fn deep_chains_do_not_overflow_or_hang() {
    const DEPTH: usize = 50_000;
    let mut text = String::from("INPUT(x0)\n");
    for i in 1..=DEPTH {
        text.push_str(&format!("x{i} = NOT(x{})\n", i - 1));
    }
    text.push_str(&format!("OUTPUT(x{DEPTH})\n"));
    let circuit = bench::parse(&text).expect("deep chain is valid");
    assert_eq!(circuit.num_nodes(), DEPTH + 1);
    let _ = LineGraph::build(&circuit);
}

/// One gate with a huge fanin list (and its dual: one net with a huge
/// fanout) parses and builds; wide structures are as legal as deep ones.
#[test]
fn wide_fanin_and_fanout_are_handled() {
    const WIDTH: usize = 5_000;
    let mut text = String::new();
    for i in 0..WIDTH {
        text.push_str(&format!("INPUT(i{i})\n"));
    }
    let args: Vec<String> = (0..WIDTH).map(|i| format!("i{i}")).collect();
    text.push_str(&format!("z = AND({})\n", args.join(", ")));
    for i in 0..WIDTH {
        text.push_str(&format!("b{i} = NOT(z)\nOUTPUT(b{i})\n"));
    }
    let circuit = bench::parse(&text).expect("wide circuit is valid");
    assert_eq!(circuit.num_nodes(), 2 * WIDTH + 1);
    let _ = LineGraph::build(&circuit);
}

/// A fanin chain that re-reads every earlier net (quadratic reference
/// structure) stays well within the arity checks.
#[test]
fn accumulating_fanin_chain_is_handled() {
    const DEPTH: usize = 12;
    let mut text = String::from("INPUT(x0)\n");
    for i in 1..=DEPTH {
        let args: Vec<String> = (0..i).map(|j| format!("x{j}")).collect();
        text.push_str(&format!("x{i} = NAND({})\n", args.join(", ")));
    }
    text.push_str(&format!("OUTPUT(x{DEPTH})\n"));
    match bench::parse(&text) {
        Ok(circuit) => {
            let _ = LineGraph::build(&circuit);
        }
        Err(e) => {
            // An arity limit is acceptable; a panic is not.
            let _ = e.to_string();
        }
    }
}

/// The serializer's output for every seed is a fixed point of
/// parse ∘ to_text (mutation testing relies on the seeds being valid).
#[test]
fn seeds_round_trip() {
    for (i, seed) in SEEDS.iter().enumerate() {
        let c: Circuit = bench::parse(seed).unwrap_or_else(|e| panic!("seed {i}: {e}"));
        let again = bench::parse(&bench::to_text(&c)).expect("serialized seed parses");
        assert_eq!(again.content_hash(), c.content_hash(), "seed {i}");
    }
}
