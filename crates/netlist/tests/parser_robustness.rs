//! Fuzz-style robustness tests: the `.bench` parser must never panic, and
//! whatever it accepts must re-serialize and re-parse to the same circuit.

use fires_netlist::bench;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    /// Arbitrary text never panics the parser.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC*") {
        let _ = bench::parse(&text);
    }

    /// Structured-ish garbage (keywords, parens, identifiers) never panics
    /// and, when accepted, round-trips.
    #[test]
    fn keyword_soup_is_handled(
        lines in proptest::collection::vec(
            prop_oneof![
                "INPUT\\([a-z]{1,3}\\)",
                "OUTPUT\\([a-z]{1,3}\\)",
                "[a-z]{1,3} = (AND|OR|NAND|NOR|XOR|XNOR|NOT|BUFF|DFF)\\([a-z]{1,3}(, [a-z]{1,3})?\\)",
                "# [a-z ]{0,10}",
                "",
            ],
            0..12,
        )
    ) {
        let text = lines.join("\n");
        if let Ok(circuit) = bench::parse(&text) {
            let round = bench::parse(&bench::to_text(&circuit)).expect("own output parses");
            prop_assert_eq!(round.num_nodes(), circuit.num_nodes());
            prop_assert_eq!(round.num_outputs(), circuit.num_outputs());
        }
    }
}

#[test]
fn pathological_inputs_error_cleanly() {
    for bad in [
        "INPUT()",
        "INPUT(a",
        "OUTPUT(a, b)",
        "= AND(a)",
        "x = ",
        "x = AND",
        "x = AND(",
        "x = AND)",
        "x = AND()\nOUTPUT(x)",
        "INPUT(a)\nOUTPUT(a)\na = NOT(a)",
        "\u{0}\u{1}\u{2}",
    ] {
        assert!(bench::parse(bad).is_err(), "accepted: {bad:?}");
    }
}
