//! The single stuck-at fault universe and classical equivalence collapsing.

use std::fmt;

use crate::{Circuit, GateKind, LineGraph, LineId, LineKind, NodeId};

/// The stuck value of a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StuckValue {
    /// Stuck-at-0.
    Zero,
    /// Stuck-at-1.
    One,
}

impl StuckValue {
    /// Boolean value of the stuck line.
    pub fn as_bool(self) -> bool {
        self == StuckValue::One
    }

    /// The opposite stuck value.
    pub fn complement(self) -> StuckValue {
        match self {
            StuckValue::Zero => StuckValue::One,
            StuckValue::One => StuckValue::Zero,
        }
    }

    /// Constructs from a boolean.
    pub fn from_bool(v: bool) -> StuckValue {
        if v {
            StuckValue::One
        } else {
            StuckValue::Zero
        }
    }
}

impl fmt::Display for StuckValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckValue::Zero => f.write_str("s-a-0"),
            StuckValue::One => f.write_str("s-a-1"),
        }
    }
}

/// A single stuck-at fault on one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// The faulty line.
    pub line: LineId,
    /// The stuck value.
    pub stuck: StuckValue,
}

impl Fault {
    /// Creates a fault.
    pub fn new(line: LineId, stuck: StuckValue) -> Self {
        Fault { line, stuck }
    }

    /// Shorthand for a stuck-at-0 fault.
    pub fn sa0(line: LineId) -> Self {
        Fault::new(line, StuckValue::Zero)
    }

    /// Shorthand for a stuck-at-1 fault.
    pub fn sa1(line: LineId) -> Self {
        Fault::new(line, StuckValue::One)
    }

    /// Human-readable name, e.g. `G10 s-a-1` or `G10->G17.0 s-a-0`.
    pub fn display(&self, lines: &LineGraph, circuit: &Circuit) -> String {
        format!("{} {}", lines.display_name(self.line, circuit), self.stuck)
    }
}

/// An ordered, duplicate-free list of faults.
///
/// # Example
///
/// ```
/// use fires_netlist::{bench, FaultList, LineGraph};
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let lg = LineGraph::build(&c);
/// let all = FaultList::full(&lg);
/// assert_eq!(all.len(), 2 * lg.num_lines());
/// let collapsed = FaultList::collapsed(&c, &lg);
/// assert!(collapsed.len() < all.len());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// The complete (uncollapsed) universe: both stuck values on every line.
    pub fn full(lines: &LineGraph) -> Self {
        let mut faults = Vec::with_capacity(lines.num_lines() * 2);
        for l in lines.line_ids() {
            faults.push(Fault::sa0(l));
            faults.push(Fault::sa1(l));
        }
        FaultList { faults }
    }

    /// Structure-collapsed universe: one representative per classical
    /// equivalence class.
    ///
    /// Rules (standard, e.g. Abramovici/Breuer/Friedman §4):
    /// * buffer/inverter input faults are equivalent to the corresponding
    ///   (possibly inverted) output faults;
    /// * an AND/NAND input stuck at the controlling value 0 is equivalent to
    ///   the output stuck at 0/1 respectively; dually for OR/NOR with 1;
    /// * a non-branching stem is equivalent to the gate pin it feeds.
    ///
    /// Collapsing never crosses a flip-flop: `D` s-a-v and `Q` s-a-v differ
    /// at power-up, which matters precisely for the sequential-redundancy
    /// definitions this project studies.
    pub fn collapsed(circuit: &Circuit, lines: &LineGraph) -> Self {
        let n = lines.num_lines();
        let mut uf = UnionFind::new(n * 2);
        let key = |f: Fault| f.line.index() * 2 + usize::from(f.stuck.as_bool());

        for node in circuit.node_ids() {
            let kind = circuit.node(node).kind();
            let out = lines.stem_of(node);
            let ins = lines.in_lines(node);
            match kind {
                GateKind::Buf => {
                    uf.union(key(Fault::sa0(ins[0])), key(Fault::sa0(out)));
                    uf.union(key(Fault::sa1(ins[0])), key(Fault::sa1(out)));
                }
                GateKind::Not => {
                    uf.union(key(Fault::sa0(ins[0])), key(Fault::sa1(out)));
                    uf.union(key(Fault::sa1(ins[0])), key(Fault::sa0(out)));
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    // Every AND/NAND/OR/NOR gate has a controlling value by
                    // definition; skipping (rather than panicking) merely
                    // loses a collapse opportunity if that ever broke.
                    let Some(c) = kind.controlling_value() else {
                        continue;
                    };
                    let out_val = c ^ kind.is_inverting();
                    for &i in ins {
                        uf.union(
                            key(Fault::new(i, StuckValue::from_bool(c))),
                            key(Fault::new(out, StuckValue::from_bool(out_val))),
                        );
                    }
                }
                _ => {}
            }
        }
        // Non-branching stems are the same line as the pin they feed, so no
        // extra unions are needed (the line graph already shares the id).

        let mut faults = Vec::new();
        let mut seen = vec![false; n * 2];
        for f in FaultList::full(lines).iter() {
            let root = uf.find(key(f));
            if !seen[root] {
                seen[root] = true;
                faults.push(f);
            }
        }
        FaultList { faults }
    }

    /// Builds a list from arbitrary faults, dropping duplicates.
    pub fn from_faults<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        let mut faults: Vec<Fault> = iter.into_iter().collect();
        faults.sort_unstable();
        faults.dedup();
        FaultList { faults }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> impl Iterator<Item = Fault> + '_ {
        self.faults.iter().copied()
    }

    /// The faults as a slice.
    pub fn as_slice(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the list contains `fault`.
    pub fn contains(&self, fault: Fault) -> bool {
        self.faults.binary_search(&fault).is_ok()
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        FaultList::from_faults(iter)
    }
}

impl Extend<Fault> for FaultList {
    fn extend<I: IntoIterator<Item = Fault>>(&mut self, iter: I) {
        self.faults.extend(iter);
        self.faults.sort_unstable();
        self.faults.dedup();
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = Fault;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Fault>>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter().copied()
    }
}

/// Returns the node whose output net hosts the fault (branch faults map to
/// the branch's driving node).
pub fn fault_site_node(lines: &LineGraph, fault: Fault) -> NodeId {
    match lines.line(fault.line).kind() {
        LineKind::Stem { node } | LineKind::Branch { node, .. } => node,
    }
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Prefer the smaller id as representative for determinism.
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[drop] = keep;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn full_universe_size() {
        let c = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n").unwrap();
        let lg = LineGraph::build(&c);
        assert_eq!(FaultList::full(&lg).len(), 2 * lg.num_lines());
    }

    #[test]
    fn collapsing_merges_and_gate_inputs() {
        // z = AND(a,b): a s-a-0, b s-a-0, z s-a-0 collapse into one class,
        // leaving 6 - 2 = 4 representatives.
        let c = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n").unwrap();
        let lg = LineGraph::build(&c);
        let collapsed = FaultList::collapsed(&c, &lg);
        assert_eq!(collapsed.len(), 4);
    }

    #[test]
    fn collapsing_inverter_chain() {
        // a -> NOT -> NOT -> z: all faults collapse onto the two `a` faults.
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nm = NOT(a)\nz = NOT(m)\n").unwrap();
        let lg = LineGraph::build(&c);
        let collapsed = FaultList::collapsed(&c, &lg);
        assert_eq!(collapsed.len(), 2);
    }

    #[test]
    fn collapsing_does_not_cross_dff() {
        let c = bench::parse("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let collapsed = FaultList::collapsed(&c, &lg);
        // a and q each keep both faults.
        assert_eq!(collapsed.len(), 4);
    }

    #[test]
    fn list_operations() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let a = lg.stem_of(c.find("a").unwrap());
        let list = FaultList::from_faults([Fault::sa0(a), Fault::sa0(a), Fault::sa1(a)]);
        assert_eq!(list.len(), 2);
        assert!(list.contains(Fault::sa0(a)));
        let names: Vec<String> = list.iter().map(|f| f.display(&lg, &c)).collect();
        assert_eq!(names, vec!["a s-a-0", "a s-a-1"]);
    }

    #[test]
    fn fault_site_of_branch() {
        let c = bench::parse("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = BUFF(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let a = c.find("a").unwrap();
        let stem = lg.stem_of(a);
        let branch = lg.line(stem).branches()[0];
        assert_eq!(fault_site_node(&lg, Fault::sa1(branch)), a);
    }
}
