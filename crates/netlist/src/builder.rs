//! Programmatic circuit construction.

use std::collections::HashMap;

use crate::circuit::Node;
use crate::{Circuit, GateKind, NetlistError, NodeId};

/// Incremental builder for [`Circuit`]s.
///
/// Supports forward references through [`placeholder`](Self::placeholder) /
/// [`define`](Self::define), which circuit generators with feedback loops
/// need (a counter's FF reads logic that reads the FF).
///
/// # Example
///
/// ```
/// use fires_netlist::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new();
/// let en = b.input("en");
/// let q = b.placeholder("q");          // forward reference
/// let t = b.gate("t", GateKind::Xor, &[en, q]);
/// b.define(q, GateKind::Dff, &[t]);    // close the loop through a FF
/// b.output(q);
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_dffs(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct CircuitBuilder {
    nodes: Vec<Option<Node>>,
    names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    errors: Vec<NetlistError>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh(&mut self, name: &str, node: Option<Node>) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        if self.by_name.insert(name.to_owned(), id).is_some() {
            self.errors.push(NetlistError::DuplicateDriver {
                name: name.to_owned(),
            });
        }
        self.nodes.push(node);
        self.names.push(name.to_owned());
        id
    }

    /// Declares a primary input and returns its net.
    pub fn input(&mut self, name: &str) -> NodeId {
        let id = self.fresh(
            name,
            Some(Node {
                kind: GateKind::Input,
                fanin: Vec::new(),
            }),
        );
        self.inputs.push(id);
        id
    }

    /// Declares a named net whose driver will be supplied later via
    /// [`define`](Self::define). Building without defining it reports an
    /// [`NetlistError::UndefinedSignal`].
    pub fn placeholder(&mut self, name: &str) -> NodeId {
        self.fresh(name, None)
    }

    /// Adds a gate (or flip-flop, or constant) driving a new net `name`.
    pub fn gate(&mut self, name: &str, kind: GateKind, fanin: &[NodeId]) -> NodeId {
        self.fresh(
            name,
            Some(Node {
                kind,
                fanin: fanin.to_vec(),
            }),
        )
    }

    /// Supplies the driver for a previously created placeholder.
    ///
    /// Misuse — an `id` not created by this builder, or one that already has
    /// a driver — is deferred and reported by [`build`](Self::build) as
    /// [`NetlistError::UnknownNode`] / [`NetlistError::DuplicateDriver`],
    /// matching how the builder reports duplicate names.
    pub fn define(&mut self, id: NodeId, kind: GateKind, fanin: &[NodeId]) {
        let Some(slot) = self.nodes.get_mut(id.index()) else {
            self.errors
                .push(NetlistError::UnknownNode { index: id.index() });
            return;
        };
        if slot.is_some() {
            self.errors.push(NetlistError::DuplicateDriver {
                name: self.names[id.index()].clone(),
            });
            return;
        }
        *slot = Some(Node {
            kind,
            fanin: fanin.to_vec(),
        });
    }

    /// Marks a net as a primary output.
    pub fn output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }

    /// Looks up a net created earlier by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Finalizes the circuit.
    ///
    /// # Errors
    ///
    /// Returns the first construction error: duplicate drivers, undefined
    /// placeholders, bad arities, missing outputs or combinational cycles.
    pub fn build(self) -> Result<Circuit, NetlistError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (i, slot) in self.nodes.into_iter().enumerate() {
            match slot {
                Some(node) => nodes.push(node),
                None => {
                    return Err(NetlistError::UndefinedSignal {
                        name: self.names[i].clone(),
                    })
                }
            }
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        Circuit::from_parts(nodes, self.names, self.inputs, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefined_placeholder_is_reported() {
        let mut b = CircuitBuilder::new();
        let p = b.placeholder("ghost");
        b.output(p);
        match b.build() {
            Err(NetlistError::UndefinedSignal { name }) => assert_eq!(name, "ghost"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_name_is_reported() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let _dup = b.input("a");
        b.output(a);
        assert!(matches!(
            b.build(),
            Err(NetlistError::DuplicateDriver { .. })
        ));
    }

    #[test]
    fn no_outputs_is_reported() {
        let mut b = CircuitBuilder::new();
        b.input("a");
        assert!(matches!(b.build(), Err(NetlistError::NoOutputs)));
    }

    #[test]
    fn define_misuse_is_deferred_to_build() {
        // Redefining an already-driven node.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        b.define(a, GateKind::Not, &[a]);
        b.output(a);
        assert!(matches!(
            b.build(),
            Err(NetlistError::DuplicateDriver { name }) if name == "a"
        ));
        // Defining a node id the builder never created.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        b.define(NodeId::new(99), GateKind::Not, &[a]);
        b.output(a);
        assert!(matches!(
            b.build(),
            Err(NetlistError::UnknownNode { index: 99 })
        ));
    }

    #[test]
    fn find_by_name() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        assert_eq!(b.find("a"), Some(a));
        assert_eq!(b.find("z"), None);
    }
}
