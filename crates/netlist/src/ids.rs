//! Typed index newtypes shared across the workspace.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                match u32::try_from(index) {
                    Ok(raw) => Self(raw),
                    Err(_) => panic!("id index {index} overflows u32"),
                }
            }

            /// Returns the raw index, suitable for indexing a `Vec`.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifies a node of a [`Circuit`](crate::Circuit).
    ///
    /// Every node (primary input, gate or flip-flop) drives exactly one net,
    /// so `NodeId` doubles as the identifier of that net.
    NodeId,
    "n"
);

id_type!(
    /// Identifies a line of a [`LineGraph`](crate::LineGraph): a fanout stem
    /// or a fanout branch. Stuck-at faults and FIRE/FIRES indicators are
    /// attached to lines.
    LineId,
    "l"
);

id_type!(
    /// Identifies a fault within a [`FaultList`](crate::FaultList).
    FaultId,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_order() {
        let a = NodeId::new(3);
        let b = NodeId::new(7);
        assert_eq!(a.index(), 3);
        assert!(a < b);
        assert_eq!(usize::from(b), 7);
    }

    #[test]
    fn debug_is_tagged() {
        assert_eq!(format!("{:?}", LineId::new(4)), "l4");
        assert_eq!(format!("{}", FaultId::new(0)), "f0");
        assert_eq!(format!("{}", NodeId::new(9)), "n9");
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
