//! Gate kinds of the ISCAS89 cell library plus constants produced by
//! redundancy removal.

use std::fmt;

/// The function computed by a [`Node`](crate::Node).
///
/// The set matches the ISCAS89 `.bench` cell library (`INPUT`, `DFF`, `AND`,
/// `NAND`, `OR`, `NOR`, `XOR`, `XNOR`, `NOT`, `BUFF`) extended with constant
/// drivers, which appear when a redundant line is tied off during redundancy
/// removal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Primary input; no fanin.
    Input,
    /// D flip-flop with a single implicit clock; fanin is the D pin.
    Dff,
    /// Logical AND of all fanins.
    And,
    /// Logical NAND of all fanins.
    Nand,
    /// Logical OR of all fanins.
    Or,
    /// Logical NOR of all fanins.
    Nor,
    /// Logical XOR (odd parity) of all fanins.
    Xor,
    /// Logical XNOR (even parity) of all fanins.
    Xnor,
    /// Logical negation; exactly one fanin.
    Not,
    /// Buffer; exactly one fanin.
    Buf,
    /// Constant 0 driver; no fanin.
    Const0,
    /// Constant 1 driver; no fanin.
    Const1,
}

impl GateKind {
    /// Returns the *controlling value* of the gate, if it has one.
    ///
    /// A value `c` is controlling when one fanin at `c` determines the
    /// output regardless of the other fanins (0 for AND/NAND, 1 for OR/NOR).
    /// XOR-family gates, inverters, buffers, flip-flops and sources have no
    /// controlling value.
    ///
    /// ```
    /// use fires_netlist::GateKind;
    /// assert_eq!(GateKind::Nand.controlling_value(), Some(false));
    /// assert_eq!(GateKind::Nor.controlling_value(), Some(true));
    /// assert_eq!(GateKind::Xor.controlling_value(), None);
    /// ```
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Returns `true` if the gate inverts with respect to its AND/OR/parity
    /// core (NAND, NOR, NOT, XNOR).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// Returns `true` for XOR/XNOR, which have no controlling value and
    /// always propagate fault effects from any single input.
    pub fn is_parity(self) -> bool {
        matches!(self, GateKind::Xor | GateKind::Xnor)
    }

    /// Returns `true` for nodes that originate values (no logic fanin):
    /// primary inputs and constants.
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Returns `true` for combinational logic gates (everything except
    /// sources and flip-flops).
    pub fn is_logic(self) -> bool {
        !self.is_source() && self != GateKind::Dff
    }

    /// Acceptable fanin arity for this kind as an inclusive range, or `None`
    /// if unconstrained above the minimum.
    pub(crate) fn arity(self) -> (usize, Option<usize>) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, Some(0)),
            GateKind::Dff | GateKind::Not | GateKind::Buf => (1, Some(1)),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (1, None),
        }
    }

    /// The canonical `.bench` keyword for this kind.
    ///
    /// Sources and constants have no `.bench` gate syntax; `Input` is
    /// declared via `INPUT(...)` and constants are emitted as degenerate
    /// single-input gates by the writer.
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Dff => "DFF",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        }
    }

    /// Parses a `.bench` gate keyword (case-insensitive; accepts the common
    /// `BUF`/`BUFF` and `NOT`/`INV` spellings).
    pub fn from_bench_keyword(word: &str) -> Option<GateKind> {
        let upper = word.to_ascii_uppercase();
        Some(match upper.as_str() {
            "DFF" => GateKind::Dff,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "NOT" | "INV" => GateKind::Not,
            "BUF" | "BUFF" => GateKind::Buf,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        for k in [
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
            GateKind::Dff,
            GateKind::Input,
        ] {
            assert_eq!(k.controlling_value(), None, "{k}");
        }
    }

    #[test]
    fn inversion_flags() {
        assert!(GateKind::Nand.is_inverting());
        assert!(GateKind::Nor.is_inverting());
        assert!(GateKind::Not.is_inverting());
        assert!(GateKind::Xnor.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(!GateKind::Buf.is_inverting());
    }

    #[test]
    fn keyword_roundtrip() {
        for k in [
            GateKind::Dff,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ] {
            assert_eq!(GateKind::from_bench_keyword(k.bench_keyword()), Some(k));
        }
        assert_eq!(GateKind::from_bench_keyword("buf"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_bench_keyword("Inv"), Some(GateKind::Not));
        assert_eq!(GateKind::from_bench_keyword("MUX"), None);
    }

    #[test]
    fn classification() {
        assert!(GateKind::Input.is_source());
        assert!(GateKind::Const1.is_source());
        assert!(!GateKind::Dff.is_source());
        assert!(GateKind::Nand.is_logic());
        assert!(!GateKind::Dff.is_logic());
        assert!(GateKind::Xor.is_parity());
        assert!(!GateKind::Nor.is_parity());
    }
}
