//! Error type shared by netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing or validating a circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal name was defined (driven) more than once.
    DuplicateDriver {
        /// The offending signal name.
        name: String,
    },
    /// A signal was referenced but never driven or declared as input.
    UndefinedSignal {
        /// The undefined signal name.
        name: String,
    },
    /// A gate was given an unsupported number of fanins.
    BadArity {
        /// The offending signal name.
        name: String,
        /// The gate kind.
        kind: crate::GateKind,
        /// Number of fanins supplied.
        got: usize,
    },
    /// The combinational core contains a cycle (a loop not broken by a
    /// flip-flop), which the synchronous model forbids.
    CombinationalCycle {
        /// Name of a node on the cycle.
        name: String,
    },
    /// A `.bench` line could not be parsed.
    Syntax {
        /// 1-based line number in the input text.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The circuit has no primary outputs, making every fault trivially
    /// undetectable; analyses require at least one.
    NoOutputs,
    /// A node id was used with a builder that never created it (e.g.
    /// [`CircuitBuilder::define`](crate::CircuitBuilder::define) with an id
    /// from a different builder).
    UnknownNode {
        /// The out-of-range node index.
        index: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateDriver { name } => {
                write!(f, "signal `{name}` is driven more than once")
            }
            NetlistError::UndefinedSignal { name } => {
                write!(f, "signal `{name}` is referenced but never defined")
            }
            NetlistError::BadArity { name, kind, got } => {
                write!(f, "gate `{name}` of kind {kind} cannot take {got} fanins")
            }
            NetlistError::CombinationalCycle { name } => {
                write!(f, "combinational cycle through node `{name}`")
            }
            NetlistError::Syntax { line, message } => {
                write!(f, "bench syntax error at line {line}: {message}")
            }
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::UnknownNode { index } => {
                write!(f, "node id {index} was not created by this builder")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetlistError::DuplicateDriver { name: "g1".into() };
        assert_eq!(e.to_string(), "signal `g1` is driven more than once");
        let e = NetlistError::Syntax {
            line: 3,
            message: "missing `)`".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }
}
