//! The immutable circuit representation.

use std::collections::HashMap;
use std::fmt;

use crate::{GateKind, NetlistError, NodeId};

/// A node of the circuit: a primary input, a logic gate, a flip-flop or a
/// constant. Every node drives exactly one net carrying the node's name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    pub(crate) kind: GateKind,
    pub(crate) fanin: Vec<NodeId>,
}

impl Node {
    /// The function computed by this node.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The nets feeding this node, in pin order. Empty for sources; the
    /// single D pin for flip-flops.
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }
}

/// An immutable gate-level synchronous sequential circuit.
///
/// All flip-flops share one implicit clock (the paper's model). Construct a
/// circuit through [`CircuitBuilder`](crate::CircuitBuilder) or
/// [`bench::parse`](crate::bench::parse); construction validates arities,
/// drivers and the absence of combinational cycles.
///
/// # Example
///
/// ```
/// use fires_netlist::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let mut b = CircuitBuilder::new();
/// let a = b.input("a");
/// let q = b.gate("q", GateKind::Dff, &[a]);
/// let z = b.gate("z", GateKind::Xor, &[a, q]);
/// b.output(z);
/// let c = b.build()?;
/// assert_eq!(c.num_nodes(), 3);
/// assert_eq!(c.name(z), "z");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Circuit {
    pub(crate) nodes: Vec<Node>,
    pub(crate) names: Vec<String>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) dffs: Vec<NodeId>,
    /// For each node, the gate-input pins it feeds: `(sink node, pin index)`.
    pub(crate) fanouts: Vec<Vec<(NodeId, usize)>>,
    /// Whether each node's net is observed as a primary output.
    pub(crate) is_output: Vec<bool>,
    /// Topological order of the combinational core: sources and FF outputs
    /// first, then logic gates in dependency order (FF D-pins are cut).
    pub(crate) topo: Vec<NodeId>,
}

impl Circuit {
    /// Builds (and validates) a circuit from already-checked parts.
    /// Used by the builder and the parser.
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        names: Vec<String>,
        inputs: Vec<NodeId>,
        outputs: Vec<NodeId>,
    ) -> Result<Self, NetlistError> {
        let n = nodes.len();
        let mut fanouts: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
        let mut dffs = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            let id = NodeId::new(i);
            if node.kind == GateKind::Dff {
                dffs.push(id);
            }
            let (lo, hi) = node.kind.arity();
            let got = node.fanin.len();
            if got < lo || hi.is_some_and(|h| got > h) {
                return Err(NetlistError::BadArity {
                    name: names[i].clone(),
                    kind: node.kind,
                    got,
                });
            }
            for (pin, &src) in node.fanin.iter().enumerate() {
                fanouts[src.index()].push((id, pin));
            }
        }
        let mut is_output = vec![false; n];
        for &o in &outputs {
            is_output[o.index()] = true;
        }
        let topo = topo_order(&nodes, &names)?;
        Ok(Circuit {
            nodes,
            names,
            inputs,
            outputs,
            dffs,
            fanouts,
            is_output,
            topo,
        })
    }

    /// Number of nodes (inputs + gates + flip-flops + constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of D flip-flops.
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational logic gates (excludes sources and FFs).
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_logic()).count()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The net name of the given node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Looks a node up by net name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId::new)
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flops, in definition order. The FF *output* is the node's net;
    /// its D pin is `node(ff).fanin()[0]`.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// The gate-input pins fed by `id`'s net, as `(sink node, pin index)`.
    pub fn fanouts(&self, id: NodeId) -> &[(NodeId, usize)] {
        &self.fanouts[id.index()]
    }

    /// Whether `id`'s net is observed as a primary output.
    pub fn is_output(&self, id: NodeId) -> bool {
        self.is_output[id.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Topological order of the circuit with flip-flop D-pins cut: sources
    /// and FF outputs precede the logic that reads them. Simulators and the
    /// implication engine evaluate gates in this order.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// A stable 64-bit structural hash of the circuit.
    ///
    /// Covers node names, kinds, fanin wiring (in pin order) and the primary
    /// output list — everything that determines the fault universe and the
    /// line decomposition. Two circuits hash equal iff they are structurally
    /// identical, so checkpoint/journal consumers can use the hash to detect
    /// that a resumed campaign is running against a different circuit than
    /// the one that wrote the checkpoint. The hash is FNV-1a over a canonical
    /// byte encoding and is stable across processes, platforms and releases
    /// (it depends only on circuit content, never on memory layout or
    /// collection iteration order).
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn eat(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
                }
            }
            fn eat_usize(&mut self, v: usize) {
                self.eat(&(v as u64).to_le_bytes());
            }
        }
        let mut h = Fnv(FNV_OFFSET);
        h.eat_usize(self.nodes.len());
        for (node, name) in self.nodes.iter().zip(&self.names) {
            h.eat_usize(name.len());
            h.eat(name.as_bytes());
            h.eat(node.kind.bench_keyword().as_bytes());
            h.eat_usize(node.fanin.len());
            for &src in &node.fanin {
                h.eat_usize(src.index());
            }
        }
        h.eat_usize(self.outputs.len());
        for &o in &self.outputs {
            h.eat_usize(o.index());
        }
        h.0
    }

    /// Summary statistics, handy for reports.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            nodes: self.num_nodes(),
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            dffs: self.num_dffs(),
            gates: self.num_gates(),
        }
    }
}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Circuit({} nodes, {} PI, {} PO, {} FF)",
            self.num_nodes(),
            self.num_inputs(),
            self.num_outputs(),
            self.num_dffs()
        )
    }
}

/// Size summary of a [`Circuit`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total node count.
    pub nodes: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Combinational gates.
    pub gates: usize,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PIs, {} POs, {} FFs, {} gates",
            self.inputs, self.outputs, self.dffs, self.gates
        )
    }
}

/// Kahn topological sort of the combinational core; FF D-pins are sequential
/// edges and do not count as dependencies.
fn topo_order(nodes: &[Node], names: &[String]) -> Result<Vec<NodeId>, NetlistError> {
    let n = nodes.len();
    let mut indegree = vec![0usize; n];
    let mut out_edges: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        if node.kind == GateKind::Dff || node.kind.is_source() {
            continue; // FF outputs and sources have no combinational deps.
        }
        indegree[i] = node.fanin.len();
        for &src in &node.fanin {
            out_edges.entry(src.index()).or_default().push(i);
        }
    }
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    while let Some(i) = queue.pop() {
        order.push(NodeId::new(i));
        if let Some(sinks) = out_edges.get(&i) {
            for &s in sinks {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
    }
    if order.len() != n {
        // An incomplete Kahn order implies at least one node with a positive
        // residual indegree; the fallback index keeps this panic-free.
        let culprit = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
        return Err(NetlistError::CombinationalCycle {
            name: names[culprit].clone(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use crate::{CircuitBuilder, GateKind, NetlistError};

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        // x = AND(a, y); y = NOT(x): a loop with no flip-flop.
        let x = b.placeholder("x");
        let y = b.gate("y", GateKind::Not, &[x]);
        b.define(x, GateKind::And, &[a, y]);
        b.output(y);
        match b.build() {
            Err(NetlistError::CombinationalCycle { .. }) => {}
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn ff_breaks_cycle() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let q = b.placeholder("q");
        let x = b.gate("x", GateKind::Xor, &[a, q]);
        b.define(q, GateKind::Dff, &[x]);
        b.output(x);
        let c = b.build().expect("FF-broken loop is legal");
        assert_eq!(c.num_dffs(), 1);
        // Topological order puts q (an FF output) before x.
        let topo = c.topo_order();
        let pos = |id| topo.iter().position(|&t| t == id).unwrap();
        assert!(pos(q) < pos(x));
    }

    #[test]
    fn stats_and_lookup() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let g = b.gate("g", GateKind::Nand, &[a, bb]);
        b.output(g);
        let c = b.build().unwrap();
        let s = c.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.gates, 1);
        assert_eq!(c.find("g"), Some(g));
        assert_eq!(c.find("nope"), None);
        assert!(c.is_output(g));
        assert!(!c.is_output(a));
        assert_eq!(c.fanouts(a), &[(g, 0)]);
        assert_eq!(s.to_string(), "2 PIs, 1 POs, 0 FFs, 1 gates");
    }

    #[test]
    fn content_hash_tracks_structure() {
        let build = |kind| {
            let mut b = CircuitBuilder::new();
            let a = b.input("a");
            let bb = b.input("b");
            let g = b.gate("g", kind, &[a, bb]);
            b.output(g);
            b.build().unwrap()
        };
        let c1 = build(GateKind::Nand);
        let c2 = build(GateKind::Nand);
        let c3 = build(GateKind::Nor);
        // Equal structure -> equal hash; different gate kind -> different hash.
        assert_eq!(c1.content_hash(), c2.content_hash());
        assert_ne!(c1.content_hash(), c3.content_hash());
        // A renamed net changes the hash too (names feed fault reports).
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let g = b.gate("h", GateKind::Nand, &[a, bb]);
        b.output(g);
        assert_ne!(c1.content_hash(), b.build().unwrap().content_hash());
    }

    #[test]
    fn bad_arity_is_rejected() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let g = b.gate("g", GateKind::Not, &[a, bb]);
        b.output(g);
        match b.build() {
            Err(NetlistError::BadArity { got: 2, .. }) => {}
            other => panic!("expected arity error, got {other:?}"),
        }
    }
}
