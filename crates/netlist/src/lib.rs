//! Gate-level synchronous sequential netlist model for the FIRES
//! reproduction.
//!
//! This crate provides every structural substrate the FIRES algorithm
//! (Iyer, Long, Abramovici, *Identifying Sequential Redundancies Without
//! Search*, DAC 1996) operates on:
//!
//! * a compact circuit representation ([`Circuit`]) of primary inputs,
//!   primary outputs, logic gates and D flip-flops driven by a single
//!   implicit clock (the paper's circuit model, Section 1);
//! * an ISCAS89 `.bench` reader/writer ([`mod@bench`]);
//! * the *line* model ([`LineGraph`]) that distinguishes fanout **stems**
//!   from fanout **branches** — FIRE/FIRES indicators and stuck-at faults
//!   live on lines, not nets (paper Section 2);
//! * structural analysis ([`graph`]): topological order of the
//!   combinational core, logic levels, fanin/fanout cones and the
//!   minimum-flip-flop distance used by the sequential unobservability
//!   side condition (paper Section 5.1);
//! * the single stuck-at fault universe with classical equivalence
//!   collapsing ([`faults`]).
//!
//! # Example
//!
//! ```
//! use fires_netlist::{bench, LineGraph};
//!
//! # fn main() -> Result<(), fires_netlist::NetlistError> {
//! let src = "\
//! INPUT(a)
//! OUTPUT(z)
//! b = DFF(a)
//! z = AND(a, b)
//! ";
//! let circuit = bench::parse(src)?;
//! assert_eq!(circuit.num_dffs(), 1);
//! let lines = LineGraph::build(&circuit);
//! // `a` fans out to the DFF and the AND gate: one stem, two branches.
//! assert_eq!(lines.num_lines(), 2 + 1 + 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hostile `.bench` input must surface as `NetlistError`, never a panic;
// tests may still unwrap for brevity.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bench;
mod builder;
mod circuit;
pub mod dot;
mod error;
pub mod faults;
pub mod graph;
mod ids;
mod kind;
mod lines;
pub mod transform;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, CircuitStats, Node};
pub use error::NetlistError;
pub use faults::{Fault, FaultList, StuckValue};
pub use ids::{FaultId, LineId, NodeId};
pub use kind::GateKind;
pub use lines::{Line, LineGraph, LineKind};
