//! Structural analysis: logic levels, cones, sequential depth and the
//! minimum-flip-flop distance used by FIRES' sequential unobservability
//! side condition (paper Section 5.1).

use std::collections::VecDeque;

use crate::{Circuit, GateKind, LineGraph, LineId, NodeId};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Logic level of every node: sources and FF outputs are level 0, a gate is
/// one more than its deepest fanin (FF D-pins are cut).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = fires_netlist::bench::parse("INPUT(a)\nOUTPUT(z)\nm = NOT(a)\nz = NOT(m)\n")?;
/// let lv = fires_netlist::graph::levels(&c);
/// assert_eq!(lv[c.find("z").unwrap().index()], 2);
/// # Ok(())
/// # }
/// ```
pub fn levels(circuit: &Circuit) -> Vec<u32> {
    let mut level = vec![0u32; circuit.num_nodes()];
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        if node.kind().is_source() || node.kind() == GateKind::Dff {
            continue;
        }
        level[id.index()] = node
            .fanin()
            .iter()
            .map(|f| level[f.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    level
}

/// The transitive fanout cone of `from` over the *node* graph, crossing
/// flip-flops freely. `result[n]` is true if a structural path (of any
/// sequential depth) exists from `from`'s output to node `n`'s output.
pub fn fanout_cone(circuit: &Circuit, from: NodeId) -> Vec<bool> {
    let mut seen = vec![false; circuit.num_nodes()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(n) = stack.pop() {
        for &(sink, _) in circuit.fanouts(n) {
            if !seen[sink.index()] {
                seen[sink.index()] = true;
                stack.push(sink);
            }
        }
    }
    seen
}

/// The transitive fanin cone of `to`, crossing flip-flops freely.
pub fn fanin_cone(circuit: &Circuit, to: NodeId) -> Vec<bool> {
    let mut seen = vec![false; circuit.num_nodes()];
    let mut stack = vec![to];
    seen[to.index()] = true;
    while let Some(n) = stack.pop() {
        for &src in circuit.node(n).fanin() {
            if !seen[src.index()] {
                seen[src.index()] = true;
                stack.push(src);
            }
        }
    }
    seen
}

/// Minimum number of flip-flops on any structural path from line `from` to
/// every other line (0-1 BFS over the line graph; crossing a DFF costs 1).
///
/// FIRES uses this to decide whether a fault effect on `l` at frame `i`
/// could disturb a blocking uncontrollability indicator on `p` at frame
/// `j ≥ i`: it can only if some path from `l` to `p` carries at most
/// `j − i` flip-flops. Entries are [`UNREACHABLE`] when no path exists.
///
/// # Example
///
/// ```
/// use fires_netlist::{bench, graph, LineGraph};
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = NOT(q)\n")?;
/// let lg = LineGraph::build(&c);
/// let d = graph::min_ff_distance(&c, &lg, lg.stem_of(c.find("a").unwrap()));
/// let z = lg.stem_of(c.find("z").unwrap());
/// assert_eq!(d[z.index()], 1); // one FF between a and z
/// # Ok(())
/// # }
/// ```
pub fn min_ff_distance(circuit: &Circuit, lines: &LineGraph, from: LineId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; lines.num_lines()];
    let mut dq: VecDeque<LineId> = VecDeque::new();
    dist[from.index()] = 0;
    dq.push_back(from);
    while let Some(l) = dq.pop_front() {
        let d = dist[l.index()];
        let line = lines.line(l);
        // Stem -> branches, weight 0.
        for &b in line.branches() {
            if dist[b.index()] > d {
                dist[b.index()] = d;
                dq.push_front(b);
            }
        }
        // Through the consuming gate to its output stem.
        if let Some((sink, _)) = line.sink_pin() {
            let w = u32::from(circuit.node(sink).kind() == GateKind::Dff);
            let out = lines.stem_of(sink);
            let nd = d.saturating_add(w);
            if dist[out.index()] > nd {
                dist[out.index()] = nd;
                if w == 0 {
                    dq.push_front(out);
                } else {
                    dq.push_back(out);
                }
            }
        }
    }
    dist
}

/// Minimum number of flip-flops on any structural path from every line *to*
/// line `to` (the reverse of [`min_ff_distance`]).
///
/// FIRES' unobservability side condition asks, for each blocking line `p`,
/// whether the stem being marked can reach `p` within a frame budget; one
/// reverse BFS per blocking line answers that for all stems at once, so the
/// result is cached per blocking line.
pub fn min_ff_distance_rev(circuit: &Circuit, lines: &LineGraph, to: LineId) -> Vec<u32> {
    // Build the predecessor relation on the fly: a line's predecessors are
    // (a) its stem if it is a branch, and (b) the input lines of its driving
    // node if it is a stem (crossing a DFF costs 1).
    let mut dist = vec![UNREACHABLE; lines.num_lines()];
    let mut dq: VecDeque<LineId> = VecDeque::new();
    dist[to.index()] = 0;
    dq.push_back(to);
    while let Some(l) = dq.pop_front() {
        let d = dist[l.index()];
        let line = lines.line(l);
        match line.kind() {
            crate::LineKind::Branch { node, .. } => {
                let stem = lines.stem_of(node);
                if dist[stem.index()] > d {
                    dist[stem.index()] = d;
                    dq.push_front(stem);
                }
            }
            crate::LineKind::Stem { node } => {
                let w = u32::from(circuit.node(node).kind() == GateKind::Dff);
                for &inl in lines.in_lines(node) {
                    let nd = d.saturating_add(w);
                    if dist[inl.index()] > nd {
                        dist[inl.index()] = nd;
                        if w == 0 {
                            dq.push_front(inl);
                        } else {
                            dq.push_back(inl);
                        }
                    }
                }
            }
        }
    }
    dist
}

/// Sequential depth: the length (in flip-flops) of the longest *acyclic*
/// FF-to-FF chain, approximated as the longest path in the FF dependency
/// DAG condensation. Used to pick the per-circuit frame budget `T_M` the
/// way the paper does ("decided depending upon the circuit size").
pub fn sequential_depth(circuit: &Circuit) -> u32 {
    // Build FF -> FF adjacency: FF b depends on FF a if a's output reaches
    // b's D pin combinationally.
    let ffs = circuit.dffs();
    if ffs.is_empty() {
        return 0;
    }
    let idx_of = |n: NodeId| ffs.binary_search(&n).ok();
    // comb_reach[f] = set of FF indices reachable combinationally from FF f.
    let nff = ffs.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nff];
    for (fi, &f) in ffs.iter().enumerate() {
        // BFS forward from f's output, stopping at FF D-pins.
        let mut seen = vec![false; circuit.num_nodes()];
        let mut stack = vec![f];
        seen[f.index()] = true;
        while let Some(n) = stack.pop() {
            for &(sink, _) in circuit.fanouts(n) {
                if circuit.node(sink).kind() == GateKind::Dff {
                    if let Some(ti) = idx_of(sink) {
                        adj[fi].push(ti);
                    }
                    continue;
                }
                if !seen[sink.index()] {
                    seen[sink.index()] = true;
                    stack.push(sink);
                }
            }
        }
        adj[fi].sort_unstable();
        adj[fi].dedup();
    }
    // Longest path over the condensation (SCCs collapse to weight ~ size).
    let scc = tarjan_scc(&adj);
    let ncomp = scc.iter().copied().max().map_or(0, |m| m + 1);
    let mut comp_size = vec![0u32; ncomp];
    for &c in &scc {
        comp_size[c] += 1;
    }
    let mut cadj: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    let mut indeg = vec![0usize; ncomp];
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            let (cu, cv) = (scc[u], scc[v]);
            if cu != cv {
                cadj[cu].push(cv);
            }
        }
    }
    for vs in &mut cadj {
        vs.sort_unstable();
        vs.dedup();
    }
    for vs in &cadj {
        for &v in vs {
            indeg[v] += 1;
        }
    }
    let mut best = comp_size.clone();
    let mut queue: VecDeque<usize> = (0..ncomp).filter(|&c| indeg[c] == 0).collect();
    let mut answer = 0;
    while let Some(c) = queue.pop_front() {
        answer = answer.max(best[c]);
        for &v in &cadj[c] {
            best[v] = best[v].max(best[c] + comp_size[v]);
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    answer
}

/// Tarjan SCC over a small adjacency list; returns the component index of
/// every vertex (components numbered in reverse topological order).
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Iterative Tarjan to avoid recursion depth limits on long FF chains.
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut work = vec![Frame::Enter(root)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut ei) => {
                    let mut descended = false;
                    while ei < adj[v].len() {
                        let w = adj[v][ei];
                        ei += 1;
                        if index[w] == usize::MAX {
                            work.push(Frame::Resume(v, ei));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                    // Propagate low to parent if any.
                    if let Some(Frame::Resume(p, _)) = work.last() {
                        let p = *p;
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn levels_follow_depth() {
        let c = bench::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nm = AND(a, b)\nn = NOT(m)\nz = OR(n, a)\n",
        )
        .unwrap();
        let lv = levels(&c);
        assert_eq!(lv[c.find("a").unwrap().index()], 0);
        assert_eq!(lv[c.find("m").unwrap().index()], 1);
        assert_eq!(lv[c.find("n").unwrap().index()], 2);
        assert_eq!(lv[c.find("z").unwrap().index()], 3);
    }

    #[test]
    fn cones_cross_ffs() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = NOT(q)\n").unwrap();
        let a = c.find("a").unwrap();
        let z = c.find("z").unwrap();
        assert!(fanout_cone(&c, a)[z.index()]);
        assert!(fanin_cone(&c, z)[a.index()]);
        assert!(!fanout_cone(&c, z)[a.index()]);
    }

    #[test]
    fn ff_distance_counts_crossings() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq1 = DFF(a)\nq2 = DFF(q1)\nz = AND(q2, a)\n")
            .unwrap();
        let lg = crate::LineGraph::build(&c);
        let from = lg.stem_of(c.find("a").unwrap());
        let d = min_ff_distance(&c, &lg, from);
        assert_eq!(d[lg.stem_of(c.find("q1").unwrap()).index()], 1);
        assert_eq!(d[lg.stem_of(c.find("q2").unwrap()).index()], 2);
        // Combinational path a -> z wins over the 2-FF path.
        assert_eq!(d[lg.stem_of(c.find("z").unwrap()).index()], 0);
    }

    #[test]
    fn ff_distance_unreachable() {
        let c = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = NOT(b)\n")
            .unwrap();
        let lg = crate::LineGraph::build(&c);
        let d = min_ff_distance(&c, &lg, lg.stem_of(c.find("a").unwrap()));
        assert_eq!(d[lg.stem_of(c.find("z").unwrap()).index()], UNREACHABLE);
    }

    #[test]
    fn reverse_distance_agrees_with_forward() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq1 = DFF(a)\nq2 = DFF(q1)\nz = AND(q2, a)\n")
            .unwrap();
        let lg = crate::LineGraph::build(&c);
        for from in lg.line_ids() {
            let fwd = min_ff_distance(&c, &lg, from);
            for to in lg.line_ids() {
                let rev = min_ff_distance_rev(&c, &lg, to);
                assert_eq!(fwd[to.index()], rev[from.index()], "{from:?}->{to:?}");
            }
        }
    }

    #[test]
    fn sequential_depth_of_chain_and_loop() {
        // Chain of 3 FFs.
        let chain = bench::parse(
            "INPUT(a)\nOUTPUT(z)\nq1 = DFF(a)\nq2 = DFF(q1)\nq3 = DFF(q2)\nz = BUFF(q3)\n",
        )
        .unwrap();
        assert_eq!(sequential_depth(&chain), 3);
        // Self-loop counter bit: a single-FF SCC.
        let loopy = bench::parse("INPUT(en)\nOUTPUT(q)\nq = DFF(t)\nt = XOR(en, q)\n").unwrap();
        assert_eq!(sequential_depth(&loopy), 1);
        // Pure combinational circuit.
        let comb = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        assert_eq!(sequential_depth(&comb), 0);
    }
}
