//! Structural circuit transforms.
//!
//! [`full_scan`] produces the *combinational envelope* of a sequential
//! circuit: every flip-flop output becomes a (pseudo) primary input and
//! every flip-flop data pin becomes a (pseudo) primary output. The same
//! model serves two purposes in the paper:
//!
//! * it is the **full-scan test model** — the paper's introduction notes
//!   that many sequentially redundant faults become detectable under
//!   full-scan testing, causing yield loss when such chips are rejected;
//! * it is the **combinational model of the single-fault theorem**
//!   (Agrawal/Chakradhar, references \[8\]\[9\]): a fault untestable even with
//!   full flip-flop controllability and observability is sequentially
//!   untestable, which is the basis of the FUNTEST algorithm the paper
//!   compares against in Example 3.

use crate::circuit::Node;
use crate::{Circuit, GateKind, NetlistError, NodeId};

/// Replaces every flip-flop with a pseudo primary input (keeping the FF's
/// net name) and observes every flip-flop's data net as a pseudo primary
/// output. The result is purely combinational.
///
/// Net names are preserved, so faults can be correlated across the
/// transform by their display names.
///
/// # Errors
///
/// Propagates [`NetlistError`] if the rewritten netlist fails validation
/// (cannot happen for a valid input circuit; kept for API honesty).
///
/// # Example
///
/// ```
/// use fires_netlist::{bench, transform};
///
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let seq = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = AND(q, a)\n")?;
/// let scan = transform::full_scan(&seq)?;
/// assert_eq!(scan.num_dffs(), 0);
/// assert_eq!(scan.num_inputs(), 2);  // a + pseudo-input q
/// assert_eq!(scan.num_outputs(), 2); // z + pseudo-output observing a (q's D)
/// # Ok(())
/// # }
/// ```
pub fn full_scan(circuit: &Circuit) -> Result<Circuit, NetlistError> {
    let mut nodes: Vec<Node> = Vec::with_capacity(circuit.num_nodes());
    let mut names: Vec<String> = Vec::with_capacity(circuit.num_nodes());
    let mut inputs: Vec<NodeId> = circuit.inputs().to_vec();
    let mut outputs: Vec<NodeId> = circuit.outputs().to_vec();
    for id in circuit.node_ids() {
        let node = circuit.node(id);
        names.push(circuit.name(id).to_owned());
        if node.kind() == GateKind::Dff {
            // Q becomes a controllable pseudo-input...
            nodes.push(Node {
                kind: GateKind::Input,
                fanin: Vec::new(),
            });
            inputs.push(id);
            // ...and the D source becomes observable.
            outputs.push(node.fanin()[0]);
        } else {
            nodes.push(node.clone());
        }
    }
    // A net may drive several scan observations (or already be a PO);
    // duplicate observations add nothing.
    outputs.dedup();
    Circuit::from_parts(nodes, names, inputs, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn scan_model_is_combinational() {
        let c = bench::parse(
            "INPUT(a)\nOUTPUT(z)\nq1 = DFF(t)\nq2 = DFF(q1)\nt = XOR(a, q2)\nz = BUFF(q2)\n",
        )
        .unwrap();
        let scan = full_scan(&c).unwrap();
        assert_eq!(scan.num_dffs(), 0);
        assert_eq!(scan.num_inputs(), 1 + 2);
        // Original z + observations of t and q1 (the two D nets).
        assert_eq!(scan.num_outputs(), 3);
        // The feedback loop is cut: topological order exists (no panic).
        assert_eq!(scan.topo_order().len(), scan.num_nodes());
    }

    #[test]
    fn names_survive_the_transform() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = NOT(q)\n").unwrap();
        let scan = full_scan(&c).unwrap();
        let q = scan.find("q").expect("q still exists");
        assert_eq!(scan.node(q).kind(), GateKind::Input);
        assert!(
            scan.is_output(scan.find("a").unwrap()),
            "a observed as D of q"
        );
    }

    #[test]
    fn already_combinational_circuit_is_unchanged_structurally() {
        let c = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n").unwrap();
        let scan = full_scan(&c).unwrap();
        assert_eq!(scan.num_nodes(), c.num_nodes());
        assert_eq!(scan.num_inputs(), c.num_inputs());
        assert_eq!(scan.num_outputs(), c.num_outputs());
    }

    #[test]
    fn scan_makes_sequential_faults_exposable() {
        use crate::{Fault, LineGraph};
        // Figure 3: the 1-cycle redundant branch fault becomes testable in
        // the scan model (b and c are independently controllable there).
        let c =
            bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
                .unwrap();
        let scan = full_scan(&c).unwrap();
        let lines = LineGraph::build(&scan);
        let c_stem = lines.stem_of(scan.find("c").unwrap());
        let c1 = lines.line(c_stem).branches()[0];
        // In the scan model b=1, c=0 is directly applicable: the fault is
        // combinationally testable (d flips 0 -> 1).
        let vectors = fires_test_helper_all_vectors(scan.num_inputs());
        let mut detected = false;
        for v in vectors {
            let lg = &lines;
            let mut good = crate_sim_eval(&scan, lg, &v, None);
            let mut bad = crate_sim_eval(&scan, lg, &v, Some(Fault::sa1(c1)));
            detected |= good.drain(..).zip(bad.drain(..)).any(|(g, b)| g != b);
        }
        assert!(detected);
    }

    /// Tiny local evaluator (binary) to keep this crate free of a dev
    /// dependency on the simulator crate.
    fn crate_sim_eval(
        c: &Circuit,
        lines: &crate::LineGraph,
        inputs: &[bool],
        fault: Option<crate::Fault>,
    ) -> Vec<bool> {
        let mut value = vec![false; c.num_nodes()];
        for (i, &pi) in c.inputs().iter().enumerate() {
            value[pi.index()] = inputs[i];
        }
        for &id in c.topo_order() {
            let kind = c.node(id).kind();
            let v = match kind {
                GateKind::Input => value[id.index()],
                GateKind::Const0 => false,
                GateKind::Const1 => true,
                _ => {
                    let mut acc = matches!(kind, GateKind::And | GateKind::Nand);
                    for (pin, &src) in c.node(id).fanin().iter().enumerate() {
                        let mut x = value[src.index()];
                        if let Some(f) = fault {
                            if lines.in_line(id, pin) == f.line {
                                x = f.stuck.as_bool();
                            }
                        }
                        acc = match kind {
                            GateKind::And | GateKind::Nand => acc & x,
                            GateKind::Or | GateKind::Nor => acc | x,
                            GateKind::Xor | GateKind::Xnor => acc ^ x,
                            _ => x,
                        };
                    }
                    acc ^ kind.is_inverting()
                }
            };
            value[id.index()] = match fault {
                Some(f) if lines.stem_of(id) == f.line => f.stuck.as_bool(),
                _ => v,
            };
        }
        c.outputs().iter().map(|&o| value[o.index()]).collect()
    }

    fn fires_test_helper_all_vectors(n: usize) -> Vec<Vec<bool>> {
        (0..1usize << n)
            .map(|bits| (0..n).map(|i| bits >> i & 1 == 1).collect())
            .collect()
    }
}
