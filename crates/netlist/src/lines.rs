//! The *line* model: fanout stems and fanout branches.
//!
//! FIRE and FIRES attach uncontrollability/unobservability indicators and
//! stuck-at faults to **lines** (paper Section 2). A net with a single
//! consumer is one line; a net feeding several gate pins becomes a *stem*
//! line plus one *branch* line per pin, because a fault on one branch is a
//! different (and possibly differently testable) fault than a fault on the
//! stem.

use std::fmt;

use crate::{Circuit, LineId, NodeId};

/// Whether a line is a stem (a node's output net) or a fanout branch
/// (the wire into one specific gate pin).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineKind {
    /// The output net of `node`.
    Stem {
        /// Driving node.
        node: NodeId,
    },
    /// The branch of `node`'s net feeding pin `pin` of `sink`.
    Branch {
        /// Driving node (the stem's node).
        node: NodeId,
        /// Consuming node.
        sink: NodeId,
        /// Pin index within `sink`'s fanin.
        pin: usize,
    },
}

/// One line of the circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Line {
    pub(crate) kind: LineKind,
    /// Lines this line feeds (branches for a branching stem; otherwise the
    /// next stem reached through the consuming gate is *not* listed here —
    /// traversal through gates is the analyses' job).
    pub(crate) branches: Vec<LineId>,
    /// The gate pin this line drives, if it drives one directly
    /// (stems with explicit branches drive none directly).
    pub(crate) sink_pin: Option<(NodeId, usize)>,
}

impl Line {
    /// Stem/branch classification.
    pub fn kind(&self) -> LineKind {
        self.kind
    }

    /// The node whose output net this line belongs to.
    pub fn driver(&self) -> NodeId {
        match self.kind {
            LineKind::Stem { node } | LineKind::Branch { node, .. } => node,
        }
    }

    /// For a branching stem, its branch lines; empty otherwise.
    pub fn branches(&self) -> &[LineId] {
        &self.branches
    }

    /// The gate pin this line feeds directly, if any.
    pub fn sink_pin(&self) -> Option<(NodeId, usize)> {
        self.sink_pin
    }

    /// `true` for stem lines.
    pub fn is_stem(&self) -> bool {
        matches!(self.kind, LineKind::Stem { .. })
    }
}

/// The complete line decomposition of a circuit.
///
/// # Example
///
/// ```
/// use fires_netlist::{bench, LineGraph};
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = bench::parse("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = BUFF(a)\n")?;
/// let lg = LineGraph::build(&c);
/// let a = c.find("a").unwrap();
/// // `a` feeds two gates: a stem plus two branches.
/// assert_eq!(lg.line(lg.stem_of(a)).branches().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LineGraph {
    lines: Vec<Line>,
    stem_of: Vec<LineId>,
    /// For each node, the line feeding each of its pins.
    in_lines: Vec<Vec<LineId>>,
}

impl LineGraph {
    /// Decomposes `circuit` into lines.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let mut lines: Vec<Line> = Vec::with_capacity(n * 2);
        let mut stem_of: Vec<LineId> = Vec::with_capacity(n);
        // Stems first so stem_of is a simple prefix.
        for id in circuit.node_ids() {
            stem_of.push(LineId::new(lines.len()));
            lines.push(Line {
                kind: LineKind::Stem { node: id },
                branches: Vec::new(),
                sink_pin: None,
            });
        }
        let mut in_lines: Vec<Vec<LineId>> = (0..n)
            .map(|i| vec![LineId::new(0); circuit.nodes[i].fanin.len()])
            .collect();
        for id in circuit.node_ids() {
            let sinks = circuit.fanouts(id);
            let branching = sinks.len() + usize::from(circuit.is_output(id)) >= 2;
            let stem = stem_of[id.index()];
            if branching {
                for &(sink, pin) in sinks {
                    let b = LineId::new(lines.len());
                    lines.push(Line {
                        kind: LineKind::Branch {
                            node: id,
                            sink,
                            pin,
                        },
                        branches: Vec::new(),
                        sink_pin: Some((sink, pin)),
                    });
                    lines[stem.index()].branches.push(b);
                    in_lines[sink.index()][pin] = b;
                }
            } else if let Some(&(sink, pin)) = sinks.first() {
                lines[stem.index()].sink_pin = Some((sink, pin));
                in_lines[sink.index()][pin] = stem;
            }
        }
        LineGraph {
            lines,
            stem_of,
            in_lines,
        }
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// The line with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn line(&self, id: LineId) -> &Line {
        &self.lines[id.index()]
    }

    /// The stem line of a node's output net.
    pub fn stem_of(&self, node: NodeId) -> LineId {
        self.stem_of[node.index()]
    }

    /// The line feeding pin `pin` of `node` (a branch if the source net
    /// fans out, the source's stem otherwise).
    pub fn in_line(&self, node: NodeId, pin: usize) -> LineId {
        self.in_lines[node.index()][pin]
    }

    /// All lines feeding `node`, in pin order.
    pub fn in_lines(&self, node: NodeId) -> &[LineId] {
        &self.in_lines[node.index()]
    }

    /// Iterates over all line ids.
    pub fn line_ids(&self) -> impl Iterator<Item = LineId> + '_ {
        (0..self.lines.len()).map(LineId::new)
    }

    /// Iterates over the *fanout stems*: stems whose net feeds two or more
    /// consumers (counting a primary-output observation). These are the
    /// stems FIRE/FIRES processes — conflicts can only arise where paths
    /// reconverge from a fanout point.
    ///
    /// **Ordering guarantee:** stems are yielded in ascending node-id order
    /// (circuit definition order), which is deterministic and stable across
    /// processes for a structurally identical circuit. Campaign checkpoints
    /// (`fires-jobs`) persist work units as indices into this sequence, so
    /// this ordering is part of the journal contract and must not change
    /// without bumping the journal schema version.
    pub fn fanout_stems<'a>(&'a self, circuit: &'a Circuit) -> impl Iterator<Item = LineId> + 'a {
        circuit.node_ids().filter_map(move |n| {
            let stem = self.stem_of(n);
            (!self.lines[stem.index()].branches.is_empty()).then_some(stem)
        })
    }

    /// Human-readable name of a line, e.g. `G10` for a stem or `G10->G17.1`
    /// for the branch into pin 1 of `G17`.
    pub fn display_name(&self, id: LineId, circuit: &Circuit) -> String {
        match self.lines[id.index()].kind {
            LineKind::Stem { node } => circuit.name(node).to_owned(),
            LineKind::Branch { node, sink, pin } => {
                format!("{}->{}.{}", circuit.name(node), circuit.name(sink), pin)
            }
        }
    }
}

impl fmt::Display for LineGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineGraph({} lines)", self.lines.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    fn fanout_circuit() -> Circuit {
        bench::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\n\
             s = AND(a, b)\n\
             x = NOT(s)\n\
             y = BUFF(s)\n\
             z = OR(x, y)\n",
        )
        .unwrap()
    }

    #[test]
    fn stems_and_branches() {
        let c = fanout_circuit();
        let lg = LineGraph::build(&c);
        let s = c.find("s").unwrap();
        let stem = lg.stem_of(s);
        assert!(lg.line(stem).is_stem());
        assert_eq!(lg.line(stem).branches().len(), 2);
        // Branch lines point at their sink pins.
        for &b in lg.line(stem).branches() {
            let (sink, _) = lg.line(b).sink_pin().unwrap();
            let name = c.name(sink);
            assert!(name == "x" || name == "y");
            assert_eq!(lg.line(b).driver(), s);
        }
        // Non-fanout nets are single lines.
        let x = c.find("x").unwrap();
        assert!(lg.line(lg.stem_of(x)).branches().is_empty());
        let z = c.find("z").unwrap();
        assert_eq!(lg.in_line(z, 0), lg.stem_of(x));
    }

    #[test]
    fn po_plus_gate_sink_counts_as_fanout() {
        let c = bench::parse("INPUT(a)\nOUTPUT(s)\nOUTPUT(z)\ns = BUFF(a)\nz = NOT(s)\n").unwrap();
        let lg = LineGraph::build(&c);
        let s = c.find("s").unwrap();
        // s is both observed and feeds z: the gate pin gets its own branch.
        assert_eq!(lg.line(lg.stem_of(s)).branches().len(), 1);
    }

    #[test]
    fn fanout_stem_iteration() {
        let c = fanout_circuit();
        let lg = LineGraph::build(&c);
        let stems: Vec<String> = lg
            .fanout_stems(&c)
            .map(|l| lg.display_name(l, &c))
            .collect();
        assert_eq!(stems, vec!["s".to_owned()]);
    }

    #[test]
    fn fanout_stem_order_is_stable_definition_order() {
        // Several fanout stems, deliberately defined in non-alphabetical
        // order: iteration must follow node ids (definition order), and a
        // structurally identical rebuild must agree stem-for-stem.
        let src = "INPUT(b)\nINPUT(a)\nOUTPUT(z)\nOUTPUT(y)\n\
                   t = NAND(b, a)\n\
                   u = NOT(t)\n\
                   v = BUFF(t)\n\
                   y = AND(u, v, a)\n\
                   z = OR(y, b)\n";
        let c1 = bench::parse(src).unwrap();
        let c2 = bench::parse(src).unwrap();
        let lg1 = LineGraph::build(&c1);
        let lg2 = LineGraph::build(&c2);
        let stems1: Vec<LineId> = lg1.fanout_stems(&c1).collect();
        let stems2: Vec<LineId> = lg2.fanout_stems(&c2).collect();
        assert_eq!(stems1, stems2);
        // Ascending node-id order.
        let drivers: Vec<usize> = stems1
            .iter()
            .map(|&s| lg1.line(s).driver().index())
            .collect();
        let mut sorted = drivers.clone();
        sorted.sort_unstable();
        assert_eq!(drivers, sorted);
        // And it is exactly definition order of the branching nets:
        let names: Vec<String> = stems1.iter().map(|&s| lg1.display_name(s, &c1)).collect();
        assert_eq!(names, vec!["b", "a", "t", "y"]);
    }

    #[test]
    fn display_names() {
        let c = fanout_circuit();
        let lg = LineGraph::build(&c);
        let s = c.find("s").unwrap();
        let stem = lg.stem_of(s);
        assert_eq!(lg.display_name(stem, &c), "s");
        let b = lg.line(stem).branches()[0];
        let name = lg.display_name(b, &c);
        assert!(name.starts_with("s->"), "{name}");
    }

    #[test]
    fn line_count_matches_model() {
        let c = fanout_circuit();
        let lg = LineGraph::build(&c);
        // 6 nodes -> 6 stems; `a`,`b` single-sink; `s` has 2 branches.
        assert_eq!(lg.num_lines(), 6 + 2);
    }
}
