//! ISCAS89 `.bench` format reader and writer.
//!
//! The format is the one used by the ISCAS89 sequential benchmark
//! distribution (Brglez, Bryan, Kozminski, ISCAS 1989):
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G10 = NAND(G0, G5)
//! G17 = NOT(G10)
//! ```
//!
//! Keywords are case-insensitive; `BUF`/`BUFF` and `NOT`/`INV` are accepted
//! as synonyms. Definition order is free — forward references are resolved.

use std::collections::HashMap;

use crate::circuit::Node;
use crate::{Circuit, GateKind, NetlistError, NodeId};

/// Parses `.bench` text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Syntax`] for malformed lines, plus any of the
/// structural errors surfaced by circuit validation (duplicate drivers,
/// undefined signals, bad arities, combinational cycles, no outputs).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = fires_netlist::bench::parse("INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n")?;
/// assert_eq!(c.num_inputs(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    enum Item {
        Input,
        Gate(GateKind, Vec<String>),
    }

    let mut defs: Vec<(String, Item)> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut input_order: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let syntax = |message: &str| NetlistError::Syntax {
            line: lineno + 1,
            message: message.to_owned(),
        };
        if let Some(rest) = strip_keyword(line, "INPUT") {
            let name = parse_parenthesized(rest).ok_or_else(|| syntax("expected INPUT(name)"))?;
            input_order.push(name.to_owned());
            defs.push((name.to_owned(), Item::Input));
        } else if let Some(rest) = strip_keyword(line, "OUTPUT") {
            let name = parse_parenthesized(rest).ok_or_else(|| syntax("expected OUTPUT(name)"))?;
            output_names.push(name.to_owned());
        } else if let Some(eq) = line.find('=') {
            let lhs = line[..eq].trim();
            if lhs.is_empty() {
                return Err(syntax("missing signal name before `=`"));
            }
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| syntax("expected KIND(args)"))?;
            let kw = rhs[..open].trim();
            let kind = GateKind::from_bench_keyword(kw)
                .ok_or_else(|| syntax(&format!("unknown gate kind `{kw}`")))?;
            if !rhs.ends_with(')') {
                return Err(syntax("missing closing `)`"));
            }
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .collect();
            defs.push((lhs.to_owned(), Item::Gate(kind, args)));
        } else {
            return Err(syntax("unrecognized statement"));
        }
    }

    // First pass: assign ids.
    let mut by_name: HashMap<&str, NodeId> = HashMap::new();
    let mut names: Vec<String> = Vec::with_capacity(defs.len());
    for (i, (name, _)) in defs.iter().enumerate() {
        if by_name.insert(name.as_str(), NodeId::new(i)).is_some() {
            return Err(NetlistError::DuplicateDriver { name: name.clone() });
        }
        names.push(name.clone());
    }

    // Second pass: resolve fanins.
    let mut nodes: Vec<Node> = Vec::with_capacity(defs.len());
    let mut inputs: Vec<NodeId> = Vec::new();
    for (name, item) in &defs {
        match item {
            Item::Input => {
                inputs.push(by_name[name.as_str()]);
                nodes.push(Node {
                    kind: GateKind::Input,
                    fanin: Vec::new(),
                });
            }
            Item::Gate(kind, args) => {
                let mut fanin = Vec::with_capacity(args.len());
                for a in args {
                    let id = by_name
                        .get(a.as_str())
                        .copied()
                        .ok_or_else(|| NetlistError::UndefinedSignal { name: a.clone() })?;
                    fanin.push(id);
                }
                nodes.push(Node { kind: *kind, fanin });
            }
        }
    }

    let mut outputs = Vec::with_capacity(output_names.len());
    for o in &output_names {
        let id = by_name
            .get(o.as_str())
            .copied()
            .ok_or_else(|| NetlistError::UndefinedSignal { name: o.clone() })?;
        outputs.push(id);
    }

    Circuit::from_parts(nodes, names, inputs, outputs)
}

fn strip_keyword<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    // `get` (not slicing) keeps multi-byte UTF-8 in comments/identifiers
    // from panicking on a non-boundary index.
    let head = line.get(..kw.len())?;
    if head.eq_ignore_ascii_case(kw) {
        let rest = line[kw.len()..].trim_start();
        rest.starts_with('(').then_some(rest)
    } else {
        None
    }
}

fn parse_parenthesized(rest: &str) -> Option<&str> {
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?.trim();
    (!inner.is_empty() && !inner.contains(',')).then_some(inner)
}

/// Serializes a circuit back to `.bench` text.
///
/// Constants (which have no ISCAS89 syntax) are emitted as
/// `name = CONST0()` / `name = CONST1()`; [`parse`] reads them back.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let src = "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
/// let c = fires_netlist::bench::parse(src)?;
/// let round = fires_netlist::bench::parse(&fires_netlist::bench::to_text(&c))?;
/// assert_eq!(round.num_nodes(), c.num_nodes());
/// # Ok(())
/// # }
/// ```
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = String::new();
    for &i in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.name(i)));
    }
    for &o in circuit.outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.name(o)));
    }
    for id in circuit.node_ids() {
        let node = circuit.node(id);
        if node.kind() == GateKind::Input {
            continue;
        }
        let args: Vec<&str> = node.fanin().iter().map(|&f| circuit.name(f)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            circuit.name(id),
            node.kind().bench_keyword(),
            args.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27ISH: &str = "\
# tiny test circuit
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G5 = DFF(G10)
G10 = NAND(G0, G5)
G17 = NOR(G10, G1)
";

    #[test]
    fn parses_simple_circuit() {
        let c = parse(S27ISH).unwrap();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 2);
        let g10 = c.find("G10").unwrap();
        assert_eq!(c.node(g10).kind(), GateKind::Nand);
        assert_eq!(c.node(g10).fanin().len(), 2);
    }

    #[test]
    fn case_insensitive_keywords_and_comments() {
        let c = parse("input(x) # in\noutput(y)\ny = not(x) # out\n").unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn forward_references_resolve() {
        let c = parse("INPUT(a)\nOUTPUT(z)\nz = BUFF(m)\nm = NOT(a)\n").unwrap();
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        match parse("INPUT(a)\nbogus line\n") {
            Err(NetlistError::Syntax { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match parse("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n") {
            Err(NetlistError::Syntax { line: 3, message }) => {
                assert!(message.contains("FROB"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_signal_in_output() {
        match parse("INPUT(a)\nOUTPUT(zz)\nb = NOT(a)\n") {
            Err(NetlistError::UndefinedSignal { name }) => assert_eq!(name, "zz"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn writer_roundtrip_preserves_structure() {
        let c = parse(S27ISH).unwrap();
        let text = to_text(&c);
        let c2 = parse(&text).unwrap();
        assert_eq!(c2.num_nodes(), c.num_nodes());
        assert_eq!(c2.num_dffs(), c.num_dffs());
        assert_eq!(c2.num_outputs(), c.num_outputs());
        // Names survive.
        for id in c.node_ids() {
            assert!(c2.find(c.name(id)).is_some());
        }
    }

    #[test]
    fn constants_roundtrip() {
        let src = "OUTPUT(z)\nk = CONST1()\nz = BUFF(k)\n";
        let c = parse(src).unwrap();
        assert_eq!(c.node(c.find("k").unwrap()).kind(), GateKind::Const1);
        let c2 = parse(&to_text(&c)).unwrap();
        assert_eq!(c2.node(c2.find("k").unwrap()).kind(), GateKind::Const1);
    }
}
