//! Graphviz DOT export, for inspecting circuits and annotating analysis
//! results (identified faults, unobservable regions) visually.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Circuit, GateKind, NodeId};

/// Options for [`to_dot`].
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Extra per-node attributes, e.g. `fillcolor` for highlighting the
    /// nodes a redundant fault region touches. Values are raw DOT
    /// attribute lists such as `style=filled, fillcolor=salmon`.
    pub highlights: HashMap<NodeId, String>,
    /// Graph title rendered as a label.
    pub title: Option<String>,
}

/// Renders the circuit as a Graphviz digraph: boxes for gates, double
/// circles for flip-flops, plain circles for inputs, with primary outputs
/// marked by a bold border.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = fires_netlist::bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = AND(a, q)\n")?;
/// let dot = fires_netlist::dot::to_dot(&c, &Default::default());
/// assert!(dot.starts_with("digraph circuit {"));
/// assert!(dot.contains("doublecircle")); // the flip-flop
/// # Ok(())
/// # }
/// ```
pub fn to_dot(circuit: &Circuit, options: &DotOptions) -> String {
    let mut out = String::from("digraph circuit {\n  rankdir=LR;\n");
    if let Some(title) = &options.title {
        let _ = writeln!(out, "  label=\"{}\";", escape(title));
    }
    for id in circuit.node_ids() {
        let node = circuit.node(id);
        let name = escape(circuit.name(id));
        let shape = match node.kind() {
            GateKind::Input => "circle",
            GateKind::Dff => "doublecircle",
            GateKind::Const0 | GateKind::Const1 => "diamond",
            _ => "box",
        };
        let label = match node.kind() {
            GateKind::Input => name.clone(),
            _ => format!("{}\\n{}", name, node.kind().bench_keyword()),
        };
        let mut attrs = format!("shape={shape}, label=\"{label}\"");
        if circuit.is_output(id) {
            attrs.push_str(", penwidth=3");
        }
        if let Some(extra) = options.highlights.get(&id) {
            let _ = write!(attrs, ", {extra}");
        }
        let _ = writeln!(out, "  n{} [{attrs}];", id.index());
    }
    for id in circuit.node_ids() {
        for (pin, &src) in circuit.node(id).fanin().iter().enumerate() {
            let style = if circuit.node(id).kind() == GateKind::Dff {
                " [style=dashed]" // clock-domain crossing stands out
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} -> n{} [taillabel=\"\", headlabel=\"{pin}\"]{style};",
                src.index(),
                id.index()
            );
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;

    #[test]
    fn renders_every_node_and_edge() {
        let c =
            bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nq = DFF(a)\nz = NAND(q, b)\n").unwrap();
        let dot = to_dot(&c, &DotOptions::default());
        for id in c.node_ids() {
            assert!(dot.contains(&format!("n{} [", id.index())));
        }
        // 1 DFF edge + 2 NAND edges.
        assert_eq!(dot.matches(" -> ").count(), 3);
        assert!(dot.contains("style=dashed"), "FF edge marked");
        assert!(dot.contains("penwidth=3"), "PO marked");
    }

    #[test]
    fn highlights_and_title() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        let z = c.find("z").unwrap();
        let mut options = DotOptions {
            title: Some("quote \" test".into()),
            ..Default::default()
        };
        options
            .highlights
            .insert(z, "style=filled, fillcolor=salmon".into());
        let dot = to_dot(&c, &options);
        assert!(dot.contains("fillcolor=salmon"));
        assert!(dot.contains("quote \\\" test"));
    }
}
