//! The PODEM branch-and-bound search over primary-input assignments of the
//! unrolled model.

use std::time::Instant;

use fires_netlist::{Circuit, Fault, GateKind, LineGraph, NodeId};
use fires_sim::Logic3;

use crate::unrolled::UnrolledSim;

/// Outcome of one bounded search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum SearchOutcome {
    /// A test sequence (one binary vector per frame).
    Found(Vec<Vec<Logic3>>),
    /// The whole decision space for this unroll depth was explored.
    Exhausted,
    /// Backtrack or time budget ran out.
    Aborted,
}

struct Decision {
    frame: usize,
    pi: usize,
    flipped: bool,
}

pub(crate) struct Podem<'c> {
    circuit: &'c Circuit,
    sim: UnrolledSim<'c>,
    assignment: Vec<Vec<Logic3>>,
    decisions: Vec<Decision>,
    backtracks: u64,
    backtrack_limit: u64,
    deadline: Instant,
    pub(crate) backtracks_used: u64,
    /// Decisions pushed over the whole search (effort metric: how much of
    /// the tree was entered, as opposed to how often it was abandoned).
    pub(crate) decisions_made: u64,
    /// Deepest decision stack reached.
    pub(crate) max_decision_depth: u64,
}

impl<'c> Podem<'c> {
    pub(crate) fn new(
        circuit: &'c Circuit,
        lines: &'c LineGraph,
        fault: Fault,
        frames: usize,
        backtrack_limit: u64,
        deadline: Instant,
    ) -> Self {
        Podem {
            circuit,
            sim: UnrolledSim::new(circuit, lines, fault, frames),
            assignment: vec![vec![Logic3::X; circuit.num_inputs()]; frames],
            decisions: Vec::new(),
            backtracks: 0,
            backtrack_limit,
            deadline,
            backtracks_used: 0,
            decisions_made: 0,
            max_decision_depth: 0,
        }
    }

    fn note_decision(&mut self) {
        self.decisions_made += 1;
        self.max_decision_depth = self.max_decision_depth.max(self.decisions.len() as u64);
    }

    pub(crate) fn search(&mut self) -> SearchOutcome {
        loop {
            if self.backtracks > self.backtrack_limit || Instant::now() >= self.deadline {
                self.backtracks_used = self.backtracks;
                return SearchOutcome::Aborted;
            }
            self.sim.simulate(&self.assignment);
            if let Some(d) = self.sim.first_detection_frame() {
                self.backtracks_used = self.backtracks;
                return SearchOutcome::Found(self.extract_test(d));
            }
            let candidates = self.objective_candidates();
            let mut progressed = false;
            if !candidates.is_empty() {
                for (frame, node, value) in candidates {
                    if let Some((f, pi, v)) = self.backtrace(frame, node, value) {
                        self.assignment[f][pi] = Logic3::from(v);
                        self.decisions.push(Decision {
                            frame: f,
                            pi,
                            flipped: false,
                        });
                        self.note_decision();
                        progressed = true;
                        break;
                    }
                }
                // Completeness fallback: objectives exist but none reaches
                // an unassigned input through the X-path heuristic — just
                // pick any free input so the decision tree stays complete.
                if !progressed {
                    'outer: for f in 0..self.assignment.len() {
                        for pi in 0..self.assignment[f].len() {
                            if self.assignment[f][pi] == Logic3::X {
                                self.assignment[f][pi] = Logic3::Zero;
                                self.decisions.push(Decision {
                                    frame: f,
                                    pi,
                                    flipped: false,
                                });
                                self.note_decision();
                                progressed = true;
                                break 'outer;
                            }
                        }
                    }
                }
            }
            if !progressed && !self.backtrack() {
                self.backtracks_used = self.backtracks;
                return SearchOutcome::Exhausted;
            }
        }
    }

    /// PODEM objectives, best first: activate the fault if no effect
    /// exists yet, else push the D-frontier. An empty list means the
    /// current assignment can never detect the fault (sound reason to
    /// backtrack).
    fn objective_candidates(&self) -> Vec<(usize, NodeId, bool)> {
        let fault_site = self.site_node();
        let mut cands = Vec::new();
        if !self.sim.any_fault_effect() {
            // Activation: the good value at the site must become the
            // complement of the stuck value in some frame.
            let want = !self.stuck_value();
            for f in 0..self.sim.frames() {
                if self.sim.site_good_value(f) == Logic3::X {
                    cands.push((f, fault_site, want));
                }
            }
            return cands;
        }
        // Propagation: unblock D-frontier gates.
        for (f, gate) in self.sim.d_frontier() {
            let kind = self.circuit.node(gate).kind();
            let want = kind.controlling_value().map(|c| !c).unwrap_or(false);
            for pin in 0..self.circuit.node(gate).fanin().len() {
                let src = self.circuit.node(gate).fanin()[pin];
                let v = self.sim.value(f, src);
                if !v.is_fault_effect() && v.has_x() {
                    cands.push((f, src, want));
                }
            }
        }
        cands
    }

    /// Walks an objective back to an unassigned primary input, crossing
    /// flip-flops into earlier frames. Returns `(frame, pi index, value)`.
    fn backtrace(&self, frame: usize, node: NodeId, value: bool) -> Option<(usize, usize, bool)> {
        let mut f = frame;
        let mut n = node;
        let mut v = value;
        loop {
            let kind = self.circuit.node(n).kind();
            match kind {
                GateKind::Input => {
                    let pi = self
                        .circuit
                        .inputs()
                        .iter()
                        .position(|&p| p == n)
                        .expect("input exists");
                    return if self.assignment[f][pi] == Logic3::X {
                        Some((f, pi, v))
                    } else {
                        None // already assigned: objective unreachable here
                    };
                }
                GateKind::Dff => {
                    if f == 0 {
                        return None; // would constrain the unknown power-up state
                    }
                    f -= 1;
                    n = self.circuit.node(n).fanin()[0];
                }
                GateKind::Const0 | GateKind::Const1 => return None,
                _ => {
                    let v_core = v ^ kind.is_inverting();
                    let fanin = self.circuit.node(n).fanin();
                    // Choose the next input to follow.
                    let pick_x = fanin
                        .iter()
                        .copied()
                        .find(|&s| self.sim.value(f, s).good == Logic3::X);
                    let (next, next_v) = match kind {
                        GateKind::Not | GateKind::Buf => (fanin[0], v_core),
                        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                            let c = kind.controlling_value().expect("controlling");
                            if v_core == c {
                                // One controlling input suffices.
                                (pick_x?, c)
                            } else {
                                // Every input must be noncontrolling: fix
                                // the first unknown one.
                                (pick_x?, !c)
                            }
                        }
                        GateKind::Xor | GateKind::Xnor => {
                            let target = pick_x?;
                            // Aim for parity assuming other unknowns at 0.
                            let mut parity = v_core;
                            for &s in fanin {
                                if s != target {
                                    if let Some(b) = self.sim.value(f, s).good.to_bool() {
                                        parity ^= b;
                                    }
                                }
                            }
                            (target, parity)
                        }
                        _ => return None,
                    };
                    n = next;
                    v = next_v;
                }
            }
        }
    }

    fn backtrack(&mut self) -> bool {
        while let Some(mut d) = self.decisions.pop() {
            if d.flipped {
                self.assignment[d.frame][d.pi] = Logic3::X;
                continue;
            }
            let old = self.assignment[d.frame][d.pi];
            self.assignment[d.frame][d.pi] = match old {
                Logic3::Zero => Logic3::One,
                Logic3::One => Logic3::Zero,
                Logic3::X => Logic3::One,
            };
            d.flipped = true;
            self.decisions.push(d);
            self.backtracks += 1;
            return true;
        }
        false
    }

    fn extract_test(&self, detection_frame: usize) -> Vec<Vec<Logic3>> {
        self.assignment[..=detection_frame]
            .iter()
            .map(|frame| {
                frame
                    .iter()
                    .map(|&v| if v == Logic3::X { Logic3::Zero } else { v })
                    .collect()
            })
            .collect()
    }

    /// The node whose stem value activates the fault (objectives target
    /// the good machine's value there).
    fn site_node(&self) -> NodeId {
        match self.sim.fault_line_kind() {
            fires_netlist::LineKind::Stem { node }
            | fires_netlist::LineKind::Branch { node, .. } => node,
        }
    }

    fn stuck_value(&self) -> bool {
        self.sim.fault_stuck()
    }
}
