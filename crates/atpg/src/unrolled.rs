//! 5-valued simulation of the time-frame–expanded circuit.

use fires_netlist::{Circuit, Fault, GateKind, LineGraph, NodeId};
use fires_sim::Logic3;

use crate::V5;

/// Simulates `frames` copies of the combinational core with the fault
/// injected in every copy and the frame-0 flip-flops at X (unknown
/// power-up state).
///
/// Primary-input assignments form a `frames × PIs` matrix of 3-valued
/// values (X = not yet assigned by the search).
#[derive(Clone, Debug)]
pub struct UnrolledSim<'c> {
    circuit: &'c Circuit,
    lines: &'c LineGraph,
    fault: Fault,
    frames: usize,
    /// `values[frame][node]` after the last `simulate`.
    values: Vec<Vec<V5>>,
}

impl<'c> UnrolledSim<'c> {
    /// Creates a simulator for `frames` time frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames == 0`.
    pub fn new(circuit: &'c Circuit, lines: &'c LineGraph, fault: Fault, frames: usize) -> Self {
        assert!(frames >= 1, "need at least one time frame");
        UnrolledSim {
            circuit,
            lines,
            fault,
            frames,
            values: vec![vec![V5::X; circuit.num_nodes()]; frames],
        }
    }

    /// Number of unrolled frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Re-evaluates every frame for the given input matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimensions do not match `frames × PIs`.
    pub fn simulate(&mut self, inputs: &[Vec<Logic3>]) {
        assert_eq!(inputs.len(), self.frames, "frame count mismatch");
        let mut state: Vec<V5> = vec![V5::X; self.circuit.num_dffs()];
        for (f, frame_inputs) in inputs.iter().enumerate() {
            assert_eq!(frame_inputs.len(), self.circuit.num_inputs(), "PI width");
            let mut values = std::mem::take(&mut self.values[f]);
            for (i, &pi) in self.circuit.inputs().iter().enumerate() {
                values[pi.index()] = V5::from(frame_inputs[i]);
            }
            for (i, &ff) in self.circuit.dffs().iter().enumerate() {
                values[ff.index()] = state[i];
            }
            for &id in self.circuit.topo_order() {
                let kind = self.circuit.node(id).kind();
                let v = match kind {
                    GateKind::Input | GateKind::Dff => values[id.index()],
                    GateKind::Const0 => V5::ZERO,
                    GateKind::Const1 => V5::ONE,
                    _ => self.eval_gate(id, &values),
                };
                values[id.index()] = self.apply_stem_fault(id, v);
            }
            // Capture next state through possibly faulty branch lines.
            let mut next = Vec::with_capacity(state.len());
            for &ff in self.circuit.dffs() {
                next.push(self.pin_value(ff, 0, &values));
            }
            state = next;
            self.values[f] = values;
        }
    }

    fn eval_gate(&self, id: NodeId, values: &[V5]) -> V5 {
        let node = self.circuit.node(id);
        let kind = node.kind();
        let mut acc = match kind {
            GateKind::And | GateKind::Nand => V5::ONE,
            _ => V5::ZERO,
        };
        for pin in 0..node.fanin().len() {
            let v = self.pin_value(id, pin, values);
            acc = match kind {
                GateKind::And | GateKind::Nand => acc.and(v),
                GateKind::Or | GateKind::Nor => acc.or(v),
                GateKind::Xor | GateKind::Xnor => acc.xor(v),
                GateKind::Not | GateKind::Buf => v,
                _ => unreachable!("sources handled by caller"),
            };
        }
        if kind.is_inverting() {
            acc.not()
        } else {
            acc
        }
    }

    fn apply_stem_fault(&self, id: NodeId, v: V5) -> V5 {
        if self.lines.stem_of(id) == self.fault.line {
            V5 {
                good: v.good,
                faulty: Logic3::from(self.fault.stuck.as_bool()),
            }
        } else {
            v
        }
    }

    fn pin_value(&self, node: NodeId, pin: usize, values: &[V5]) -> V5 {
        let src = self.circuit.node(node).fanin()[pin];
        let v = values[src.index()];
        if self.lines.in_line(node, pin) == self.fault.line {
            V5 {
                good: v.good,
                faulty: Logic3::from(self.fault.stuck.as_bool()),
            }
        } else {
            v
        }
    }

    /// The value of `node` in frame `frame` after the last `simulate`.
    pub fn value(&self, frame: usize, node: NodeId) -> V5 {
        self.values[frame][node.index()]
    }

    /// Whether some primary output in some frame shows a definite fault
    /// effect (good and faulty both binary and different).
    pub fn detected(&self) -> bool {
        self.first_detection_frame().is_some()
    }

    /// The earliest frame whose outputs show a definite fault effect.
    pub fn first_detection_frame(&self) -> Option<usize> {
        (0..self.frames).find(|&f| {
            self.circuit
                .outputs()
                .iter()
                .any(|&po| self.values[f][po.index()].is_fault_effect())
        })
    }

    /// Whether any line in any frame carries a definite fault effect.
    pub fn any_fault_effect(&self) -> bool {
        (0..self.frames).any(|f| {
            self.circuit
                .node_ids()
                .any(|n| self.values[f][n.index()].is_fault_effect())
        })
    }

    /// The kind of the faulty line (stem or branch).
    pub fn fault_line_kind(&self) -> fires_netlist::LineKind {
        self.lines.line(self.fault.line).kind()
    }

    /// The boolean stuck value of the injected fault.
    pub fn fault_stuck(&self) -> bool {
        self.fault.stuck.as_bool()
    }

    /// The *good-machine* value seen at the fault site in `frame` (the
    /// stem value of the faulty line's driver).
    pub fn site_good_value(&self, frame: usize) -> Logic3 {
        let node = match self.lines.line(self.fault.line).kind() {
            fires_netlist::LineKind::Stem { node }
            | fires_netlist::LineKind::Branch { node, .. } => node,
        };
        self.values[frame][node.index()].good
    }

    /// Gates forming the D-frontier: their output has an unknown
    /// component while at least one input carries a fault effect.
    pub fn d_frontier(&self) -> Vec<(usize, NodeId)> {
        let mut frontier = Vec::new();
        for f in 0..self.frames {
            for id in self.circuit.node_ids() {
                let kind = self.circuit.node(id).kind();
                // Flip-flops are not frontier gates: a fault effect at a D
                // pin crosses into the next frame automatically.
                if !kind.is_logic() {
                    continue;
                }
                if !self.values[f][id.index()].has_x() {
                    continue;
                }
                let any_d = (0..self.circuit.node(id).fanin().len())
                    .any(|pin| self.pin_value(id, pin, &self.values[f]).is_fault_effect());
                if any_d {
                    frontier.push((f, id));
                }
            }
        }
        frontier
    }
}

#[cfg(test)]
mod tests {
    use fires_netlist::bench;

    use super::*;
    use fires_sim::Logic3::{One, Zero, X};

    #[test]
    fn combinational_detection() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let z = lg.stem_of(c.find("z").unwrap());
        let mut sim = UnrolledSim::new(&c, &lg, Fault::sa0(z), 1);
        sim.simulate(&[vec![Zero]]);
        assert!(sim.detected()); // good z = 1, faulty z = 0
        sim.simulate(&[vec![One]]);
        assert!(!sim.detected());
    }

    #[test]
    fn x_initial_state_blocks_first_frame() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = AND(q, a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let q = lg.stem_of(c.find("q").unwrap());
        let mut sim = UnrolledSim::new(&c, &lg, Fault::sa0(q), 2);
        // Frame 0: q is X in the good machine, no detection possible.
        sim.simulate(&[vec![One], vec![One]]);
        assert!(sim.detected(), "second frame detects once q is set");
        let mut sim1 = UnrolledSim::new(&c, &lg, Fault::sa0(q), 1);
        sim1.simulate(&[vec![One]]);
        assert!(!sim1.detected());
    }

    #[test]
    fn site_value_and_frontier() {
        let c =
            bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nm = BUFF(a)\nz = AND(m, b)\n").unwrap();
        let lg = LineGraph::build(&c);
        let m = lg.stem_of(c.find("m").unwrap());
        let mut sim = UnrolledSim::new(&c, &lg, Fault::sa0(m), 1);
        // Activated (a = 1) but b unassigned: z is the D-frontier.
        sim.simulate(&[vec![One, X]]);
        assert_eq!(sim.site_good_value(0), One);
        let frontier = sim.d_frontier();
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].1, c.find("z").unwrap());
        assert!(!sim.detected());
    }

    #[test]
    fn fault_effect_crosses_frames_through_ffs() {
        let c =
            bench::parse("INPUT(a)\nOUTPUT(z)\nm = BUFF(a)\nq = DFF(m)\nz = BUFF(q)\n").unwrap();
        let lg = LineGraph::build(&c);
        let m = lg.stem_of(c.find("m").unwrap());
        let mut sim = UnrolledSim::new(&c, &lg, Fault::sa0(m), 2);
        sim.simulate(&[vec![One], vec![X]]);
        // The D captured in frame 0 reaches z in frame 1.
        assert!(sim.detected());
    }
}
