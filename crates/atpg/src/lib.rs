//! Deterministic sequential ATPG over the iterative-array model.
//!
//! This crate is the reproduction's stand-in for the closed-source
//! comparators of the paper's Tables 3 and 4 (GENTEST \[27\] and HITEC
//! \[28\]): a PODEM-style branch-and-bound test generator working on the
//! time-frame–expanded circuit with unknown (X) initial state, a
//! per-fault backtrack budget and a per-fault time budget.
//!
//! Semantics match the rest of the workspace: a test is a sequence of
//! binary input vectors whose good response is binary and faulty response
//! is the opposite binary value at some output — detection for *every*
//! power-up state pair (Definition 1 of the paper). Consequently:
//!
//! * [`AtpgResult::TestFound`] tests always replay under
//!   [`fires_sim::simulate_fault`];
//! * [`AtpgResult::Untestable`] means the search space for the given
//!   unroll bound was exhausted — a genuine untestability proof for
//!   combinational circuits, and a bounded proof for sequential ones;
//! * [`AtpgResult::Aborted`] mirrors the "Abo." columns of Tables 3–4.
//!
//! # Example
//!
//! ```
//! use fires_atpg::{Atpg, AtpgConfig, AtpgResult};
//! use fires_netlist::{bench, Fault, LineGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = AND(q, a)\n")?;
//! let lines = LineGraph::build(&c);
//! let atpg = Atpg::new(&c, &lines, AtpgConfig::default());
//! let q = lines.stem_of(c.find("q").unwrap());
//! match atpg.run_fault(Fault::sa0(q)) {
//!     AtpgResult::TestFound(test) => assert!(test.len() >= 2),
//!     other => panic!("expected a test, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compaction;
mod driver;
mod logic5;
mod podem;
mod unrolled;

pub use compaction::{compact_tests, CompactionResult};
pub use driver::{Atpg, AtpgConfig, AtpgResult, AtpgStats, CampaignSummary};
pub use logic5::V5;
pub use unrolled::UnrolledSim;
