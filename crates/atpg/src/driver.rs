//! The per-fault and per-campaign ATPG drivers.

use std::time::{Duration, Instant};

use fires_netlist::{Circuit, Fault, LineGraph};
use fires_sim::Logic3;

use crate::podem::{Podem, SearchOutcome};

/// Budgets for one ATPG run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Maximum number of time frames to unroll.
    pub max_unroll: usize,
    /// Backtrack budget per fault (summed over unroll depths).
    pub backtrack_limit: u64,
    /// Wall-clock budget per fault.
    pub time_limit: Duration,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            max_unroll: 16,
            backtrack_limit: 10_000,
            time_limit: Duration::from_secs(5),
        }
    }
}

/// Outcome of targeting one fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtpgResult {
    /// A test sequence, one binary input vector per clock cycle. The test
    /// detects the fault for every power-up state pair (Definition 1).
    TestFound(Vec<Vec<Logic3>>),
    /// The complete decision space up to `frames` time frames was
    /// exhausted without a test. For a combinational circuit this proves
    /// redundancy; for a sequential circuit it proves untestability
    /// *within the unroll bound* (the comparator tools in the paper make
    /// the same kind of bounded claim in their per-fault budget).
    Untestable {
        /// The unroll bound that was exhausted.
        frames: usize,
    },
    /// The backtrack or time budget ran out before a verdict.
    Aborted {
        /// Backtracks consumed when the search gave up.
        backtracks: u64,
    },
}

impl AtpgResult {
    /// `true` for [`AtpgResult::TestFound`].
    pub fn is_detected(&self) -> bool {
        matches!(self, AtpgResult::TestFound(_))
    }

    /// `true` for [`AtpgResult::Untestable`].
    pub fn is_untestable(&self) -> bool {
        matches!(self, AtpgResult::Untestable { .. })
    }

    /// `true` for [`AtpgResult::Aborted`].
    pub fn is_aborted(&self) -> bool {
        matches!(self, AtpgResult::Aborted { .. })
    }
}

/// Per-fault statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AtpgStats {
    /// Backtracks consumed.
    pub backtracks: u64,
    /// Decisions made (branches entered, summed over unroll depths).
    pub decisions: u64,
    /// Deepest decision stack reached at any unroll depth.
    pub max_decision_depth: u64,
    /// Deepest unroll (time frames) the search attempted.
    pub frames_searched: usize,
    /// Wall-clock time spent on this fault.
    pub elapsed: Duration,
}

/// Aggregate of a multi-fault campaign (one row of Tables 3–4).
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    /// Per-fault results, aligned with the targeted fault order.
    pub results: Vec<AtpgResult>,
    /// Per-fault statistics.
    pub stats: Vec<AtpgStats>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl CampaignSummary {
    /// Number of faults proven untestable.
    pub fn num_untestable(&self) -> usize {
        self.results.iter().filter(|r| r.is_untestable()).count()
    }

    /// Number of aborted faults.
    pub fn num_aborted(&self) -> usize {
        self.results.iter().filter(|r| r.is_aborted()).count()
    }

    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.results.iter().filter(|r| r.is_detected()).count()
    }

    /// Backtracks summed over the whole campaign.
    pub fn total_backtracks(&self) -> u64 {
        self.stats.iter().map(|s| s.backtracks).sum()
    }

    /// Decisions summed over the whole campaign.
    pub fn total_decisions(&self) -> u64 {
        self.stats.iter().map(|s| s.decisions).sum()
    }

    /// Deepest decision stack any fault reached.
    pub fn max_decision_depth(&self) -> u64 {
        self.stats
            .iter()
            .map(|s| s.max_decision_depth)
            .max()
            .unwrap_or(0)
    }
}

/// A deterministic sequential test generator over the iterative-array
/// model (see the crate docs for scope and guarantees).
#[derive(Clone, Debug)]
pub struct Atpg<'c> {
    circuit: &'c Circuit,
    lines: &'c LineGraph,
    config: AtpgConfig,
}

impl<'c> Atpg<'c> {
    /// Creates a generator with the given budgets.
    pub fn new(circuit: &'c Circuit, lines: &'c LineGraph, config: AtpgConfig) -> Self {
        Atpg {
            circuit,
            lines,
            config,
        }
    }

    /// Targets a single fault.
    pub fn run_fault(&self, fault: Fault) -> AtpgResult {
        self.run_fault_with_stats(fault).0
    }

    /// Targets a single fault, also returning effort statistics.
    pub fn run_fault_with_stats(&self, fault: Fault) -> (AtpgResult, AtpgStats) {
        let start = Instant::now();
        let deadline = start + self.config.time_limit;
        let mut backtracks_total = 0u64;
        let mut decisions_total = 0u64;
        let mut max_depth = 0u64;
        let mut frames_searched = 0usize;
        // Unroll schedule: 1, 2, 4, ... max (finding short tests early is
        // much cheaper; the final depth provides the bounded-untestable
        // verdict).
        let mut depths: Vec<usize> = std::iter::successors(Some(1usize), |&d| Some(d * 2))
            .take_while(|&d| d < self.config.max_unroll)
            .collect();
        depths.push(self.config.max_unroll);
        let mut outcome = AtpgResult::Untestable {
            frames: self.config.max_unroll,
        };
        for &frames in &depths {
            let budget_left = self.config.backtrack_limit.saturating_sub(backtracks_total);
            let mut podem = Podem::new(
                self.circuit,
                self.lines,
                fault,
                frames,
                budget_left,
                deadline,
            );
            let result = podem.search();
            backtracks_total += podem.backtracks_used;
            decisions_total += podem.decisions_made;
            max_depth = max_depth.max(podem.max_decision_depth);
            frames_searched = frames_searched.max(frames);
            match result {
                SearchOutcome::Found(test) => {
                    outcome = AtpgResult::TestFound(test);
                    break;
                }
                SearchOutcome::Exhausted => {
                    // Keep going: a deeper unroll may still find a test.
                }
                SearchOutcome::Aborted => {
                    outcome = AtpgResult::Aborted {
                        backtracks: backtracks_total,
                    };
                    break;
                }
            }
        }
        let stats = AtpgStats {
            backtracks: backtracks_total,
            decisions: decisions_total,
            max_decision_depth: max_depth,
            frames_searched,
            elapsed: start.elapsed(),
        };
        (outcome, stats)
    }

    /// Targets a list of faults (a Table 3/4 style campaign).
    pub fn run_faults(&self, faults: &[Fault]) -> CampaignSummary {
        let start = Instant::now();
        let mut summary = CampaignSummary::default();
        for &f in faults {
            let (r, s) = self.run_fault_with_stats(f);
            summary.results.push(r);
            summary.stats.push(s);
        }
        summary.elapsed = start.elapsed();
        summary
    }
}

#[cfg(test)]
mod tests {
    use fires_netlist::{bench, FaultList};
    use fires_sim::simulate_fault;

    use super::*;

    fn cfg() -> AtpgConfig {
        AtpgConfig {
            max_unroll: 8,
            backtrack_limit: 5_000,
            time_limit: Duration::from_secs(10),
        }
    }

    #[test]
    fn combinational_test_generation() {
        let c = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n").unwrap();
        let lg = LineGraph::build(&c);
        let atpg = Atpg::new(&c, &lg, cfg());
        for fault in FaultList::full(&lg).iter() {
            match atpg.run_fault(fault) {
                AtpgResult::TestFound(test) => {
                    // Every generated test must replay in the fault simulator.
                    assert!(
                        simulate_fault(&c, &lg, fault, &test).is_some(),
                        "test for {} does not replay",
                        fault.display(&lg, &c)
                    );
                }
                other => panic!("AND gate fault should be testable: {other:?}"),
            }
        }
    }

    #[test]
    fn combinational_redundancy_is_proven() {
        // z = AND(a, NOT(a)) = 0: z s-a-0 is undetectable.
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let lg = LineGraph::build(&c);
        let atpg = Atpg::new(&c, &lg, cfg());
        let z = lg.stem_of(c.find("z").unwrap());
        assert!(atpg.run_fault(Fault::sa0(z)).is_untestable());
        assert!(atpg.run_fault(Fault::sa1(z)).is_detected());
    }

    #[test]
    fn sequential_test_crosses_frames() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = AND(q, a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let atpg = Atpg::new(&c, &lg, cfg());
        let q = lg.stem_of(c.find("q").unwrap());
        match atpg.run_fault(Fault::sa0(q)) {
            AtpgResult::TestFound(test) => {
                assert!(test.len() >= 2, "needs a state-setting cycle");
                assert!(simulate_fault(&c, &lg, Fault::sa0(q), &test).is_some());
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn figure3_fault_is_not_detected() {
        // The paper's 1-cycle redundant fault: ATPG must not find a test
        // (it either proves bounded untestability or aborts).
        let c =
            bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
                .unwrap();
        let lg = LineGraph::build(&c);
        let atpg = Atpg::new(&c, &lg, cfg());
        let c_stem = lg.stem_of(c.find("c").unwrap());
        let c1 = lg.line(c_stem).branches()[0];
        let r = atpg.run_fault(Fault::sa1(c1));
        assert!(!r.is_detected(), "untestable fault detected: {r:?}");
    }

    #[test]
    fn campaign_summary_counts() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let lg = LineGraph::build(&c);
        let atpg = Atpg::new(&c, &lg, cfg());
        let faults = FaultList::full(&lg);
        let summary = atpg.run_faults(faults.as_slice());
        assert_eq!(summary.results.len(), faults.len());
        assert_eq!(
            summary.num_detected() + summary.num_untestable() + summary.num_aborted(),
            faults.len()
        );
        assert!(summary.num_untestable() >= 1);
        assert!(summary.num_detected() >= 1);
    }

    #[test]
    fn stats_count_search_effort() {
        let c = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n").unwrap();
        let lg = LineGraph::build(&c);
        let atpg = Atpg::new(&c, &lg, cfg());
        let z = lg.stem_of(c.find("z").unwrap());
        let (r, s) = atpg.run_fault_with_stats(Fault::sa0(z));
        assert!(r.is_detected());
        // Detecting z s-a-0 needs a=b=1: at least two decisions.
        assert!(s.decisions >= 2, "decisions = {}", s.decisions);
        assert!(s.max_decision_depth >= 2);
        assert!(s.max_decision_depth <= s.decisions);
        assert!(s.frames_searched >= 1);

        let summary = atpg.run_faults(FaultList::full(&lg).as_slice());
        assert_eq!(
            summary.total_decisions(),
            summary.stats.iter().map(|s| s.decisions).sum::<u64>()
        );
        assert!(summary.total_decisions() > 0);
        assert!(summary.max_decision_depth() > 0);
    }

    #[test]
    fn tiny_budget_aborts() {
        let c = fires_circuits::iscas::s27();
        let lg = LineGraph::build(&c);
        let atpg = Atpg::new(
            &c,
            &lg,
            AtpgConfig {
                max_unroll: 16,
                backtrack_limit: 0,
                time_limit: Duration::from_nanos(1),
            },
        );
        let faults = FaultList::full(&lg);
        let summary = atpg.run_faults(&faults.as_slice()[..8]);
        assert!(summary.num_aborted() >= 1);
    }
}
