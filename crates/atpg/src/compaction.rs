//! Static test-set compaction.
//!
//! ATPG emits one test sequence per targeted fault; most sequences detect
//! many other faults as a side effect. Reverse-order restoration keeps a
//! sequence only if it detects at least one fault that no later-kept
//! sequence covers — the classic compaction pass every test generator
//! ships with, here implemented on top of the workspace's fault
//! simulator.

use fires_netlist::{Circuit, Fault, LineGraph};
use fires_sim::{simulate_fault, Logic3};

/// Result of compacting a test set.
#[derive(Clone, Debug, Default)]
pub struct CompactionResult {
    /// Indices (into the original test list) of the kept sequences, in
    /// application order.
    pub kept: Vec<usize>,
    /// Faults covered before compaction.
    pub covered_before: usize,
    /// Faults covered after compaction (never less than before).
    pub covered_after: usize,
}

impl CompactionResult {
    /// Fraction of sequences dropped, in `[0, 1]`.
    pub fn reduction(&self, original: usize) -> f64 {
        if original == 0 {
            return 0.0;
        }
        1.0 - self.kept.len() as f64 / original as f64
    }
}

/// Reverse-order restoration: walk the test list from the last sequence to
/// the first, keep a sequence iff it detects a fault not yet covered by
/// the kept set.
///
/// Detection uses the same conservative criterion as the rest of the
/// workspace, so the compacted set provably covers every fault the full
/// set covered.
///
/// # Example
///
/// ```
/// use fires_atpg::compact_tests;
/// use fires_netlist::{bench, Fault, FaultList, LineGraph};
/// use fires_sim::Logic3;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let lines = LineGraph::build(&c);
/// let faults: Vec<Fault> = FaultList::full(&lines).iter().collect();
/// // Two redundant copies of the same exhaustive test.
/// let tests = vec![
///     vec![vec![Logic3::Zero], vec![Logic3::One]],
///     vec![vec![Logic3::Zero], vec![Logic3::One]],
/// ];
/// let result = compact_tests(&c, &lines, &faults, &tests);
/// assert_eq!(result.kept.len(), 1);
/// assert_eq!(result.covered_after, result.covered_before);
/// # Ok(())
/// # }
/// ```
pub fn compact_tests(
    circuit: &Circuit,
    lines: &LineGraph,
    faults: &[Fault],
    tests: &[Vec<Vec<Logic3>>],
) -> CompactionResult {
    // Coverage matrix: which faults each sequence detects.
    let detects: Vec<Vec<bool>> = tests
        .iter()
        .map(|t| {
            faults
                .iter()
                .map(|&f| simulate_fault(circuit, lines, f, t).is_some())
                .collect()
        })
        .collect();
    let covered_before = (0..faults.len())
        .filter(|&fi| detects.iter().any(|row| row[fi]))
        .count();

    let mut covered = vec![false; faults.len()];
    let mut kept_rev: Vec<usize> = Vec::new();
    for ti in (0..tests.len()).rev() {
        let new = detects[ti]
            .iter()
            .enumerate()
            .any(|(fi, &d)| d && !covered[fi]);
        if new {
            kept_rev.push(ti);
            for (fi, &d) in detects[ti].iter().enumerate() {
                if d {
                    covered[fi] = true;
                }
            }
        }
    }
    kept_rev.reverse();
    let covered_after = covered.iter().filter(|&&c| c).count();
    CompactionResult {
        kept: kept_rev,
        covered_before,
        covered_after,
    }
}

#[cfg(test)]
mod tests {
    use fires_netlist::{bench, FaultList};
    use fires_sim::Logic3::{One, Zero};

    use super::*;
    use crate::{Atpg, AtpgConfig};

    #[test]
    fn compaction_never_loses_coverage() {
        let c = bench::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(y)\nz = AND(a, b)\ny = XOR(a, b)\n",
        )
        .unwrap();
        let lines = LineGraph::build(&c);
        let faults: Vec<Fault> = FaultList::full(&lines).iter().collect();
        let atpg = Atpg::new(&c, &lines, AtpgConfig::default());
        let tests: Vec<Vec<Vec<Logic3>>> = faults
            .iter()
            .filter_map(|&f| match atpg.run_fault(f) {
                crate::AtpgResult::TestFound(t) => Some(t),
                _ => None,
            })
            .collect();
        assert!(!tests.is_empty());
        let result = compact_tests(&c, &lines, &faults, &tests);
        assert_eq!(result.covered_after, result.covered_before);
        assert!(result.kept.len() <= tests.len());
        assert!(result.reduction(tests.len()) >= 0.0);
    }

    #[test]
    fn duplicate_tests_collapse_to_one() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n").unwrap();
        let lines = LineGraph::build(&c);
        let faults: Vec<Fault> = FaultList::full(&lines).iter().collect();
        let t = vec![vec![Zero], vec![One]];
        let tests = vec![t.clone(), t.clone(), t];
        let result = compact_tests(&c, &lines, &faults, &tests);
        assert_eq!(result.kept.len(), 1);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n").unwrap();
        let lines = LineGraph::build(&c);
        let result = compact_tests(&c, &lines, &[], &[]);
        assert!(result.kept.is_empty());
        assert_eq!(result.covered_before, 0);
        assert_eq!(result.reduction(0), 0.0);
    }
}
