//! The 5-valued D-calculus, represented as a good/faulty pair of 3-valued
//! components.

use fires_sim::Logic3;
use std::fmt;

/// A composite value tracking the good and faulty machines at once.
///
/// The classical five values map as follows: `0 = (0,0)`, `1 = (1,1)`,
/// `D = (1,0)`, `D̄ = (0,1)`, `X` = any pair with an unknown component.
/// Working with the explicit pair keeps every gate rule correct by
/// construction (each component evaluates independently in Kleene logic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct V5 {
    /// The fault-free machine's value.
    pub good: Logic3,
    /// The faulty machine's value.
    pub faulty: Logic3,
}

impl V5 {
    /// Both components unknown.
    pub const X: V5 = V5 {
        good: Logic3::X,
        faulty: Logic3::X,
    };

    /// Constant 0 in both machines.
    pub const ZERO: V5 = V5 {
        good: Logic3::Zero,
        faulty: Logic3::Zero,
    };

    /// Constant 1 in both machines.
    pub const ONE: V5 = V5 {
        good: Logic3::One,
        faulty: Logic3::One,
    };

    /// The classical `D`: good 1, faulty 0.
    pub const D: V5 = V5 {
        good: Logic3::One,
        faulty: Logic3::Zero,
    };

    /// The classical `D̄`: good 0, faulty 1.
    pub const DBAR: V5 = V5 {
        good: Logic3::Zero,
        faulty: Logic3::One,
    };

    /// Builds an equal-in-both-machines value from a bool.
    pub fn both(v: bool) -> V5 {
        if v {
            V5::ONE
        } else {
            V5::ZERO
        }
    }

    /// `true` when the value carries a definite fault effect (`D` or `D̄`).
    pub fn is_fault_effect(self) -> bool {
        self.good.definitely_differs(self.faulty)
    }

    /// `true` when either component is unknown.
    pub fn has_x(self) -> bool {
        !self.good.is_binary() || !self.faulty.is_binary()
    }

    /// Componentwise negation. (Named like the D-calculus operation; the
    /// inherent method is intentional — `V5` is not a smart pointer and
    /// implements no `std::ops` traits.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> V5 {
        V5 {
            good: !self.good,
            faulty: !self.faulty,
        }
    }

    /// Componentwise conjunction.
    pub fn and(self, o: V5) -> V5 {
        V5 {
            good: self.good.and(o.good),
            faulty: self.faulty.and(o.faulty),
        }
    }

    /// Componentwise disjunction.
    pub fn or(self, o: V5) -> V5 {
        V5 {
            good: self.good.or(o.good),
            faulty: self.faulty.or(o.faulty),
        }
    }

    /// Componentwise exclusive-or.
    pub fn xor(self, o: V5) -> V5 {
        V5 {
            good: self.good.xor(o.good),
            faulty: self.faulty.xor(o.faulty),
        }
    }
}

impl From<Logic3> for V5 {
    fn from(v: Logic3) -> V5 {
        V5 { good: v, faulty: v }
    }
}

impl fmt::Display for V5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match (self.good, self.faulty) {
            (Logic3::Zero, Logic3::Zero) => "0",
            (Logic3::One, Logic3::One) => "1",
            (Logic3::One, Logic3::Zero) => "D",
            (Logic3::Zero, Logic3::One) => "D'",
            _ => "X",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_algebra_basics() {
        assert_eq!(V5::D.and(V5::ONE), V5::D);
        assert_eq!(V5::D.and(V5::ZERO), V5::ZERO);
        assert_eq!(V5::D.and(V5::DBAR), V5::ZERO);
        assert_eq!(V5::D.or(V5::DBAR), V5::ONE);
        assert_eq!(V5::D.not(), V5::DBAR);
        assert_eq!(V5::D.xor(V5::DBAR), V5::ONE);
        assert_eq!(V5::D.xor(V5::D), V5::ZERO);
    }

    #[test]
    fn x_absorbs() {
        assert!(V5::X.and(V5::ONE).has_x());
        assert_eq!(V5::X.and(V5::ZERO), V5::ZERO);
        assert_eq!(V5::X.or(V5::ONE), V5::ONE);
        assert!(V5::D.and(V5::X).has_x());
    }

    #[test]
    fn fault_effect_detection() {
        assert!(V5::D.is_fault_effect());
        assert!(V5::DBAR.is_fault_effect());
        assert!(!V5::ONE.is_fault_effect());
        assert!(!V5::X.is_fault_effect());
    }

    #[test]
    fn display() {
        assert_eq!(V5::D.to_string(), "D");
        assert_eq!(V5::DBAR.to_string(), "D'");
        assert_eq!(V5::X.to_string(), "X");
        assert_eq!(V5::both(true).to_string(), "1");
    }
}
