//! Cross-checks of the ATPG's verdicts against the exact state-space
//! classifier on tiny circuits.

use std::time::Duration;

use fires_atpg::{Atpg, AtpgConfig, AtpgResult};
use fires_circuits::generators::{random_sequential, RandomConfig};
use fires_netlist::{FaultList, LineGraph};
use fires_verify::{classify, Limits};
use proptest::prelude::*;

fn config() -> AtpgConfig {
    AtpgConfig {
        max_unroll: 10,
        backtrack_limit: 20_000,
        time_limit: Duration::from_secs(2),
    }
}

fn limits() -> Limits {
    Limits {
        max_ffs: 4,
        max_inputs: 4,
        budget: 300_000,
        detect_max_ffs: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// A generated test detects the fault for *every* pair of power-up
    /// states (our 3-valued tests are Definition-1 tests), so the exact
    /// classifier must agree the fault is detectable.
    #[test]
    fn test_found_implies_detectable(seed in 0u64..500) {
        let circuit = random_sequential(&RandomConfig {
            seed,
            inputs: 3,
            gates: 15,
            ffs: 2,
            outputs: 2,
            fig3: 0,
            chains: (0, 0),
            conflicts: 1,
        });
        prop_assume!(circuit.num_dffs() <= 3);
        let lines = LineGraph::build(&circuit);
        let atpg = Atpg::new(&circuit, &lines, config());
        for fault in FaultList::collapsed(&circuit, &lines).iter().take(10) {
            if let AtpgResult::TestFound(_) = atpg.run_fault(fault) {
                if let Ok(class) = classify(&circuit, &lines, fault, &limits()) {
                    prop_assert_eq!(
                        class.detectable,
                        Some(true),
                        "seed {}: ATPG test for undetectable {}",
                        seed,
                        fault.display(&lines, &circuit)
                    );
                }
            }
        }
    }

    /// Dually: faults the exact classifier calls undetectable never get a
    /// test from the search.
    #[test]
    fn undetectable_never_gets_a_test(seed in 0u64..500) {
        let circuit = random_sequential(&RandomConfig {
            seed,
            inputs: 3,
            gates: 12,
            ffs: 1,
            outputs: 2,
            fig3: 1,
            chains: (0, 0),
            conflicts: 1,
        });
        prop_assume!(circuit.num_dffs() <= 3);
        let lines = LineGraph::build(&circuit);
        let atpg = Atpg::new(&circuit, &lines, config());
        for fault in FaultList::collapsed(&circuit, &lines).iter().take(10) {
            if let Ok(class) = classify(&circuit, &lines, fault, &limits()) {
                if class.detectable == Some(false) {
                    let r = atpg.run_fault(fault);
                    prop_assert!(
                        !r.is_detected(),
                        "seed {}: test for undetectable {}",
                        seed,
                        fault.display(&lines, &circuit)
                    );
                }
            }
        }
    }
}
