//! Input vector workloads.

use fires_netlist::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Logic3;

/// A sequence of binary input vectors.
pub type VectorSet = Vec<Vec<Logic3>>;

/// Generates `len` uniformly random binary vectors for `circuit`'s inputs,
/// deterministically from `seed`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = fires_netlist::bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")?;
/// let vs = fires_sim::random_vectors(&c, 8, 42);
/// assert_eq!(vs.len(), 8);
/// assert_eq!(vs[0].len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn random_vectors(circuit: &Circuit, len: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            (0..circuit.num_inputs())
                .map(|_| Logic3::from(rng.random::<bool>()))
                .collect()
        })
        .collect()
}

/// Enumerates all `2^n` binary vectors over `n` inputs, in counting order.
///
/// # Panics
///
/// Panics if `n > 20` (the enumeration would not fit in memory).
pub fn all_binary_vectors(n: usize) -> VectorSet {
    assert!(n <= 20, "exhaustive enumeration limited to 20 inputs");
    (0..1usize << n)
        .map(|bits| (0..n).map(|i| Logic3::from(bits >> i & 1 == 1)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_vectors_are_deterministic() {
        let c = fires_netlist::bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        assert_eq!(random_vectors(&c, 16, 7), random_vectors(&c, 16, 7));
        assert_ne!(random_vectors(&c, 16, 7), random_vectors(&c, 16, 8));
    }

    #[test]
    fn exhaustive_enumeration() {
        let vs = all_binary_vectors(2);
        assert_eq!(vs.len(), 4);
        assert_eq!(vs[0], vec![Logic3::Zero, Logic3::Zero]);
        assert_eq!(vs[3], vec![Logic3::One, Logic3::One]);
        assert_eq!(all_binary_vectors(0).len(), 1);
    }
}
