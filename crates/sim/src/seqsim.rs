//! The synchronous 3-valued sequential simulator.

use fires_netlist::{Circuit, Fault, GateKind, LineGraph, NodeId};

use crate::Logic3;

/// A cycle-accurate 3-valued simulator over a [`Circuit`].
///
/// Flip-flops power up at X. Each [`step`](Self::step) applies one input
/// vector, evaluates the combinational core in topological order, samples
/// the primary outputs and then clocks every flip-flop.
///
/// A single stuck-at fault may be injected per step. Faults live on
/// *lines*: a stem fault forces the whole net, while a branch fault forces
/// only the value seen by the one gate pin the branch feeds (the net value
/// observed at a primary output is unaffected by a branch fault).
#[derive(Clone, Debug)]
pub struct SeqSim<'c> {
    circuit: &'c Circuit,
    lines: &'c LineGraph,
    /// Current FF output values, indexed like `circuit.dffs()`.
    ff_state: Vec<Logic3>,
    /// Scratch: value of every node's net this cycle.
    values: Vec<Logic3>,
    /// Gates evaluated over the simulator's lifetime (activity metric,
    /// comparable with [`EventSim::gate_evaluations`](crate::EventSim::gate_evaluations)).
    evals: u64,
}

impl<'c> SeqSim<'c> {
    /// Creates a simulator with all flip-flops at X.
    pub fn new(circuit: &'c Circuit, lines: &'c LineGraph) -> Self {
        SeqSim {
            circuit,
            lines,
            ff_state: vec![Logic3::X; circuit.num_dffs()],
            values: vec![Logic3::X; circuit.num_nodes()],
            evals: 0,
        }
    }

    /// Number of gate evaluations performed so far. The oblivious
    /// simulator evaluates every logic gate each cycle, so this grows by
    /// the gate count per [`step`](Self::step) — the baseline that
    /// [`EventSim`](crate::EventSim) undercuts.
    pub fn gate_evaluations(&self) -> u64 {
        self.evals
    }

    /// Resets every flip-flop to X.
    pub fn reset_to_x(&mut self) {
        self.ff_state.fill(Logic3::X);
    }

    /// Current flip-flop state, indexed like [`Circuit::dffs`].
    pub fn state(&self) -> &[Logic3] {
        &self.ff_state
    }

    /// Overwrites the flip-flop state (e.g. to explore a specific power-up
    /// state).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of flip-flops.
    pub fn set_state(&mut self, state: &[Logic3]) {
        assert_eq!(state.len(), self.ff_state.len(), "state width mismatch");
        self.ff_state.copy_from_slice(state);
    }

    /// Applies one input vector (optionally under an injected fault),
    /// returns the primary output values, then advances the flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[Logic3], fault: Option<Fault>) -> Vec<Logic3> {
        let outputs = self.evaluate(inputs, fault);
        // Clock: capture D-pin values (as seen through possibly faulty
        // branch lines).
        let mut next = Vec::with_capacity(self.ff_state.len());
        for &ff in self.circuit.dffs() {
            next.push(self.pin_value(ff, 0, fault));
        }
        self.ff_state.copy_from_slice(&next);
        outputs
    }

    /// Evaluates the combinational core for one vector without clocking.
    /// Returns the primary output values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn evaluate(&mut self, inputs: &[Logic3], fault: Option<Fault>) -> Vec<Logic3> {
        let circuit = self.circuit;
        assert_eq!(inputs.len(), circuit.num_inputs(), "input width mismatch");
        for (&pi, &v) in circuit.inputs().iter().zip(inputs) {
            self.values[pi.index()] = v;
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            self.values[ff.index()] = self.ff_state[i];
        }
        for &id in circuit.topo_order() {
            let kind = circuit.node(id).kind();
            let v = match kind {
                GateKind::Input | GateKind::Dff => self.values[id.index()],
                GateKind::Const0 => Logic3::Zero,
                GateKind::Const1 => Logic3::One,
                _ => {
                    self.evals += 1;
                    let mut pins = Vec::with_capacity(circuit.node(id).fanin().len());
                    for pin in 0..circuit.node(id).fanin().len() {
                        pins.push(self.pin_value(id, pin, fault));
                    }
                    eval_gate(kind, &pins)
                }
            };
            let forced = match fault {
                Some(f) if self.lines.stem_of(id) == f.line => Logic3::from(f.stuck.as_bool()),
                _ => v,
            };
            self.values[id.index()] = forced;
        }
        circuit
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }

    /// Runs a whole vector sequence from the *current* state, returning the
    /// output response per cycle.
    pub fn run(&mut self, vectors: &[Vec<Logic3>], fault: Option<Fault>) -> Vec<Vec<Logic3>> {
        vectors.iter().map(|v| self.step(v, fault)).collect()
    }

    /// The value of `node`'s net computed in the last evaluation.
    pub fn value(&self, node: NodeId) -> Logic3 {
        self.values[node.index()]
    }

    /// The value arriving at pin `pin` of `node`, honouring a branch fault
    /// on the feeding line.
    fn pin_value(&self, node: NodeId, pin: usize, fault: Option<Fault>) -> Logic3 {
        let src = self.circuit.node(node).fanin()[pin];
        let v = self.values[src.index()];
        match fault {
            Some(f) if self.lines.in_line(node, pin) == f.line => Logic3::from(f.stuck.as_bool()),
            _ => v,
        }
    }
}

/// Evaluates one gate over 3-valued pin values.
///
/// # Panics
///
/// Panics if `kind` is a source, a constant or a flip-flop (those are not
/// combinational gates).
pub(crate) fn eval_gate(kind: GateKind, pins: &[Logic3]) -> Logic3 {
    let core = match kind {
        GateKind::And | GateKind::Nand => pins.iter().copied().fold(Logic3::One, Logic3::and),
        GateKind::Or | GateKind::Nor => pins.iter().copied().fold(Logic3::Zero, Logic3::or),
        GateKind::Xor | GateKind::Xnor => pins.iter().copied().fold(Logic3::Zero, Logic3::xor),
        GateKind::Not | GateKind::Buf => pins[0],
        other => panic!("eval_gate on non-logic kind {other}"),
    };
    if kind.is_inverting() {
        !core
    } else {
        core
    }
}

#[cfg(test)]
mod tests {
    use fires_netlist::{bench, FaultList, LineGraph};

    use super::*;
    use crate::Logic3::{One, Zero, X};

    fn toggle() -> Circuit {
        // q toggles when en=1: q' = en XOR q ... actually q' = en ^ q.
        bench::parse("INPUT(en)\nOUTPUT(q)\nq = DFF(t)\nt = XOR(en, q)\n").unwrap()
    }

    #[test]
    fn ff_powers_up_unknown_and_initializes() {
        let c = bench::parse("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lg);
        assert_eq!(sim.step(&[One], None), vec![X]);
        assert_eq!(sim.step(&[Zero], None), vec![One]);
        assert_eq!(sim.step(&[Zero], None), vec![Zero]);
    }

    #[test]
    fn toggle_ff_stays_unknown_without_reset() {
        let c = toggle();
        let lg = LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lg);
        for _ in 0..4 {
            // XOR never resolves an unknown state.
            assert_eq!(sim.step(&[One], None), vec![X]);
        }
        // But from a set state it toggles deterministically.
        sim.set_state(&[Zero]);
        assert_eq!(sim.step(&[One], None), vec![Zero]);
        assert_eq!(sim.step(&[One], None), vec![One]);
        assert_eq!(sim.step(&[Zero], None), vec![Zero]);
    }

    #[test]
    fn gate_eval_matches_truth_tables() {
        use GateKind::*;
        assert_eq!(eval_gate(Nand, &[One, One]), Zero);
        assert_eq!(eval_gate(Nand, &[Zero, X]), One);
        assert_eq!(eval_gate(Nor, &[Zero, Zero]), One);
        assert_eq!(eval_gate(Nor, &[X, One]), Zero);
        assert_eq!(eval_gate(Xnor, &[One, One]), One);
        assert_eq!(eval_gate(Not, &[X]), X);
        assert_eq!(eval_gate(Buf, &[One]), One);
        assert_eq!(eval_gate(And, &[One, One, Zero]), Zero);
        assert_eq!(eval_gate(Or, &[Zero, Zero, One]), One);
    }

    #[test]
    fn stem_fault_forces_whole_net() {
        let c =
            bench::parse("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUFF(s)\nz = NOT(s)\ns = BUFF(a)\n")
                .unwrap();
        let lg = LineGraph::build(&c);
        let s = lg.stem_of(c.find("s").unwrap());
        let mut sim = SeqSim::new(&c, &lg);
        let out = sim.step(&[One], Some(Fault::sa0(s)));
        assert_eq!(out, vec![Zero, One]); // both sinks see the forced 0
    }

    #[test]
    fn branch_fault_forces_only_one_pin() {
        let c =
            bench::parse("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = BUFF(s)\nz = NOT(s)\ns = BUFF(a)\n")
                .unwrap();
        let lg = LineGraph::build(&c);
        let s = c.find("s").unwrap();
        let stem = lg.stem_of(s);
        // Find the branch feeding `y`.
        let y = c.find("y").unwrap();
        let branch = lg
            .line(stem)
            .branches()
            .iter()
            .copied()
            .find(|&b| lg.line(b).sink_pin().unwrap().0 == y)
            .unwrap();
        let mut sim = SeqSim::new(&c, &lg);
        let out = sim.step(&[One], Some(Fault::sa0(branch)));
        assert_eq!(out, vec![Zero, Zero]); // y corrupted, z healthy
    }

    #[test]
    fn pi_stem_fault_overrides_input() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let a = lg.stem_of(c.find("a").unwrap());
        let mut sim = SeqSim::new(&c, &lg);
        assert_eq!(sim.step(&[Zero], Some(Fault::sa1(a))), vec![One]);
    }

    #[test]
    fn every_fault_in_universe_can_be_injected() {
        let c = toggle();
        let lg = LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lg);
        for f in FaultList::full(&lg).iter() {
            sim.reset_to_x();
            let _ = sim.step(&[One], Some(f));
        }
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let c = toggle();
        let lg = LineGraph::build(&c);
        let mut sim = SeqSim::new(&c, &lg);
        let _ = sim.step(&[], None);
    }
}
