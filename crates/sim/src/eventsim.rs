//! Event-driven sequential simulation.
//!
//! Functionally identical to [`SeqSim`](crate::SeqSim) but evaluates only
//! the gates whose inputs changed since the previous vector — the classic
//! selective-trace optimization. On workloads with low activity (long
//! random sequences, fault grading) this skips the bulk of the circuit
//! each cycle. Differential property tests pin it to the oblivious
//! simulator cycle for cycle.

use std::collections::VecDeque;

use fires_netlist::{Circuit, Fault, GateKind, LineGraph, NodeId};

use crate::seqsim::eval_gate;
use crate::Logic3;

/// An event-driven 3-valued simulator.
///
/// # Example
///
/// ```
/// use fires_netlist::{bench, LineGraph};
/// use fires_sim::{EventSim, Logic3};
///
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = XOR(a, q)\n")?;
/// let lines = LineGraph::build(&c);
/// let mut sim = EventSim::new(&c, &lines);
/// sim.step(&[Logic3::One], None);
/// assert_eq!(sim.step(&[Logic3::One], None), vec![Logic3::Zero]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EventSim<'c> {
    circuit: &'c Circuit,
    lines: &'c LineGraph,
    values: Vec<Logic3>,
    ff_state: Vec<Logic3>,
    /// Evaluation order rank, used to pop events in topological order.
    rank: Vec<u32>,
    /// Scratch: whether a node is already queued this cycle.
    queued: Vec<bool>,
    /// The fault injected during the previous cycle (a fault change forces
    /// full re-evaluation).
    last_fault: Option<Fault>,
    /// Whether a full evaluation has happened at least once.
    primed: bool,
    /// Gates evaluated over the simulator's lifetime (activity metric).
    evals: u64,
}

impl<'c> EventSim<'c> {
    /// Creates a simulator with all flip-flops and nets at X.
    pub fn new(circuit: &'c Circuit, lines: &'c LineGraph) -> Self {
        let mut rank = vec![0u32; circuit.num_nodes()];
        for (i, &n) in circuit.topo_order().iter().enumerate() {
            rank[n.index()] = i as u32;
        }
        EventSim {
            circuit,
            lines,
            values: vec![Logic3::X; circuit.num_nodes()],
            ff_state: vec![Logic3::X; circuit.num_dffs()],
            rank,
            queued: vec![false; circuit.num_nodes()],
            last_fault: None,
            primed: false,
            evals: 0,
        }
    }

    /// Resets every flip-flop (and net) to X.
    pub fn reset_to_x(&mut self) {
        self.ff_state.fill(Logic3::X);
        self.values.fill(Logic3::X);
        self.primed = false;
    }

    /// Current flip-flop state, indexed like [`Circuit::dffs`].
    pub fn state(&self) -> &[Logic3] {
        &self.ff_state
    }

    /// Overwrites the flip-flop state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of flip-flops.
    pub fn set_state(&mut self, state: &[Logic3]) {
        assert_eq!(state.len(), self.ff_state.len(), "state width mismatch");
        self.ff_state.copy_from_slice(state);
        self.primed = false; // force full re-evaluation next step
    }

    /// Number of gate evaluations performed so far (the activity metric
    /// event-driven simulation exists to minimize).
    pub fn gate_evaluations(&self) -> u64 {
        self.evals
    }

    /// Applies one input vector, returns the primary outputs, clocks the
    /// flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn step(&mut self, inputs: &[Logic3], fault: Option<Fault>) -> Vec<Logic3> {
        let circuit = self.circuit;
        assert_eq!(inputs.len(), circuit.num_inputs(), "input width mismatch");
        let full = !self.primed || fault != self.last_fault;
        self.last_fault = fault;

        // Seed events: changed inputs and changed FF outputs.
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let push = |queued: &mut Vec<bool>, queue: &mut VecDeque<NodeId>, n: NodeId| {
            if !queued[n.index()] {
                queued[n.index()] = true;
                queue.push_back(n);
            }
        };
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            if full || self.values[pi.index()] != inputs[i] {
                self.values[pi.index()] = inputs[i];
                for &(sink, _) in circuit.fanouts(pi) {
                    push(&mut self.queued, &mut queue, sink);
                }
            }
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            if full || self.values[ff.index()] != self.ff_state[i] {
                self.values[ff.index()] = self.ff_state[i];
                for &(sink, _) in circuit.fanouts(ff) {
                    push(&mut self.queued, &mut queue, sink);
                }
            }
        }
        if full {
            for n in circuit.node_ids() {
                let kind = circuit.node(n).kind();
                if kind.is_logic() || kind == GateKind::Const0 || kind == GateKind::Const1 {
                    push(&mut self.queued, &mut queue, n);
                }
            }
        }

        // Selective trace in topological order.
        let mut pending: Vec<NodeId> = queue.into_iter().collect();
        pending.sort_by_key(|n| self.rank[n.index()]);
        let mut i = 0usize;
        while i < pending.len() {
            let n = pending[i];
            i += 1;
            self.queued[n.index()] = false;
            let kind = circuit.node(n).kind();
            if kind == GateKind::Dff {
                continue; // FF outputs change only at the clock edge
            }
            let new = match kind {
                GateKind::Const0 => Logic3::Zero,
                GateKind::Const1 => Logic3::One,
                GateKind::Input => self.values[n.index()],
                _ => {
                    self.evals += 1;
                    let pins: Vec<Logic3> = (0..circuit.node(n).fanin().len())
                        .map(|pin| self.pin_value(n, pin, fault))
                        .collect();
                    eval_gate(kind, &pins)
                }
            };
            let forced = match fault {
                Some(f) if self.lines.stem_of(n) == f.line => Logic3::from(f.stuck.as_bool()),
                _ => new,
            };
            if forced != self.values[n.index()] || full {
                self.values[n.index()] = forced;
                for &(sink, _) in circuit.fanouts(n) {
                    if !self.queued[sink.index()] && circuit.node(sink).kind() != GateKind::Dff {
                        self.queued[sink.index()] = true;
                        // Insert keeping topological order: ranks ahead of
                        // the cursor only (fanouts always rank higher).
                        let rank = self.rank[sink.index()];
                        let pos = pending[i..]
                            .binary_search_by_key(&rank, |m| self.rank[m.index()])
                            .unwrap_or_else(|e| e)
                            + i;
                        pending.insert(pos, sink);
                    }
                }
            }
        }

        let outputs: Vec<Logic3> = circuit
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect();
        // Clock edge.
        let mut next = Vec::with_capacity(self.ff_state.len());
        for &ff in circuit.dffs() {
            next.push(self.pin_value(ff, 0, fault));
        }
        self.ff_state.copy_from_slice(&next);
        self.primed = true;
        outputs
    }

    fn pin_value(&self, node: NodeId, pin: usize, fault: Option<Fault>) -> Logic3 {
        let src = self.circuit.node(node).fanin()[pin];
        match fault {
            Some(f) if self.lines.in_line(node, pin) == f.line => Logic3::from(f.stuck.as_bool()),
            _ => self.values[src.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use fires_netlist::bench;

    use super::*;
    use crate::{random_vectors, SeqSim};

    fn agree_on(src: &str, cycles: usize, seed: u64) {
        let c = bench::parse(src).unwrap();
        let lg = LineGraph::build(&c);
        let vectors = random_vectors(&c, cycles, seed);
        let mut reference = SeqSim::new(&c, &lg);
        let mut event = EventSim::new(&c, &lg);
        for (i, v) in vectors.iter().enumerate() {
            let a = reference.step(v, None);
            let b = event.step(v, None);
            assert_eq!(a, b, "cycle {i}");
            assert_eq!(reference.state(), event.state(), "state after cycle {i}");
        }
    }

    #[test]
    fn agrees_with_oblivious_simulator() {
        agree_on(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nq = DFF(m)\nm = NAND(a, q)\nz = XOR(m, b)\n",
            64,
            5,
        );
        agree_on("INPUT(en)\nOUTPUT(q)\nq = DFF(t)\nt = XOR(en, q)\n", 32, 9);
    }

    #[test]
    fn agrees_under_faults() {
        let c = bench::parse(
            "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\nq = DFF(s)\ns = BUFF(a)\ny = AND(s, q)\nz = NOT(s)\n",
        )
        .unwrap();
        let lg = LineGraph::build(&c);
        let vectors = random_vectors(&c, 32, 3);
        for fault in fires_netlist::FaultList::full(&lg).iter() {
            let mut reference = SeqSim::new(&c, &lg);
            let mut event = EventSim::new(&c, &lg);
            for v in &vectors {
                assert_eq!(
                    reference.step(v, Some(fault)),
                    event.step(v, Some(fault)),
                    "fault {}",
                    fault.display(&lg, &c)
                );
            }
        }
    }

    #[test]
    fn fault_switch_forces_reevaluation() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let z = lg.stem_of(c.find("z").unwrap());
        let mut sim = EventSim::new(&c, &lg);
        assert_eq!(sim.step(&[Logic3::One], None), vec![Logic3::One]);
        // Same input, new fault: the output must still change.
        assert_eq!(
            sim.step(&[Logic3::One], Some(Fault::sa0(z))),
            vec![Logic3::Zero]
        );
        // Fault removed again.
        assert_eq!(sim.step(&[Logic3::One], None), vec![Logic3::One]);
    }

    #[test]
    fn low_activity_skips_work() {
        // A wide circuit where only one lane toggles: the event simulator
        // must evaluate far fewer gates than cycles x gates.
        let mut src = String::from("INPUT(a)\nINPUT(b)\n");
        for i in 0..50 {
            src.push_str(&format!("g{i} = XOR(b, k{i})\n"));
            src.push_str(&format!("k{i} = BUFF(b)\n"));
        }
        src.push_str("hot = NOT(a)\nOUTPUT(hot)\nOUTPUT(g0)\n");
        let c = bench::parse(&src).unwrap();
        let lg = LineGraph::build(&c);
        let mut sim = EventSim::new(&c, &lg);
        // Priming step evaluates everything once.
        let _ = sim.step(&[Logic3::Zero, Logic3::Zero], None);
        let after_prime = sim.gate_evaluations();
        // 100 cycles toggling only `a`.
        for i in 0..100 {
            let _ = sim.step(&[Logic3::from(i % 2 == 0), Logic3::Zero], None);
        }
        let active = sim.gate_evaluations() - after_prime;
        assert!(
            active <= 100 * 3,
            "expected ~1 gate/cycle, evaluated {active}"
        );
    }

    #[test]
    fn set_state_forces_consistency() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = AND(q, a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let mut sim = EventSim::new(&c, &lg);
        sim.set_state(&[Logic3::One]);
        assert_eq!(sim.step(&[Logic3::One], None), vec![Logic3::One]);
        sim.reset_to_x();
        assert_eq!(sim.step(&[Logic3::One], None), vec![Logic3::X]);
    }
}
