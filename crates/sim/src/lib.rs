//! Three-valued sequential logic simulation and serial stuck-at fault
//! simulation for the FIRES reproduction.
//!
//! The simulator implements the classical 3-valued (0, 1, X) synchronous
//! model: all flip-flops share one implicit clock and power up in the
//! unknown state X. Fault simulation is *serial* (one faulty machine at a
//! time) and uses the conservative 3-valued detection criterion: a fault is
//! reported detected only when the good response is binary and the faulty
//! response is the opposite binary value — which guarantees detection for
//! every pair of initial states, matching Definition 1 of the paper.
//!
//! # Example
//!
//! ```
//! use fires_netlist::{bench, LineGraph};
//! use fires_sim::{Logic3, SeqSim};
//!
//! # fn main() -> Result<(), fires_netlist::NetlistError> {
//! let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = XOR(a, q)\n")?;
//! let lines = LineGraph::build(&c);
//! let mut sim = SeqSim::new(&c, &lines);
//! let out = sim.step(&[Logic3::One], None);
//! assert_eq!(out, vec![Logic3::X]); // q is still unknown
//! let out = sim.step(&[Logic3::One], None);
//! assert_eq!(out, vec![Logic3::Zero]); // q caught up with a
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eventsim;
mod faultsim;
mod logic;
mod parallel;
mod seqsim;
mod vectors;

pub use eventsim::EventSim;
pub use faultsim::{simulate_fault, simulate_faults, Detection, FaultSimSummary};
pub use logic::Logic3;
pub use parallel::parallel_simulate_faults;
pub use seqsim::SeqSim;
pub use vectors::{all_binary_vectors, random_vectors, VectorSet};
