//! The 3-valued logic domain.

use std::fmt;
use std::ops::Not;

/// A 3-valued logic value: 0, 1 or unknown (X).
///
/// X models both the unknown power-up state of flip-flops and don't-care
/// inputs. Operations follow the standard pessimistic (Kleene) tables:
/// `0 AND X = 0`, `1 AND X = X`, `NOT X = X`, `X XOR v = X`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Logic3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Logic3 {
    /// True if the value is 0 or 1.
    pub fn is_binary(self) -> bool {
        self != Logic3::X
    }

    /// Converts to `bool`, if binary.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic3::Zero => Some(false),
            Logic3::One => Some(true),
            Logic3::X => None,
        }
    }

    /// Kleene conjunction.
    pub fn and(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::Zero, _) | (_, Logic3::Zero) => Logic3::Zero,
            (Logic3::One, Logic3::One) => Logic3::One,
            _ => Logic3::X,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::One, _) | (_, Logic3::One) => Logic3::One,
            (Logic3::Zero, Logic3::Zero) => Logic3::Zero,
            _ => Logic3::X,
        }
    }

    /// Kleene exclusive-or.
    pub fn xor(self, other: Logic3) -> Logic3 {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic3::from(a ^ b),
            _ => Logic3::X,
        }
    }

    /// Returns `true` when the two values are *definitely different*:
    /// both binary and unequal. This is the conservative sequential
    /// detection criterion.
    pub fn definitely_differs(self, other: Logic3) -> bool {
        matches!(
            (self, other),
            (Logic3::Zero, Logic3::One) | (Logic3::One, Logic3::Zero)
        )
    }
}

impl Not for Logic3 {
    type Output = Logic3;
    fn not(self) -> Logic3 {
        match self {
            Logic3::Zero => Logic3::One,
            Logic3::One => Logic3::Zero,
            Logic3::X => Logic3::X,
        }
    }
}

impl From<bool> for Logic3 {
    fn from(v: bool) -> Logic3 {
        if v {
            Logic3::One
        } else {
            Logic3::Zero
        }
    }
}

impl fmt::Display for Logic3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Logic3::Zero => f.write_str("0"),
            Logic3::One => f.write_str("1"),
            Logic3::X => f.write_str("X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Logic3::{One, Zero, X};
    use super::*;

    #[test]
    fn kleene_and_tables() {
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.and(One), One);
        assert_eq!(X.and(X), X);
    }

    #[test]
    fn kleene_or_tables() {
        assert_eq!(One.or(X), One);
        assert_eq!(X.or(One), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(Zero.or(Zero), Zero);
    }

    #[test]
    fn xor_is_pessimistic() {
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.xor(X), X);
    }

    #[test]
    fn negation() {
        assert_eq!(!Zero, One);
        assert_eq!(!One, Zero);
        assert_eq!(!X, X);
    }

    #[test]
    fn definite_difference() {
        assert!(Zero.definitely_differs(One));
        assert!(!Zero.definitely_differs(X));
        assert!(!X.definitely_differs(X));
        assert!(!One.definitely_differs(One));
    }

    #[test]
    fn display_and_conversions() {
        assert_eq!(Logic3::from(true), One);
        assert_eq!(One.to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
        assert_eq!(format!("{Zero}{One}{X}"), "01X");
        assert_eq!(Logic3::default(), X);
    }
}
