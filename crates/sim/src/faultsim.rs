//! Serial stuck-at fault simulation.

use fires_netlist::{Circuit, Fault, LineGraph};

use crate::{Logic3, SeqSim, VectorSet};

/// Where and when a fault was first detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Detection {
    /// 0-based index of the detecting vector in the sequence.
    pub cycle: usize,
    /// 0-based index of the differing primary output.
    pub output: usize,
}

/// Aggregate result of simulating a fault list against one vector sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSimSummary {
    /// Per-fault detection, aligned with the input fault order.
    pub detections: Vec<Option<Detection>>,
    /// Machine-cycles actually simulated. The serial simulator drops a
    /// fault at its first detection, so this is usually well below
    /// [`cycles_offered`](Self::cycles_offered); the parallel simulator
    /// counts one cycle per batch pass instead.
    pub cycles_simulated: u64,
    /// Worst-case machine-cycles: `faults × vectors` for the serial
    /// simulator.
    pub cycles_offered: u64,
    /// Gate evaluations spent (good + faulty machines, where tracked).
    pub gate_evaluations: u64,
}

impl FaultSimSummary {
    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.detections.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in `[0, 1]`; 0 when the list is empty.
    pub fn coverage(&self) -> f64 {
        if self.detections.is_empty() {
            return 0.0;
        }
        self.num_detected() as f64 / self.detections.len() as f64
    }

    /// Cycles skipped by dropping faults at first detection.
    pub fn cycles_saved(&self) -> u64 {
        self.cycles_offered.saturating_sub(self.cycles_simulated)
    }

    /// Fraction of the offered cycles that early drops avoided, in
    /// `[0, 1]` (0 when nothing was offered).
    pub fn drop_fraction(&self) -> f64 {
        if self.cycles_offered == 0 {
            return 0.0;
        }
        self.cycles_saved() as f64 / self.cycles_offered as f64
    }
}

/// Simulates a single fault against a vector sequence, starting both the
/// good and the faulty machine from the all-X power-up state.
///
/// Detection uses the conservative 3-valued criterion (good and faulty
/// responses are opposite binary values), which guarantees the fault is
/// detected for *every* pair of initial states — i.e. detection in the
/// sense of Definition 1 of the paper.
///
/// # Example
///
/// ```
/// use fires_netlist::{bench, Fault, LineGraph};
/// use fires_sim::{random_vectors, simulate_fault};
///
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")?;
/// let lg = LineGraph::build(&c);
/// let fault = Fault::sa0(lg.stem_of(c.find("a").unwrap()));
/// let vectors = random_vectors(&c, 16, 1);
/// assert!(simulate_fault(&c, &lg, fault, &vectors).is_some());
/// # Ok(())
/// # }
/// ```
pub fn simulate_fault(
    circuit: &Circuit,
    lines: &LineGraph,
    fault: Fault,
    vectors: &VectorSet,
) -> Option<Detection> {
    simulate_fault_counted(circuit, lines, fault, vectors).0
}

/// Like [`simulate_fault`], additionally returning `(cycles stepped,
/// gate evaluations)` — the work the run cost, for drop statistics.
fn simulate_fault_counted(
    circuit: &Circuit,
    lines: &LineGraph,
    fault: Fault,
    vectors: &VectorSet,
) -> (Option<Detection>, u64, u64) {
    let mut good = SeqSim::new(circuit, lines);
    let mut bad = SeqSim::new(circuit, lines);
    let mut detection = None;
    let mut cycles = 0u64;
    for (cycle, v) in vectors.iter().enumerate() {
        cycles += 1;
        let g = good.step(v, None);
        let b = bad.step(v, Some(fault));
        if let Some(output) = first_definite_difference(&g, &b) {
            detection = Some(Detection { cycle, output });
            break;
        }
    }
    let evals = good.gate_evaluations() + bad.gate_evaluations();
    (detection, cycles, evals)
}

/// Serially simulates every fault in `faults` against `vectors`, dropping
/// each fault at its first detection and accounting the work saved.
pub fn simulate_faults(
    circuit: &Circuit,
    lines: &LineGraph,
    faults: &[Fault],
    vectors: &VectorSet,
) -> FaultSimSummary {
    let mut summary = FaultSimSummary {
        cycles_offered: faults.len() as u64 * vectors.len() as u64,
        ..FaultSimSummary::default()
    };
    for &f in faults {
        let (det, cycles, evals) = simulate_fault_counted(circuit, lines, f, vectors);
        summary.detections.push(det);
        summary.cycles_simulated += cycles;
        summary.gate_evaluations += evals;
    }
    summary
}

fn first_definite_difference(good: &[Logic3], bad: &[Logic3]) -> Option<usize> {
    good.iter()
        .zip(bad)
        .position(|(g, b)| g.definitely_differs(*b))
}

#[cfg(test)]
mod tests {
    use fires_netlist::{bench, FaultList};

    use super::*;
    use crate::random_vectors;

    #[test]
    fn detects_obvious_combinational_fault() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let z = lg.stem_of(c.find("z").unwrap());
        let vectors = random_vectors(&c, 8, 3);
        let det = simulate_fault(&c, &lg, Fault::sa1(z), &vectors);
        assert!(det.is_some());
    }

    #[test]
    fn sequential_fault_needs_initialization() {
        // z = AND(q, a) with q = DFF(a): q s-a-0 needs a=1 for two cycles.
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nz = AND(q, a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let q = lg.stem_of(c.find("q").unwrap());
        let ones = vec![vec![Logic3::One]; 3];
        let det = simulate_fault(&c, &lg, Fault::sa0(q), &ones).expect("detectable");
        assert_eq!(det.cycle, 1); // first cycle output is X in good machine
    }

    #[test]
    fn x_responses_do_not_count_as_detection() {
        // The good machine's output is X forever (uninitializable toggle FF),
        // so nothing is ever definitely detected.
        let c = bench::parse("INPUT(en)\nOUTPUT(q)\nq = DFF(t)\nt = XOR(en, q)\n").unwrap();
        let lg = LineGraph::build(&c);
        let vectors = random_vectors(&c, 32, 9);
        let summary = simulate_faults(&c, &lg, FaultList::full(&lg).as_slice(), &vectors);
        assert_eq!(summary.num_detected(), 0);
        assert_eq!(summary.coverage(), 0.0);
    }

    #[test]
    fn early_drop_saves_cycles() {
        // Every fault on the inverter is detected within the first couple
        // of cycles (whenever the input takes the exposing value), so well
        // under the 8 offered cycles per fault are actually simulated.
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let faults = FaultList::full(&lg);
        let vectors = random_vectors(&c, 8, 3);
        let summary = simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        assert_eq!(summary.num_detected(), faults.len());
        assert_eq!(summary.cycles_offered, (faults.len() * 8) as u64);
        assert!(summary.cycles_simulated >= faults.len() as u64);
        assert!(summary.cycles_simulated < summary.cycles_offered);
        assert_eq!(
            summary.cycles_saved(),
            summary.cycles_offered - summary.cycles_simulated
        );
        let expected = summary.cycles_saved() as f64 / summary.cycles_offered as f64;
        assert!((summary.drop_fraction() - expected).abs() < 1e-12);
        assert!(summary.gate_evaluations > 0);
    }

    #[test]
    fn undetected_faults_simulate_every_cycle() {
        let c = bench::parse("INPUT(en)\nOUTPUT(q)\nq = DFF(t)\nt = XOR(en, q)\n").unwrap();
        let lg = LineGraph::build(&c);
        let faults = FaultList::full(&lg);
        let vectors = random_vectors(&c, 32, 9);
        let summary = simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        assert_eq!(summary.num_detected(), 0);
        assert_eq!(summary.cycles_simulated, summary.cycles_offered);
        assert_eq!(summary.cycles_saved(), 0);
        assert_eq!(summary.drop_fraction(), 0.0);
    }

    #[test]
    fn coverage_accounting() {
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n").unwrap();
        let lg = LineGraph::build(&c);
        let faults = FaultList::full(&lg);
        let vectors = random_vectors(&c, 8, 11);
        let summary = simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        // Every fault on a buffer chain from PI to PO is detectable.
        assert_eq!(summary.num_detected(), faults.len());
        assert!((summary.coverage() - 1.0).abs() < 1e-12);
    }
}
