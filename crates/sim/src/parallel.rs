//! Bit-parallel fault simulation (parallel single-fault, PSF).
//!
//! Each bit position of a 64-bit word carries one machine: bit 0 is the
//! fault-free circuit, bits 1–63 are up to 63 faulty machines, all
//! simulated simultaneously with word-wide gate operations. Three-valued
//! logic uses the classic two-word encoding: `(ones, zeros)` bit masks
//! with X = neither bit set.
//!
//! The results are bit-exact with the serial simulator
//! ([`simulate_faults`](crate::simulate_faults)); differential property
//! tests enforce that.

use std::collections::HashMap;

use fires_netlist::{Circuit, Fault, GateKind, LineGraph, LineId, NodeId};

use crate::{Detection, FaultSimSummary, Logic3, VectorSet};

/// A 64-lane 3-valued word: lane k is 1 if bit k of `ones` is set, 0 if
/// bit k of `zeros` is set, X otherwise. `ones & zeros == 0` always.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct W3 {
    ones: u64,
    zeros: u64,
}

impl W3 {
    const X: W3 = W3 { ones: 0, zeros: 0 };

    fn splat(v: Logic3) -> W3 {
        match v {
            Logic3::One => W3 {
                ones: u64::MAX,
                zeros: 0,
            },
            Logic3::Zero => W3 {
                ones: 0,
                zeros: u64::MAX,
            },
            Logic3::X => W3::X,
        }
    }

    fn and(self, o: W3) -> W3 {
        W3 {
            ones: self.ones & o.ones,
            zeros: self.zeros | o.zeros,
        }
    }

    fn or(self, o: W3) -> W3 {
        W3 {
            ones: self.ones | o.ones,
            zeros: self.zeros & o.zeros,
        }
    }

    fn xor(self, o: W3) -> W3 {
        W3 {
            ones: (self.ones & o.zeros) | (self.zeros & o.ones),
            zeros: (self.ones & o.ones) | (self.zeros & o.zeros),
        }
    }

    fn not(self) -> W3 {
        W3 {
            ones: self.zeros,
            zeros: self.ones,
        }
    }

    /// Forces lanes of `mask1` to 1 and lanes of `mask0` to 0.
    fn force(self, mask1: u64, mask0: u64) -> W3 {
        W3 {
            ones: (self.ones & !mask0) | mask1,
            zeros: (self.zeros & !mask1) | mask0,
        }
    }
}

/// Per-line forcing masks derived from the fault batch.
#[derive(Clone, Debug, Default)]
struct ForceMap {
    map: HashMap<LineId, (u64, u64)>,
}

impl ForceMap {
    fn build(faults: &[Fault]) -> Self {
        let mut map: HashMap<LineId, (u64, u64)> = HashMap::new();
        for (k, f) in faults.iter().enumerate() {
            let lane = 1u64 << (k + 1); // lane 0 is the good machine
            let e = map.entry(f.line).or_default();
            if f.stuck.as_bool() {
                e.0 |= lane;
            } else {
                e.1 |= lane;
            }
        }
        ForceMap { map }
    }

    fn apply(&self, line: LineId, w: W3) -> W3 {
        match self.map.get(&line) {
            Some(&(m1, m0)) => w.force(m1, m0),
            None => w,
        }
    }
}

/// Simulates up to 63 faults in one pass over the vector sequence,
/// starting every machine from the all-X power-up state. Batches larger
/// fault lists internally.
///
/// Detection semantics match the serial simulator exactly: the good
/// response must be binary and the faulty response the opposite binary
/// value (conservative Definition-1 detection).
///
/// # Example
///
/// ```
/// use fires_netlist::{bench, FaultList, LineGraph};
/// use fires_sim::{parallel_simulate_faults, random_vectors};
///
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// let c = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")?;
/// let lines = LineGraph::build(&c);
/// let faults = FaultList::full(&lines);
/// let vectors = random_vectors(&c, 8, 1);
/// let summary = parallel_simulate_faults(&c, &lines, faults.as_slice(), &vectors);
/// assert_eq!(summary.num_detected(), faults.len());
/// # Ok(())
/// # }
/// ```
pub fn parallel_simulate_faults(
    circuit: &Circuit,
    lines: &LineGraph,
    faults: &[Fault],
    vectors: &VectorSet,
) -> FaultSimSummary {
    let mut detections = vec![None; faults.len()];
    let mut batches = 0u64;
    for (batch_idx, batch) in faults.chunks(63).enumerate() {
        batches += 1;
        let batch_dets = simulate_batch(circuit, lines, batch, vectors);
        for (i, d) in batch_dets.into_iter().enumerate() {
            detections[batch_idx * 63 + i] = d;
        }
    }
    FaultSimSummary {
        detections,
        // One word-wide pass per batch per vector; no early drop.
        cycles_simulated: batches * vectors.len() as u64,
        cycles_offered: faults.len() as u64 * vectors.len() as u64,
        // Word-wide gate ops are not comparable with scalar evaluations.
        gate_evaluations: 0,
    }
}

fn simulate_batch(
    circuit: &Circuit,
    lines: &LineGraph,
    batch: &[Fault],
    vectors: &VectorSet,
) -> Vec<Option<Detection>> {
    debug_assert!(batch.len() <= 63);
    let forces = ForceMap::build(batch);
    let mut values: Vec<W3> = vec![W3::X; circuit.num_nodes()];
    let mut state: Vec<W3> = vec![W3::X; circuit.num_dffs()];
    let mut detections: Vec<Option<Detection>> = vec![None; batch.len()];

    let pin_value = |values: &[W3], node: NodeId, pin: usize| -> W3 {
        let src = circuit.node(node).fanin()[pin];
        forces.apply(lines.in_line(node, pin), values[src.index()])
    };

    for (cycle, vector) in vectors.iter().enumerate() {
        assert_eq!(vector.len(), circuit.num_inputs(), "input width mismatch");
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = W3::splat(vector[i]);
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            values[ff.index()] = state[i];
        }
        for &id in circuit.topo_order() {
            let kind = circuit.node(id).kind();
            let w = match kind {
                GateKind::Input | GateKind::Dff => values[id.index()],
                GateKind::Const0 => W3::splat(Logic3::Zero),
                GateKind::Const1 => W3::splat(Logic3::One),
                GateKind::Not | GateKind::Buf => {
                    let v = pin_value(&values, id, 0);
                    if kind == GateKind::Not {
                        v.not()
                    } else {
                        v
                    }
                }
                _ => {
                    let n = circuit.node(id).fanin().len();
                    let mut acc = match kind {
                        GateKind::And | GateKind::Nand => W3::splat(Logic3::One),
                        _ => W3::splat(Logic3::Zero),
                    };
                    for pin in 0..n {
                        let v = pin_value(&values, id, pin);
                        acc = match kind {
                            GateKind::And | GateKind::Nand => acc.and(v),
                            GateKind::Or | GateKind::Nor => acc.or(v),
                            GateKind::Xor | GateKind::Xnor => acc.xor(v),
                            _ => unreachable!("single-input handled above"),
                        };
                    }
                    if kind.is_inverting() {
                        acc.not()
                    } else {
                        acc
                    }
                }
            };
            // Stem forcing applies to the node's own output net.
            values[id.index()] = forces.apply(lines.stem_of(id), w);
        }
        // Observe.
        for (out_idx, &po) in circuit.outputs().iter().enumerate() {
            let w = values[po.index()];
            let good_binary = (w.ones | w.zeros) & 1 != 0;
            if !good_binary {
                continue;
            }
            let opposite = if w.ones & 1 != 0 { w.zeros } else { w.ones };
            let mut hits = opposite & !1;
            while hits != 0 {
                let lane = hits.trailing_zeros() as usize;
                hits &= hits - 1;
                let det = &mut detections[lane - 1];
                if det.is_none() {
                    *det = Some(Detection {
                        cycle,
                        output: out_idx,
                    });
                }
            }
        }
        // Clock.
        let mut next = Vec::with_capacity(state.len());
        for &ff in circuit.dffs() {
            next.push(pin_value(&values, ff, 0));
        }
        state.copy_from_slice(&next);
    }
    detections
}

#[cfg(test)]
mod tests {
    use fires_netlist::{bench, FaultList};

    use super::*;
    use crate::{random_vectors, simulate_faults};

    fn differential(src: &str, cycles: usize, seed: u64) {
        let c = bench::parse(src).unwrap();
        let lg = LineGraph::build(&c);
        let faults = FaultList::full(&lg);
        let vectors = random_vectors(&c, cycles, seed);
        let serial = simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        let parallel = parallel_simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        assert_eq!(serial.detections, parallel.detections);
    }

    #[test]
    fn matches_serial_on_combinational() {
        differential("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n", 16, 1);
    }

    #[test]
    fn matches_serial_on_sequential_with_fanout() {
        differential(
            "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\nq = DFF(s)\ns = BUFF(a)\n\
             y = AND(s, q)\nz = NOT(s)\n",
            48,
            7,
        );
    }

    #[test]
    fn matches_serial_on_s27() {
        let c = fires_circuits_s27();
        let lg = LineGraph::build(&c);
        let faults = FaultList::full(&lg);
        let vectors = random_vectors(&c, 64, 11);
        let serial = simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        let parallel = parallel_simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        assert_eq!(serial.detections, parallel.detections);
    }

    #[test]
    fn matches_serial_across_batches() {
        // A wide circuit with > 63 faults exercises the batching path.
        let mut src = String::from("INPUT(a)\nINPUT(b)\n");
        for i in 0..40 {
            src.push_str(&format!(
                "g{i} = {}(a, b)\nOUTPUT(g{i})\n",
                ["AND", "OR", "XOR", "NAND"][i % 4]
            ));
        }
        let c = bench::parse(&src).unwrap();
        let lg = LineGraph::build(&c);
        let faults = FaultList::full(&lg);
        assert!(
            faults.len() > 63,
            "want multiple batches, got {}",
            faults.len()
        );
        let vectors = random_vectors(&c, 8, 2);
        let serial = simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        let parallel = parallel_simulate_faults(&c, &lg, faults.as_slice(), &vectors);
        assert_eq!(serial.detections, parallel.detections);
    }

    /// Local copy of the s27 netlist to avoid a circular dev-dependency on
    /// fires-circuits.
    fn fires_circuits_s27() -> fires_netlist::Circuit {
        bench::parse(
            "INPUT(G0)\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\nOUTPUT(G17)\n\
             G5 = DFF(G10)\nG6 = DFF(G11)\nG7 = DFF(G13)\nG14 = NOT(G0)\n\
             G17 = NOT(G11)\nG8 = AND(G14, G6)\nG15 = OR(G12, G8)\n\
             G16 = OR(G3, G8)\nG9 = NAND(G16, G15)\nG10 = NOR(G14, G11)\n\
             G11 = NOR(G5, G9)\nG12 = NOR(G1, G7)\nG13 = NOR(G2, G12)\n",
        )
        .unwrap()
    }

    #[test]
    fn w3_algebra() {
        let one = W3::splat(Logic3::One);
        let zero = W3::splat(Logic3::Zero);
        let x = W3::X;
        assert_eq!(one.and(x), x);
        assert_eq!(zero.and(x), zero);
        assert_eq!(one.or(x), one);
        assert_eq!(zero.or(x), x);
        assert_eq!(one.xor(one), zero);
        assert_eq!(one.xor(x), x);
        assert_eq!(x.not(), x);
        assert_eq!(one.not(), zero);
        // Invariant: ones and zeros never overlap.
        let f = one.force(0b10, 0b01);
        assert_eq!(f.ones & f.zeros, 0);
    }

    #[test]
    fn force_masks_target_single_lanes() {
        let w = W3::splat(Logic3::Zero);
        let forced = w.force(0b100, 0);
        assert_eq!(forced.ones, 0b100);
        assert_eq!(forced.zeros & 0b100, 0);
        assert_eq!(forced.zeros | 0b100, u64::MAX);
    }
}
