//! Prints the canonical FIRES results for an embedded netlist.
//!
//! CI runs this example with and without `--no-default-features` and
//! diffs the output byte-for-byte: the identified faults must never
//! depend on whether instrumentation (and with it the hotspot profiler)
//! is compiled in.

use fires_core::{Fires, FiresConfig};
use fires_netlist::bench;

const NETLIST: &str = "\
INPUT(a)\n\
INPUT(b)\n\
OUTPUT(d)\n\
OUTPUT(c)\n\
OUTPUT(z)\n\
OUTPUT(w)\n\
OUTPUT(x)\n\
q = DFF(a)\n\
bq = DFF(a)\n\
c = DFF(a)\n\
d = AND(bq, c)\n\
n = NOT(b)\n\
z = AND(b, n)\n\
w = OR(q, z)\n\
x = XOR(b, n)\n\
";

fn main() {
    let circuit = bench::parse(NETLIST).expect("embedded netlist parses");
    let fires = Fires::new(&circuit, FiresConfig::with_max_frames(5));
    let report = fires.run();
    println!("stems_processed {}", report.stems_processed());
    println!("marks_created {}", report.marks_created());
    println!("max_frames_used {}", report.max_frames_used());
    for fault in report.display_faults() {
        println!("{fault}");
    }
}
