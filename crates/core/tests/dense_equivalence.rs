//! Property test: the bit-packed dense implication engine is observably
//! identical to the paper-literal sparse engine it replaced.
//!
//! `sparse_ref` below is a deliberately naive reimplementation of the
//! engine as it existed before the dense storage redesign: `HashMap`
//! indicator maps, `VecDeque` worklists, per-mark `Vec` parent and blame
//! sets. It keeps the exact rule application order, worklist discipline,
//! and [`EngineStats`] counting points, so any divergence in the dense
//! engine — indicator sets, blame sets, mark derivations, stats — fails
//! the property. The reference skips only budgets, cancellation, and
//! profiling, none of which fire under the unlimited defaults used here.

use std::collections::{HashMap, VecDeque};

use fires_circuits::generators::{random_sequential, RandomConfig};
use fires_core::{
    EngineStats, FiresConfig, Frame, Implications, IndicatorView, ProcessScratch, Unc, Window,
};
use fires_netlist::graph::min_ff_distance_rev;
use fires_netlist::{Circuit, GateKind, LineGraph, LineId, LineKind, NodeId};
use proptest::prelude::*;

fn bit(unc: Unc) -> usize {
    usize::from(unc.value())
}

fn swap_bits(mask: u8) -> u8 {
    ((mask & 0b01) << 1) | ((mask & 0b10) >> 1)
}

/// A mark in the reference engine, mirroring the old `Mark` struct.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RefMark {
    line: LineId,
    frame: Frame,
    unc: Unc,
    parents: Vec<u32>,
    min_frame: Frame,
    axiom: bool,
}

mod sparse_ref {
    use super::*;

    pub struct SparseEngine<'c> {
        circuit: &'c Circuit,
        lines: &'c LineGraph,
        config: FiresConfig,
        pub window: Window,
        pub marks: Vec<RefMark>,
        index: HashMap<(LineId, Frame), [Option<u32>; 2]>,
        queue: VecDeque<u32>,
        pub unobs: HashMap<(LineId, Frame), Vec<u32>>,
        uqueue: VecDeque<(LineId, Frame)>,
        const_frames_done: Vec<Frame>,
        truncated: bool,
        pub stats: EngineStats,
        dist: HashMap<LineId, Vec<u32>>,
    }

    impl<'c> SparseEngine<'c> {
        pub fn new(circuit: &'c Circuit, lines: &'c LineGraph, config: FiresConfig) -> Self {
            let window = Window::new(config.max_frames.max(1));
            let mut s = SparseEngine {
                circuit,
                lines,
                config,
                window,
                marks: Vec::new(),
                index: HashMap::new(),
                queue: VecDeque::new(),
                unobs: HashMap::new(),
                uqueue: VecDeque::new(),
                const_frames_done: Vec::new(),
                truncated: false,
                stats: EngineStats::default(),
                dist: HashMap::new(),
            };
            s.ensure_const_axioms();
            s
        }

        pub fn assume(&mut self, line: LineId, unc: Unc) {
            self.add_mark(line, 0, unc, Vec::new(), false);
        }

        pub fn propagate(&mut self) {
            self.run_uncontrollability();
            self.run_unobservability();
        }

        pub fn mark_at(&self, line: LineId, frame: Frame, unc: Unc) -> Option<u32> {
            self.index.get(&(line, frame)).and_then(|e| e[bit(unc)])
        }

        fn run_uncontrollability(&mut self) {
            while let Some(id) = self.queue.pop_front() {
                if self.truncated {
                    self.queue.clear();
                    break;
                }
                self.process_mark(id);
            }
        }

        fn add_mark(
            &mut self,
            line: LineId,
            frame: Frame,
            unc: Unc,
            parents: Vec<u32>,
            axiom: bool,
        ) -> Option<u32> {
            if !self.window.contains(frame) {
                if !self.window.try_extend_to(frame) {
                    return None;
                }
                self.stats.window_extensions += 1;
                self.ensure_const_axioms();
            }
            let entry = self.index.entry((line, frame)).or_default();
            if let Some(existing) = entry[bit(unc)] {
                return Some(existing);
            }
            if self.marks.len() >= self.config.mark_budget {
                self.truncated = true;
                return None;
            }
            let min_frame = parents
                .iter()
                .map(|&p| self.marks[p as usize].min_frame)
                .fold(frame, Frame::min);
            let id = self.marks.len() as u32;
            self.marks.push(RefMark {
                line,
                frame,
                unc,
                parents,
                min_frame,
                axiom,
            });
            self.index.get_mut(&(line, frame)).expect("just inserted")[bit(unc)] = Some(id);
            self.queue.push_back(id);
            self.stats.enqueued += 1;
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
            Some(id)
        }

        fn ensure_const_axioms(&mut self) {
            let consts: Vec<(NodeId, Unc)> = self
                .circuit
                .node_ids()
                .filter_map(|n| match self.circuit.node(n).kind() {
                    GateKind::Const0 => Some((n, Unc::One)),
                    GateKind::Const1 => Some((n, Unc::Zero)),
                    _ => None,
                })
                .collect();
            if consts.is_empty() {
                return;
            }
            for t in self.window.leftmost()..=self.window.rightmost() {
                if self.const_frames_done.contains(&t) {
                    continue;
                }
                self.const_frames_done.push(t);
                for &(n, unc) in &consts {
                    let stem = self.lines.stem_of(n);
                    self.add_mark(stem, t, unc, Vec::new(), true);
                }
            }
        }

        fn process_mark(&mut self, id: u32) {
            let (line_id, frame, unc) = {
                let m = &self.marks[id as usize];
                (m.line, m.frame, m.unc)
            };
            let lines = self.lines;
            let line = lines.line(line_id);
            for &b in line.branches() {
                self.add_mark(b, frame, unc, vec![id], false);
            }
            match line.kind() {
                LineKind::Branch { node, .. } => {
                    let stem = self.lines.stem_of(node);
                    self.add_mark(stem, frame, unc, vec![id], false);
                }
                LineKind::Stem { node } => {
                    let kind = self.circuit.node(node).kind();
                    if kind == GateKind::Dff {
                        let d = self.lines.in_line(node, 0);
                        self.add_mark(d, frame - 1, unc, vec![id], false);
                    } else if kind.is_logic() {
                        self.eval_gate_backward(node, frame);
                    }
                }
            }
            if let Some((sink, _)) = line.sink_pin() {
                match self.circuit.node(sink).kind() {
                    GateKind::Dff => {
                        let q = self.lines.stem_of(sink);
                        self.add_mark(q, frame + 1, unc, vec![id], false);
                    }
                    k if k.is_logic() => {
                        self.eval_gate_forward(sink, frame);
                        self.eval_gate_backward(sink, frame);
                    }
                    _ => {}
                }
            }
        }

        fn possible_mask(&self, line: LineId, frame: Frame) -> u8 {
            let mut mask = 0b11;
            if self.mark_at(line, frame, Unc::Zero).is_some() {
                mask &= !0b01;
            }
            if self.mark_at(line, frame, Unc::One).is_some() {
                mask &= !0b10;
            }
            mask
        }

        fn eval_gate_forward(&mut self, gate: NodeId, frame: Frame) {
            let kind = self.circuit.node(gate).kind();
            let lines = self.lines;
            let out = lines.stem_of(gate);
            let ins: Vec<LineId> = lines.in_lines(gate).to_vec();
            let inv = kind.is_inverting();
            match kind {
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let c = kind.controlling_value().expect("controlling");
                    if let Some(&blocked) = ins
                        .iter()
                        .find(|&&i| self.mark_at(i, frame, Unc::cannot_be(!c)).is_some())
                    {
                        let m = self
                            .mark_at(blocked, frame, Unc::cannot_be(!c))
                            .expect("just found");
                        self.add_mark(out, frame, Unc::cannot_be(!c ^ inv), vec![m], false);
                    }
                    let all: Option<Vec<u32>> = ins
                        .iter()
                        .map(|&i| self.mark_at(i, frame, Unc::cannot_be(c)))
                        .collect();
                    if let Some(parents) = all {
                        self.add_mark(out, frame, Unc::cannot_be(c ^ inv), parents, false);
                    }
                }
                GateKind::Not | GateKind::Buf => {
                    for unc in [Unc::Zero, Unc::One] {
                        if let Some(m) = self.mark_at(ins[0], frame, unc) {
                            let v = unc.value() ^ inv;
                            self.add_mark(out, frame, Unc::cannot_be(v), vec![m], false);
                        }
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let mut achievable: u8 = 0b01;
                    let mut support: Vec<u32> = Vec::new();
                    let mut contradiction = false;
                    for &i in &ins {
                        let pm = self.possible_mask(i, frame);
                        for unc in [Unc::Zero, Unc::One] {
                            if let Some(m) = self.mark_at(i, frame, unc) {
                                support.push(m);
                            }
                        }
                        achievable = match pm {
                            0b00 => {
                                contradiction = true;
                                break;
                            }
                            0b01 => achievable,
                            0b10 => swap_bits(achievable),
                            _ => achievable | swap_bits(achievable),
                        };
                    }
                    if contradiction {
                        achievable = 0;
                    }
                    for w in [false, true] {
                        let reachable = achievable >> usize::from(w) & 1 == 1;
                        if !reachable && !support.is_empty() {
                            self.add_mark(
                                out,
                                frame,
                                Unc::cannot_be(w ^ inv),
                                support.clone(),
                                false,
                            );
                        }
                    }
                }
                _ => {}
            }
        }

        fn eval_gate_backward(&mut self, gate: NodeId, frame: Frame) {
            let kind = self.circuit.node(gate).kind();
            let lines = self.lines;
            let out = lines.stem_of(gate);
            let ins: Vec<LineId> = lines.in_lines(gate).to_vec();
            let inv = kind.is_inverting();
            match kind {
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let c = kind.controlling_value().expect("controlling");
                    if let Some(m) = self.mark_at(out, frame, Unc::cannot_be(c ^ inv)) {
                        for &i in &ins {
                            self.add_mark(i, frame, Unc::cannot_be(c), vec![m], false);
                        }
                    }
                    if let Some(m) = self.mark_at(out, frame, Unc::cannot_be(!c ^ inv)) {
                        for (k, &i) in ins.iter().enumerate() {
                            let siblings: Option<Vec<u32>> = ins
                                .iter()
                                .enumerate()
                                .filter(|&(j, _)| j != k)
                                .map(|(_, &j)| self.mark_at(j, frame, Unc::cannot_be(c)))
                                .collect();
                            if let Some(mut parents) = siblings {
                                parents.push(m);
                                self.add_mark(i, frame, Unc::cannot_be(!c), parents, false);
                            }
                        }
                    }
                }
                GateKind::Not | GateKind::Buf => {
                    for w in [false, true] {
                        if let Some(m) = self.mark_at(out, frame, Unc::cannot_be(w)) {
                            self.add_mark(ins[0], frame, Unc::cannot_be(w ^ inv), vec![m], false);
                        }
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    for w_out in [false, true] {
                        let Some(m) = self.mark_at(out, frame, Unc::cannot_be(w_out)) else {
                            continue;
                        };
                        let w_core = w_out ^ inv;
                        for (k, &i) in ins.iter().enumerate() {
                            let mut parity = false;
                            let mut parents = vec![m];
                            let mut pinned = true;
                            for (j, &lj) in ins.iter().enumerate() {
                                if j == k {
                                    continue;
                                }
                                match self.possible_mask(lj, frame) {
                                    0b01 => {
                                        parents
                                            .push(self.mark_at(lj, frame, Unc::One).expect("mask"));
                                    }
                                    0b10 => {
                                        parity ^= true;
                                        parents.push(
                                            self.mark_at(lj, frame, Unc::Zero).expect("mask"),
                                        );
                                    }
                                    _ => {
                                        pinned = false;
                                        break;
                                    }
                                }
                            }
                            if pinned {
                                let banned = w_core ^ parity;
                                self.add_mark(i, frame, Unc::cannot_be(banned), parents, false);
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        fn run_unobservability(&mut self) {
            self.seed_blocked_pins();
            self.seed_dangling_lines();
            while let Some((line, frame)) = self.uqueue.pop_front() {
                self.process_unobs(line, frame);
            }
        }

        fn seed_blocked_pins(&mut self) {
            for mid in 0..self.marks.len() as u32 {
                let (line_id, frame, unc) = {
                    let m = &self.marks[mid as usize];
                    (m.line, m.frame, m.unc)
                };
                let Some((sink, pin)) = self.lines.line(line_id).sink_pin() else {
                    continue;
                };
                let kind = self.circuit.node(sink).kind();
                let Some(c) = kind.controlling_value() else {
                    continue;
                };
                if unc != Unc::cannot_be(!c) {
                    continue;
                }
                let ins: Vec<LineId> = self.lines.in_lines(sink).to_vec();
                for (j, &other) in ins.iter().enumerate() {
                    if j != pin {
                        self.add_unobs(other, frame, vec![mid]);
                    }
                }
            }
        }

        fn seed_dangling_lines(&mut self) {
            let dangling: Vec<LineId> = self
                .lines
                .line_ids()
                .filter(|&l| {
                    let line = self.lines.line(l);
                    line.is_stem()
                        && line.branches().is_empty()
                        && line.sink_pin().is_none()
                        && !self.circuit.is_output(line.driver())
                })
                .collect();
            for l in dangling {
                for t in self.window.leftmost()..=self.window.rightmost() {
                    self.add_unobs(l, t, Vec::new());
                }
            }
        }

        fn add_unobs(&mut self, line: LineId, frame: Frame, blame: Vec<u32>) {
            if !self.window.contains(frame) {
                if !self.window.try_extend_to(frame) {
                    return;
                }
                self.stats.window_extensions += 1;
            }
            if blame.len() > self.config.blame_cap {
                self.stats.blame_cap_rejections += 1;
                return;
            }
            if self.unobs.contains_key(&(line, frame)) {
                return;
            }
            let mut blame = blame;
            blame.sort_unstable();
            blame.dedup();
            self.unobs.insert((line, frame), blame);
            self.uqueue.push_back((line, frame));
            self.stats.enqueued += 1;
            self.stats.max_unobs_queue_depth =
                self.stats.max_unobs_queue_depth.max(self.uqueue.len());
        }

        fn process_unobs(&mut self, line_id: LineId, frame: Frame) {
            let line = self.lines.line(line_id);
            match line.kind() {
                LineKind::Branch { node, .. } => self.try_stem_merge(node, frame),
                LineKind::Stem { node } => match self.circuit.node(node).kind() {
                    GateKind::Dff => {
                        let blame = self.unobs[&(line_id, frame)].clone();
                        let d = self.lines.in_line(node, 0);
                        self.add_unobs(d, frame - 1, blame);
                    }
                    k if k.is_logic() => {
                        let blame = self.unobs[&(line_id, frame)].clone();
                        let ins: Vec<LineId> = self.lines.in_lines(node).to_vec();
                        for i in ins {
                            self.add_unobs(i, frame, blame.clone());
                        }
                    }
                    _ => {}
                },
            }
        }

        fn try_stem_merge(&mut self, node: NodeId, frame: Frame) {
            if self.circuit.is_output(node) {
                return;
            }
            let stem = self.lines.stem_of(node);
            if self.unobs.contains_key(&(stem, frame)) {
                return;
            }
            let branches: Vec<LineId> = self.lines.line(stem).branches().to_vec();
            let mut blame: Vec<u32> = Vec::new();
            for &b in &branches {
                match self.unobs.get(&(b, frame)) {
                    Some(info) => blame.extend_from_slice(info),
                    None => return,
                }
            }
            blame.sort_unstable();
            blame.dedup();
            if blame.len() > self.config.blame_cap {
                self.stats.blame_cap_rejections += 1;
                return;
            }
            for &mid in &blame {
                let (p_line, j) = {
                    let m = &self.marks[mid as usize];
                    (m.line, m.frame)
                };
                if j < frame {
                    continue;
                }
                let dist = self
                    .dist
                    .entry(p_line)
                    .or_insert_with(|| min_ff_distance_rev(self.circuit, self.lines, p_line));
                let allowed = (j - frame) as u32;
                if dist[stem.index()] <= allowed {
                    return;
                }
            }
            self.add_unobs(stem, frame, blame);
        }
    }
}

/// Runs the dense engine with a (possibly dirty) scratch pool and asserts
/// it is observably identical to the sparse reference on the same input.
fn assert_equivalent(
    circuit: &Circuit,
    lines: &LineGraph,
    config: FiresConfig,
    stem: LineId,
    unc: Unc,
    scratch: ProcessScratch,
) -> Result<ProcessScratch, TestCaseError> {
    let mut reference = sparse_ref::SparseEngine::new(circuit, lines, config);
    reference.assume(stem, unc);
    reference.propagate();

    let mut dense = Implications::with_scratch(circuit, lines, config, scratch);
    dense.assume(stem, unc);
    dense.propagate();

    prop_assert_eq!(dense.window().leftmost(), reference.window.leftmost());
    prop_assert_eq!(dense.window().rightmost(), reference.window.rightmost());

    // Mark-for-mark identity: same derivation order, parents, min-frames.
    prop_assert_eq!(dense.num_marks(), reference.marks.len());
    for id in dense.mark_ids() {
        let got = dense.mark(id);
        let want = &reference.marks[id.index()];
        prop_assert_eq!(got.line, want.line);
        prop_assert_eq!(got.frame, want.frame);
        prop_assert_eq!(got.unc, want.unc);
        prop_assert_eq!(got.min_frame, want.min_frame);
        prop_assert_eq!(got.axiom, want.axiom);
        let got_parents: Vec<u32> = got.parents.iter().map(|p| p.index() as u32).collect();
        prop_assert_eq!(&got_parents, &want.parents);
    }

    // Identical uncontrollability indicator sets, probed point-wise.
    for l in lines.line_ids() {
        for t in reference.window.leftmost()..=reference.window.rightmost() {
            for u in [Unc::Zero, Unc::One] {
                let want = reference.mark_at(l, t, u);
                let got = dense.unc_mark(l, t, u).map(|m| m.index() as u32);
                prop_assert_eq!(got, want, "unc disagreement at {:?}@{} {:?}", l, t, u);
            }
        }
    }

    // Identical unobservability sets with identical sorted blame.
    let dense_unobs: Vec<((LineId, Frame), Vec<u32>)> = dense
        .unobs_iter()
        .map(|(l, t, blame)| ((l, t), blame.iter().map(|m| m.index() as u32).collect()))
        .collect();
    prop_assert_eq!(dense_unobs.len(), reference.unobs.len());
    for ((l, t), blame) in &dense_unobs {
        let want = reference.unobs.get(&(*l, *t));
        prop_assert_eq!(Some(blame), want, "unobs disagreement at {:?}@{}", l, t);
    }

    prop_assert_eq!(dense.stats(), reference.stats);
    Ok(dense.into_scratch())
}

fn random_case(seed: u64, frames: usize) -> (Circuit, FiresConfig) {
    let circuit = random_sequential(&RandomConfig {
        seed,
        inputs: 1 + (seed % 5) as usize,
        gates: 4 + (seed % 29) as usize,
        ffs: (seed % 5) as usize,
        outputs: 1 + (seed % 3) as usize,
        fig3: (seed % 2) as usize,
        chains: ((seed % 2) as usize, 1 + (seed % 3) as usize),
        conflicts: (seed % 2) as usize,
    });
    (circuit, FiresConfig::with_max_frames(frames))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn dense_engine_matches_sparse_reference(
        seed in 0u64..10_000,
        frames in 1usize..6,
        stem_pick in 0usize..8,
        assume_one in 0u8..2,
    ) {
        let (circuit, config) = random_case(seed, frames);
        let lines = LineGraph::build(&circuit);
        let stems: Vec<LineId> = lines.fanout_stems(&circuit).collect();
        prop_assume!(!stems.is_empty());
        let stem = stems[stem_pick % stems.len()];
        let unc = if assume_one == 1 { Unc::One } else { Unc::Zero };
        assert_equivalent(&circuit, &lines, config, stem, unc, ProcessScratch::default())?;
    }

    /// The scratch pool must never leak state between runs: chain three
    /// unrelated random cases through one pool and hold equivalence with
    /// a from-scratch sparse reference each time.
    #[test]
    fn scratch_pool_reuse_stays_equivalent(
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
        seed_c in 0u64..10_000,
        frames in 1usize..5,
    ) {
        let mut scratch = ProcessScratch::default();
        for seed in [seed_a, seed_b, seed_c] {
            let (circuit, config) = random_case(seed, frames);
            let lines = LineGraph::build(&circuit);
            let stems: Vec<LineId> = lines.fanout_stems(&circuit).collect();
            let Some(&stem) = stems.first() else { continue };
            let unc = if seed % 2 == 0 { Unc::Zero } else { Unc::One };
            scratch = assert_equivalent(&circuit, &lines, config, stem, unc, scratch)?;
        }
    }
}
