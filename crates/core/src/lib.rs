//! FIRES — *Identifying Sequential Redundancies Without Search*
//! (Iyer, Long, Abramovici, DAC 1996), reproduced in Rust.
//!
//! FIRES identifies *c-cycle redundant* stuck-at faults in synchronous
//! sequential circuits without any search. For every fanout stem `s` it
//! runs two *sequential implication* processes — assume `s` uncontrollable
//! for 0, then for 1 — propagating uncontrollability and unobservability
//! indicators through a bounded window of time frames. A fault that appears
//! in both processes **in the same time frame** needs the conflict
//! `s = 0 ∧ s = 1` for detection and is therefore redundant once the
//! machine has been clocked `c_f` times after power-up.
//!
//! The crate exposes:
//!
//! * [`Fires`] — the full sequential algorithm (paper Section 5), with and
//!   without the faulty-circuit validation step of Definition 6;
//! * [`fire`] — the combinational special case (paper Section 2);
//! * [`remove_redundancies`] — redundancy removal with constant sweeping
//!   (the synthesis application of Sections 1 and 7);
//! * the underlying implication engine, reusable for other
//!   testability analyses.
//!
//! # Quick start
//!
//! ```
//! use fires_core::{Fires, FiresConfig};
//! use fires_netlist::bench;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Paper Figure 3: `c1 s-a-1` is 1-cycle redundant.
//! let circuit = bench::parse(
//!     "INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n",
//! )?;
//! let report = Fires::new(&circuit, FiresConfig::default()).run();
//! assert!(report
//!     .redundant_faults()
//!     .iter()
//!     .any(|r| r.fault.display(report.lines(), &circuit).contains("s-a-1")));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod config;
mod engine;
mod envelope;
mod error;
mod fire;
mod fires;
mod guard;
mod hash;
mod instrument;
mod removal;
mod report;
mod window;

pub use cancel::CancelToken;
pub use config::{FiresConfig, ProgressEvent, ValidationPolicy};
pub use engine::{
    DistCache, EngineScratch, EngineStats, Implications, IndicatorView, MarkId, MarkIds, MarkView,
    ProcessScratch, Unc, MARK_FOOTPRINT_BYTES, UNOBS_FOOTPRINT_BYTES,
};
pub use error::CoreError;
// With the `tracing` feature these are the `fires-obs` types; without it,
// no-op stubs with the same API (see `instrument.rs`).
pub use envelope::{funtest_like, EnvelopeReport};
pub use fire::{fire, FireReport};
pub use fires::{Fires, StemCtx, StemCtxBuilder, StemFindings, StemOutcome, StemStats};
pub use guard::{Budget, ExhaustionReason};
pub use hash::{content_hash, ContentHasher};
pub use instrument::{PhaseTimes, RuleProfile, RunMetrics};
pub use removal::{remove_fault, remove_redundancies, sweep_constants, RemovalOutcome};
pub use report::{FiresReport, IdentifiedFault, ProcessTrace};
pub use window::{Frame, Window};
