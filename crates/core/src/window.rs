//! The bounded time-frame window of one implication process.

use std::fmt;

/// A (relative) time frame index. Frame 0 is where the stem assumption is
/// made; negative frames are earlier cycles, positive frames later ones
/// (paper Figure 5).
pub type Frame = i32;

/// A window `[-b, +f]` of time frames with `b + f + 1 <= max_frames`.
///
/// The window grows on demand: when a mark wants to cross a flip-flop into
/// an adjacent frame, the engine asks the window to extend. Extension is
/// first-come-first-served until the `T_M` budget is exhausted, matching
/// the paper's bounded iterative-array model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Window {
    backward: Frame,
    forward: Frame,
    max_frames: usize,
}

impl Window {
    /// A window containing only frame 0, allowed to grow to `max_frames`
    /// total frames.
    ///
    /// # Panics
    ///
    /// Panics if `max_frames` is 0.
    pub fn new(max_frames: usize) -> Self {
        assert!(max_frames >= 1, "window needs at least one frame");
        Window {
            backward: 0,
            forward: 0,
            max_frames,
        }
    }

    /// Leftmost frame currently in the window (`-b`).
    pub fn leftmost(&self) -> Frame {
        self.backward
    }

    /// Rightmost frame currently in the window (`+f`).
    pub fn rightmost(&self) -> Frame {
        self.forward
    }

    /// Number of frames currently spanned.
    pub fn len(&self) -> usize {
        (self.forward - self.backward) as usize + 1
    }

    /// Whether only frame 0 exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `frame` is inside the current window.
    pub fn contains(&self, frame: Frame) -> bool {
        (self.backward..=self.forward).contains(&frame)
    }

    /// Tries to make `frame` available, growing the window by one frame at
    /// a time while the `T_M` budget allows. Returns whether `frame` is now
    /// inside the window.
    pub fn try_extend_to(&mut self, frame: Frame) -> bool {
        while !self.contains(frame) && self.len() < self.max_frames {
            if frame < self.backward {
                self.backward -= 1;
            } else {
                self.forward += 1;
            }
        }
        self.contains(frame)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.backward, self.forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_until_budget() {
        let mut w = Window::new(3);
        assert!(w.contains(0));
        assert!(w.try_extend_to(1));
        assert!(w.try_extend_to(-1));
        assert_eq!(w.len(), 3);
        // Budget exhausted: frame 2 is refused, window unchanged.
        assert!(!w.try_extend_to(2));
        assert_eq!((w.leftmost(), w.rightmost()), (-1, 1));
    }

    #[test]
    fn extension_is_incremental() {
        let mut w = Window::new(10);
        assert!(w.try_extend_to(4));
        assert_eq!(w.rightmost(), 4);
        assert_eq!(w.leftmost(), 0);
        assert!(w.try_extend_to(-5));
        assert_eq!(w.len(), 10);
        assert!(!w.try_extend_to(-6));
    }

    #[test]
    fn single_frame_window() {
        let mut w = Window::new(1);
        assert!(w.contains(0));
        assert!(!w.try_extend_to(1));
        assert!(!w.try_extend_to(-1));
        assert_eq!(w.to_string(), "[0, 0]");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = Window::new(0);
    }
}
