//! Typed errors for the fallible `fires-core` entry points.

use std::error::Error;
use std::fmt;

use fires_netlist::LineId;

/// Errors returned by the fallible driver entry points.
///
/// These cover *recoverable* conditions — bad caller input and cooperative
/// interruption. Genuine invariant violations inside the engine still
/// panic, which is what lets a supervising job runner treat any panic it
/// catches as a real bug rather than a misconfiguration.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The [`FiresConfig`](crate::FiresConfig) is unusable as given.
    InvalidConfig {
        /// What is wrong with it.
        message: String,
    },
    /// A stem-granular entry point was handed a line that is not a fanout
    /// stem of the circuit under analysis.
    NotAFanoutStem {
        /// The offending line.
        line: LineId,
    },
    /// The run was stopped by its [`CancelToken`](crate::CancelToken)
    /// (explicit cancellation or a deadline) before completing.
    Interrupted {
        /// The stem that was being processed when the token fired.
        stem: LineId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { message } => {
                write!(f, "invalid FIRES configuration: {message}")
            }
            CoreError::NotAFanoutStem { line } => {
                write!(f, "line {} is not a fanout stem", line.index())
            }
            CoreError::Interrupted { stem } => {
                write!(
                    f,
                    "run interrupted (cancelled or past deadline) at stem {}",
                    stem.index()
                )
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::InvalidConfig {
            message: "max_frames must be at least 1".into(),
        };
        assert!(e.to_string().contains("max_frames"));
        let e = CoreError::Interrupted {
            stem: LineId::new(7),
        };
        assert!(e.to_string().contains("stem 7"));
        let e = CoreError::NotAFanoutStem {
            line: LineId::new(3),
        };
        assert!(e.to_string().contains("not a fanout stem"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CoreError>();
    }
}
