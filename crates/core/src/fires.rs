//! The FIRES driver (paper Section 5.3, Figure 6).

use std::collections::HashMap;

use fires_netlist::{Circuit, Fault, GateKind, LineGraph, LineId, StuckValue};

use crate::cancel::CancelToken;
use crate::config::ProgressEvent;
use crate::engine::{DistCache, EngineScratch, Implications, IndicatorView, MarkId, Unc};
use crate::error::CoreError;
use crate::guard::{Budget, BudgetMeter, ExhaustionReason};
use crate::instrument::{core_span, PhaseClock, PhaseTimes, RuleProfile, RunMetrics};
use crate::report::{merge_candidate, FiresReport, IdentifiedFault, ProcessTrace};
use crate::window::Frame;
use crate::{FiresConfig, ValidationPolicy};

/// How many validation-loop entries pass between cancellation polls in
/// [`Fires::run_stem`]'s fault-set assembly.
const VALIDATION_POLL_STRIDE: u32 = 256;

/// What `process_stem` hands back for one stem.
struct ProcessedStem {
    found: usize,
    marks: usize,
    frames: usize,
    exhausted: Option<ExhaustionReason>,
    /// Per-rule hotspot attribution for this stem (empty without the
    /// `tracing` feature).
    profile: RuleProfile,
}

/// Phase names used by the driver's [`PhaseClock`]; the same strings
/// appear in `FiresReport::phase_times` and in JSON run reports.
pub(crate) mod phase {
    /// Uncontrollability fixpoint (paper Section 5.1).
    pub const IMPLICATION: &str = "implication";
    /// Unobservability fixpoint (paper Section 5.1).
    pub const UNOBSERVABILITY: &str = "unobservability";
    /// Fault-set assembly and Definition-6 validation (Section 5.2).
    pub const VALIDATION: &str = "validation";
}

/// Reusable per-worker scratch state for stem-granular runs: the shared
/// flip-flop-distance cache, the per-fault forced-line closures, and the
/// implication engines' allocation pool ([`EngineScratch`]). The caches
/// are circuit-static memoizations and the scratch is pure allocation
/// reuse — sharing one `StemCtx` across many [`Fires::run_stem`] calls
/// only changes speed, never results.
///
/// Not `Send` (the closures are `Rc`-shared); give each worker thread its
/// own. After catching a panic from `run_stem`, drop the context and start
/// a fresh one — a cache mid-mutation at unwind time must not be reused.
///
/// The context also carries the [`Budget`] applied to each
/// [`Fires::run_stem`] call (unlimited by default). Budgets bound *effort*,
/// not results: two runs of the same stem under the same budget produce
/// identical outcomes, cache and scratch reuse included.
///
/// Construct via [`StemCtx::new`] or, when setting fields, the builder:
///
/// ```
/// use fires_core::{Budget, StemCtx};
/// let ctx = StemCtx::builder()
///     .budget(Budget::unlimited().with_max_steps(10_000))
///     .build();
/// assert_eq!(ctx.budget().max_steps, Some(10_000));
/// ```
#[derive(Default)]
pub struct StemCtx {
    cache: DistCache,
    forced: ForcedCache,
    budget: Budget,
    scratch: EngineScratch,
}

impl StemCtx {
    /// Creates an empty context with an unlimited budget.
    pub fn new() -> Self {
        StemCtx::default()
    }

    /// Starts building a context field by field. Prefer this over
    /// positional constructors: new fields (like the engine scratch) get
    /// defaults without breaking existing call sites.
    pub fn builder() -> StemCtxBuilder {
        StemCtxBuilder::default()
    }

    /// Creates an empty context that applies `budget` to every
    /// [`Fires::run_stem`] call made through it.
    pub fn with_budget(budget: Budget) -> Self {
        StemCtx {
            budget,
            ..StemCtx::default()
        }
    }

    /// Replaces the per-stem budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The budget applied to each stem run through this context.
    pub fn budget(&self) -> Budget {
        self.budget
    }
}

/// Builder for [`StemCtx`]; see [`StemCtx::builder`].
#[derive(Default)]
pub struct StemCtxBuilder {
    budget: Budget,
    scratch: EngineScratch,
}

impl StemCtxBuilder {
    /// Sets the [`Budget`] applied to every stem run (default: unlimited).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Seeds the engine allocation pool, e.g. one reclaimed from another
    /// context (default: empty — allocations grow on first use).
    pub fn scratch(mut self, scratch: EngineScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Finishes the context.
    pub fn build(self) -> StemCtx {
        StemCtx {
            cache: DistCache::new(),
            forced: ForcedCache::default(),
            budget: self.budget,
            scratch: self.scratch,
        }
    }
}

/// Everything one stem's two implication processes produced: the unit of
/// work that `fires-jobs` schedules, journals and merges.
#[derive(Clone, Debug)]
pub struct StemFindings {
    /// The processed fanout stem.
    pub stem: LineId,
    /// Identified faults, one entry per fault (minimum `(c, frame)` for
    /// this stem), sorted by `(line, stuck)` — a deterministic function of
    /// (circuit, config, stem), independent of thread placement or cache
    /// reuse.
    pub faults: Vec<IdentifiedFault>,
    /// Fault-set memberships before per-fault dedup (the paper's `S_0 ∩
    /// S_1` hits; feeds `StemOutcome::faults_found`).
    pub faults_found: usize,
    /// Uncontrollability marks derived by the two processes.
    pub marks: usize,
    /// Frames spanned by the wider of the two processes.
    pub frames_used: usize,
    /// Metrics recorded while processing this stem (a no-op stub without
    /// the `tracing` feature).
    pub metrics: RunMetrics,
    /// Per-phase wall-clock breakdown for this stem.
    pub phase_times: PhaseTimes,
    /// `Some` when a [`Budget`] limit stopped this stem's implication work
    /// early. The faults above are then *partial and non-final*: sound
    /// indicators, but an incomplete fault-set intersection —
    /// [`Fires::assemble_report`] excludes them from the merged redundancy
    /// claims, and so must any other consumer (`fires-jobs` journals such
    /// units as `exhausted`).
    pub exhausted: Option<ExhaustionReason>,
    /// Per-rule hotspot attribution for this stem. Step counts, frame
    /// offsets and blame sizes are deterministic; the apportioned nanos
    /// and distance-cache hit counts depend on timing and cache sharing.
    /// Always empty without the `tracing` feature.
    pub profile: RuleProfile,
}

/// Per-stem statistics from a detailed run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StemStats {
    /// The processed stem.
    pub stem: LineId,
    /// Faults this stem's conflict identified (before global dedup).
    pub faults_found: usize,
    /// Uncontrollability marks derived by the two processes.
    pub marks: usize,
    /// Frames spanned by the wider of the two processes.
    pub frames_used: usize,
}

/// What [`Fires::run_stem`] produced for one stem: either complete
/// findings, or partial findings cut short by the [`Budget`] carried in
/// the [`StemCtx`]. Exhaustion is the graceful-degradation path — unlike
/// [`CoreError::Interrupted`] it is not an error, and unlike a plain
/// truncation the partial faults must not back redundancy claims.
#[derive(Clone, Debug)]
pub enum StemOutcome {
    /// The stem ran to fixpoint within budget; findings are final.
    Complete(StemFindings),
    /// A budget limit tripped. `partial` holds everything derived before
    /// the trip (already flagged via
    /// [`StemFindings::exhausted`]); sound but non-final.
    Exhausted {
        /// The partial findings (kept, flagged non-final).
        partial: StemFindings,
        /// Which limit tripped.
        reason: ExhaustionReason,
    },
}

impl StemOutcome {
    /// The findings, complete or partial.
    pub fn findings(&self) -> &StemFindings {
        match self {
            StemOutcome::Complete(f) => f,
            StemOutcome::Exhausted { partial, .. } => partial,
        }
    }

    /// Consumes the outcome, returning the findings (which still carry
    /// the exhaustion flag when partial).
    pub fn into_findings(self) -> StemFindings {
        match self {
            StemOutcome::Complete(f) => f,
            StemOutcome::Exhausted { partial, .. } => partial,
        }
    }

    /// `true` for [`StemOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, StemOutcome::Complete(_))
    }

    /// The tripped budget limit, if any.
    pub fn exhaustion(&self) -> Option<ExhaustionReason> {
        match self {
            StemOutcome::Complete(_) => None,
            StemOutcome::Exhausted { reason, .. } => Some(*reason),
        }
    }
}

/// The FIRES algorithm: fault-independent identification of c-cycle
/// sequential redundancies without search.
///
/// ```text
/// FIRES(T_M):
///   for every stem s:
///     sequentially imply s = 0̄  -> fault sets S_0^i
///     sequentially imply s = 1̄  -> fault sets S_1^i
///     every fault in S_0^i ∩ S_1^i is c_f-cycle redundant
/// ```
///
/// # Example
///
/// ```
/// use fires_core::{Fires, FiresConfig};
/// use fires_netlist::bench;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = bench::parse(
///     "INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n",
/// )?;
/// let report = Fires::new(&circuit, FiresConfig::default()).run();
/// // The paper's Example 2 fault (c1 s-a-1) is found as 1-cycle redundant.
/// let c1_sa1 = report
///     .redundant_faults()
///     .iter()
///     .find(|f| f.fault.display(report.lines(), &circuit) == "c->d.1 s-a-1")
///     .expect("Example 2 fault identified");
/// assert_eq!(c1_sa1.c, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fires<'c> {
    circuit: &'c Circuit,
    lines: LineGraph,
    config: FiresConfig,
}

/// Support info for one fault membership in a per-frame fault set.
#[derive(Clone, Copy, Debug)]
struct Support {
    /// Leftmost frame where uncontrollability must propagate.
    min_unc_frame: Frame,
}

impl<'c> Fires<'c> {
    /// Prepares a FIRES run over `circuit`.
    pub fn new(circuit: &'c Circuit, config: FiresConfig) -> Self {
        Fires {
            circuit,
            lines: LineGraph::build(circuit),
            config,
        }
    }

    /// Like [`new`](Self::new) but rejects degenerate configurations with
    /// a typed error instead of clamping them, so embedders that accept
    /// config from users (the `fires` CLI) can report mistakes properly.
    pub fn try_new(circuit: &'c Circuit, config: FiresConfig) -> Result<Self, CoreError> {
        config.check()?;
        Ok(Fires::new(circuit, config))
    }

    /// The line decomposition used by the run.
    pub fn lines(&self) -> &LineGraph {
        &self.lines
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The fanout stems this run processes, in the engine's canonical
    /// order (ascending node id; see
    /// [`LineGraph::fanout_stems`](fires_netlist::LineGraph::fanout_stems)).
    /// Stable across processes for a structurally identical circuit, which
    /// is what lets `fires-jobs` journal work units as indices into this
    /// sequence and resume them in another process.
    pub fn stems(&self) -> Vec<LineId> {
        self.lines.fanout_stems(self.circuit).collect()
    }

    /// Processes a single fanout stem: the resumable, cancellable,
    /// budget-bounded unit of work underlying campaign orchestration.
    ///
    /// The result is a deterministic function of (circuit, config, stem,
    /// [`StemCtx::budget`]): independent of which thread runs it, of `ctx`
    /// cache reuse, and of any other stem. `cancel` is polled at
    /// fixpoint-loop granularity; when it fires the partial work is
    /// discarded and [`CoreError::Interrupted`] is returned. A tripped
    /// budget, by contrast, is a success value: the partial findings come
    /// back in [`StemOutcome::Exhausted`], kept but flagged non-final.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotAFanoutStem`] if `stem` is not one of
    /// [`stems`](Self::stems); [`CoreError::Interrupted`] if `cancel`
    /// fired mid-run.
    pub fn run_stem(
        &self,
        stem: LineId,
        ctx: &mut StemCtx,
        cancel: &CancelToken,
    ) -> Result<StemOutcome, CoreError> {
        let is_fanout_stem = stem.index() < self.lines.num_lines() && {
            let line = self.lines.line(stem);
            line.is_stem() && !line.branches().is_empty()
        };
        if !is_fanout_stem {
            return Err(CoreError::NotAFanoutStem { line: stem });
        }
        let mut clock = PhaseClock::start();
        let mut metrics = RunMetrics::new();
        let mut best: HashMap<Fault, IdentifiedFault> = HashMap::new();
        let processed =
            self.process_stem(stem, ctx, &mut best, &mut metrics, &mut clock, cancel)?;
        let ProcessedStem {
            found,
            marks,
            frames,
            exhausted,
            profile,
        } = processed;
        let mut faults: Vec<IdentifiedFault> = best.into_values().collect();
        faults.sort_by_key(|f| (f.fault.line, f.fault.stuck));
        let findings = StemFindings {
            stem,
            faults,
            faults_found: found,
            marks,
            frames_used: frames,
            metrics,
            phase_times: clock.finish(),
            exhausted,
            profile,
        };
        Ok(match exhausted {
            None => StemOutcome::Complete(findings),
            Some(reason) => StemOutcome::Exhausted {
                partial: findings,
                reason,
            },
        })
    }

    /// Merges per-stem findings (from [`run_stem`](Self::run_stem), in any
    /// order and from any mix of fresh and replayed work) into a full
    /// [`FiresReport`]. The merge uses [`IdentifiedFault::wins_over`], so
    /// the identified-fault list is byte-identical however the findings
    /// were partitioned — the property `fires-jobs` builds on.
    ///
    /// Findings flagged [`exhausted`](StemFindings::exhausted) contribute
    /// their statistics (marks, frames, metrics) but **never** their
    /// faults: a budget-cut stem's fault sets are non-final and must not
    /// back the report's redundancy claims.
    pub fn assemble_report(&self, findings: Vec<StemFindings>) -> FiresReport<'c> {
        let mut clock = PhaseClock::start();
        let mut metrics = RunMetrics::new();
        let mut best: HashMap<Fault, IdentifiedFault> = HashMap::new();
        let mut marks_total = 0usize;
        let mut max_frames = 1usize;
        let stems_processed = findings.len();
        for f in findings {
            marks_total += f.marks;
            max_frames = max_frames.max(f.frames_used);
            metrics.merge(&f.metrics);
            for (name, d) in &f.phase_times.phases {
                clock.add(name, *d);
            }
            if f.exhausted.is_some() {
                metrics.incr("core.exhausted_stems", 1);
                continue; // partial fault sets never enter the claims
            }
            for cand in f.faults {
                merge_candidate(&mut best, cand);
            }
        }
        let mut identified: Vec<IdentifiedFault> = best.into_values().collect();
        identified.sort_by_key(|f| (f.fault.line, f.fault.stuck));
        metrics.incr("core.identified_faults", identified.len() as u64);
        metrics.set_max("core.max_frames_used", max_frames as u64);
        FiresReport {
            circuit: self.circuit,
            lines: self.lines.clone(),
            identified,
            validated: self.config.validate,
            stems_processed,
            marks_created: marks_total,
            max_frames_used: max_frames,
            metrics,
            phase_times: clock.finish(),
        }
    }

    /// Runs the algorithm over every fanout stem.
    pub fn run(&self) -> FiresReport<'c> {
        self.run_detailed().0
    }

    /// Runs the algorithm, additionally returning per-stem statistics.
    pub fn run_detailed(&self) -> (FiresReport<'c>, Vec<StemStats>) {
        let mut clock = PhaseClock::start();
        let mut metrics = RunMetrics::new();
        let mut ctx = StemCtx::new();
        let never = CancelToken::never();
        let mut best: HashMap<Fault, IdentifiedFault> = HashMap::new();
        let mut outcomes = Vec::new();
        let mut marks_total = 0usize;
        let mut max_frames = 1usize;
        let stems: Vec<LineId> = self.stems();
        for (done, &stem) in stems.iter().enumerate() {
            let ProcessedStem {
                found,
                marks,
                frames,
                ..
            } = self
                .process_stem(stem, &mut ctx, &mut best, &mut metrics, &mut clock, &never)
                .unwrap_or_else(|_| unreachable!("never-cancelled run cannot be interrupted"));
            marks_total += marks;
            max_frames = max_frames.max(frames);
            outcomes.push(StemStats {
                stem,
                faults_found: found,
                marks,
                frames_used: frames,
            });
            if let Some(hook) = self.config.progress {
                hook(ProgressEvent {
                    stems_done: done + 1,
                    stems_total: stems.len(),
                    stem,
                    faults_found: found,
                    marks,
                });
            }
        }
        let mut identified: Vec<IdentifiedFault> = best.into_values().collect();
        identified.sort_by_key(|f| (f.fault.line, f.fault.stuck));
        metrics.incr("core.identified_faults", identified.len() as u64);
        metrics.set_max("core.max_frames_used", max_frames as u64);
        let report = FiresReport {
            circuit: self.circuit,
            lines: self.lines.clone(),
            identified,
            validated: self.config.validate,
            stems_processed: stems.len(),
            marks_created: marks_total,
            max_frames_used: max_frames,
            metrics,
            phase_times: clock.finish(),
        };
        (report, outcomes)
    }

    /// Runs the algorithm with `threads` worker threads. Stems are
    /// independent, so the work partitions cleanly; the report is
    /// identical to [`run`](Self::run) (deterministic merge), typically at
    /// a near-linear speedup on large circuits.
    ///
    /// Observability notes: the per-phase durations in the report are
    /// summed across workers, so with `threads > 1` they measure
    /// aggregate compute time and may exceed the wall-clock total. The
    /// progress hook (if any) is invoked from worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_threaded(&self, threads: usize) -> FiresReport<'c> {
        use std::sync::atomic::{AtomicUsize, Ordering};

        assert!(threads >= 1, "need at least one worker");
        let clock = PhaseClock::start();
        let stems: Vec<LineId> = self.lines.fanout_stems(self.circuit).collect();
        let chunk = stems.len().div_ceil(threads).max(1);
        let done = AtomicUsize::new(0);
        type WorkerResult = (
            HashMap<Fault, IdentifiedFault>,
            usize,
            usize,
            RunMetrics,
            crate::instrument::PhaseTimes,
        );
        let results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = stems
                .chunks(chunk)
                .map(|part| {
                    let done = &done;
                    let stems_total = stems.len();
                    scope.spawn(move || {
                        let mut worker_clock = PhaseClock::start();
                        let mut worker_metrics = RunMetrics::new();
                        let mut ctx = StemCtx::new();
                        let never = CancelToken::never();
                        let mut best = HashMap::new();
                        let mut marks = 0usize;
                        let mut frames = 1usize;
                        for &stem in part {
                            let processed = self
                                .process_stem(
                                    stem,
                                    &mut ctx,
                                    &mut best,
                                    &mut worker_metrics,
                                    &mut worker_clock,
                                    &never,
                                )
                                .unwrap_or_else(|_| {
                                    unreachable!("never-cancelled run cannot be interrupted")
                                });
                            let (found, m) = (processed.found, processed.marks);
                            marks += m;
                            frames = frames.max(processed.frames);
                            if let Some(hook) = self.config.progress {
                                hook(ProgressEvent {
                                    stems_done: done.fetch_add(1, Ordering::Relaxed) + 1,
                                    stems_total,
                                    stem,
                                    faults_found: found,
                                    marks: m,
                                });
                            }
                        }
                        (best, marks, frames, worker_metrics, worker_clock.finish())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        let mut clock = clock;
        let mut metrics = RunMetrics::new();
        let mut best: HashMap<Fault, IdentifiedFault> = HashMap::new();
        let mut marks_total = 0usize;
        let mut max_frames = 1usize;
        for (part, marks, frames, worker_metrics, worker_times) in results {
            marks_total += marks;
            max_frames = max_frames.max(frames);
            metrics.merge(&worker_metrics);
            for (name, d) in &worker_times.phases {
                clock.add(name, *d);
            }
            for (_, cand) in part {
                merge_candidate(&mut best, cand);
            }
        }
        let mut identified: Vec<IdentifiedFault> = best.into_values().collect();
        identified.sort_by_key(|f| (f.fault.line, f.fault.stuck));
        metrics.incr("core.identified_faults", identified.len() as u64);
        metrics.set_max("core.max_frames_used", max_frames as u64);
        FiresReport {
            circuit: self.circuit,
            lines: self.lines.clone(),
            identified,
            validated: self.config.validate,
            stems_processed: stems.len(),
            marks_created: marks_total,
            max_frames_used: max_frames,
            metrics,
            phase_times: clock.finish(),
        }
    }

    /// Runs the two implication processes for one stem and returns them,
    /// for inspection (used to reproduce the paper's Table 1).
    pub fn analyze_stem(&self, stem: LineId) -> (Implications<'_>, Implications<'_>) {
        let mut p0 = Implications::new(self.circuit, &self.lines, self.config);
        p0.assume(stem, Unc::Zero);
        p0.propagate();
        let mut p1 = Implications::new(self.circuit, &self.lines, self.config);
        p1.assume(stem, Unc::One);
        p1.propagate();
        (p0, p1)
    }

    /// Renders an implication process for human inspection.
    pub fn trace(&self, imp: &Implications<'_>) -> ProcessTrace {
        let mut uncontrollable: Vec<(Frame, String, bool)> = imp
            .mark_ids()
            .map(|id| imp.mark(id))
            .filter(|m| !m.axiom)
            .map(|m| {
                (
                    m.frame,
                    self.lines.display_name(m.line, self.circuit),
                    m.unc.value(),
                )
            })
            .collect();
        uncontrollable.sort();
        uncontrollable.dedup();
        let mut unobservable: Vec<(Frame, String)> = imp
            .unobs_iter()
            .map(|(l, f, _)| (f, self.lines.display_name(l, self.circuit)))
            .collect();
        unobservable.sort();
        unobservable.dedup();
        ProcessTrace {
            uncontrollable,
            unobservable,
        }
    }

    /// Runs both implication processes for one stem and folds the
    /// identified faults into `best` via [`merge_candidate`]. Returns
    /// `(faults_found, marks, frames_used, exhausted, profile)`.
    ///
    /// Interruption discards all partial work for the stem: `best` is only
    /// updated on the `Ok` path, so a caller that maps
    /// [`CoreError::Interrupted`] to "unit timed out" never sees
    /// half-validated faults. Budget exhaustion is different: the partial
    /// faults *are* folded into `best` (the caller keeps and flags them),
    /// so callers that share one `best` across stems — the whole-run entry
    /// points — must run with an unlimited budget, which they do by
    /// constructing their own [`StemCtx`].
    #[allow(clippy::too_many_arguments)]
    fn process_stem(
        &self,
        stem: LineId,
        ctx: &mut StemCtx,
        best: &mut HashMap<Fault, IdentifiedFault>,
        metrics: &mut RunMetrics,
        clock: &mut PhaseClock,
        cancel: &CancelToken,
    ) -> Result<ProcessedStem, CoreError> {
        let _span = core_span!("core.stem", stem = stem.index());
        let interrupted = || CoreError::Interrupted { stem };
        // Upfront check so a token that fired before this unit started
        // (e.g. an already-expired deadline) trips deterministically even
        // on stems too small to reach the in-loop poll strides.
        if cancel.is_cancelled() {
            return Err(interrupted());
        }
        let stem_started = std::time::Instant::now();
        let cache_lookups_before = ctx.cache.lookup_stats();
        // One meter travels through all four fixpoints so the cumulative
        // limits (steps, wall clock) span the stem, exactly once.
        let mut meter = BudgetMeter::new(ctx.budget);
        clock.enter(phase::IMPLICATION);
        // Each process recycles its lane of the context's allocation pool;
        // the lanes are reclaimed on the Ok path below. On the error paths
        // the engines are dropped and the pool simply starts over empty —
        // correctness never depends on the reuse.
        let scratch0 = std::mem::take(&mut ctx.scratch.zero);
        let mut p0 = Implications::with_scratch(self.circuit, &self.lines, self.config, scratch0);
        p0.set_cancel(cancel.clone());
        p0.set_meter(meter);
        p0.assume(stem, Unc::Zero);
        p0.run_uncontrollability();
        meter = p0.take_meter();
        let scratch1 = std::mem::take(&mut ctx.scratch.one);
        let mut p1 = Implications::with_scratch(self.circuit, &self.lines, self.config, scratch1);
        p1.set_cancel(cancel.clone());
        p1.set_meter(meter);
        p1.assume(stem, Unc::One);
        p1.run_uncontrollability();
        meter = p1.take_meter();
        if p0.interrupted() || p1.interrupted() {
            clock.exit();
            return Err(interrupted());
        }
        clock.enter(phase::UNOBSERVABILITY);
        p0.set_meter(meter);
        p0.run_unobservability(&mut ctx.cache);
        meter = p0.take_meter();
        p1.set_meter(meter);
        p1.run_unobservability(&mut ctx.cache);
        meter = p1.take_meter();
        if p0.interrupted() || p1.interrupted() {
            clock.exit();
            return Err(interrupted());
        }
        // Exhaustion stops *derivation*; the assembly below is linear in
        // the (now bounded) derived indicators, so it always completes.
        let exhausted = p0.exhausted().or_else(|| p1.exhausted());

        clock.enter(phase::VALIDATION);
        let Some(s0) = self.collect_fault_sets(&p0, &mut ctx.forced, metrics, cancel) else {
            clock.exit();
            return Err(interrupted());
        };
        let Some(s1) = self.collect_fault_sets(&p1, &mut ctx.forced, metrics, cancel) else {
            clock.exit();
            return Err(interrupted());
        };

        let marks = p0.num_marks() + p1.num_marks();
        let frames = p0.window().len().max(p1.window().len());
        metrics.incr("core.stems_processed", 1);
        metrics.incr("core.marks_created", marks as u64);
        metrics.incr(
            "core.truncated_processes",
            u64::from(p0.truncated()) + u64::from(p1.truncated()),
        );
        metrics.incr("core.exhausted_stems", u64::from(exhausted.is_some()));
        metrics.observe("core.stem_marks", marks as u64);
        // Per-stem cost distributions: a handful of pathological stems
        // dominate wall-clock, and these histograms are how they show up
        // in reports. The inputs are counted unconditionally on the hot
        // path (one integer add each); the observations happen once per
        // stem and compile to no-ops when the `tracing` feature is off.
        metrics.observe("core.stem_steps", meter.steps());
        metrics.observe(
            "core.stem_queued",
            (p0.stats().enqueued + p1.stats().enqueued) as u64,
        );
        metrics.observe("core.stem_frames", frames as u64);
        for stats in [p0.stats(), p1.stats()] {
            metrics.incr(
                "core.blame_cap_rejections",
                stats.blame_cap_rejections as u64,
            );
            metrics.incr("core.window_extensions", stats.window_extensions as u64);
            metrics.incr("core.implications_enqueued", stats.enqueued as u64);
            metrics.set_max("core.max_queue_depth", stats.max_queue_depth as u64);
            metrics.set_max(
                "core.max_unobs_queue_depth",
                stats.max_unobs_queue_depth as u64,
            );
        }

        let mut found = 0usize;
        for (&(fault, frame), sup0) in &s0 {
            let Some(sup1) = s1.get(&(fault, frame)) else {
                continue;
            };
            let l = sup0.min_unc_frame.min(sup1.min_unc_frame);
            let c = if l < frame { (frame - l) as u32 } else { 0 };
            found += 1;
            // merge_candidate's total order makes the result independent
            // of this HashMap's iteration order.
            merge_candidate(
                best,
                IdentifiedFault {
                    fault,
                    c,
                    frame,
                    stem,
                },
            );
        }
        clock.exit();
        metrics.incr("core.faults_found", found as u64);
        let elapsed = stem_started.elapsed();
        metrics.observe("core.stem_micros", elapsed.as_micros() as u64);
        // Harvest the hotspot profile: merge the two processes' rule
        // tables, fold in this stem's share of distance-cache lookups, and
        // spread the stem's measured wall-clock across rules by step share
        // (no per-step timers ever run on the hot path). The deterministic
        // step counts also become `core.rule.*` counters so regression
        // gates can hold them; timing and cache rates stay profile-only.
        let mut profile = p0.take_profile();
        profile.merge(&p1.take_profile());
        let (hits, misses) = ctx.cache.lookup_stats();
        profile.add_dist_cache(
            hits - cache_lookups_before.0,
            misses - cache_lookups_before.1,
        );
        profile.apportion_nanos(elapsed.as_nanos() as u64);
        profile.export_counters(metrics);
        ctx.scratch.zero = p0.into_scratch();
        ctx.scratch.one = p1.into_scratch();
        Ok(ProcessedStem {
            found,
            marks,
            frames,
            exhausted,
            profile,
        })
    }

    /// Section 5.2: assemble the per-frame fault sets `S_v^i` from the
    /// process's indicators, applying validation if configured. Returns
    /// `None` if `cancel` fired mid-assembly.
    fn collect_fault_sets(
        &self,
        imp: &Implications<'_>,
        forced_cache: &mut ForcedCache,
        metrics: &mut RunMetrics,
        cancel: &CancelToken,
    ) -> Option<HashMap<(Fault, Frame), Support>> {
        let mut sets: HashMap<(Fault, Frame), Support> = HashMap::new();
        let mut validity = ValidityCache::default();
        let mut since_poll = 0u32;
        let add = |sets: &mut HashMap<(Fault, Frame), Support>,
                   fault: Fault,
                   frame: Frame,
                   sup: Support| {
            sets.entry((fault, frame))
                .and_modify(|e| e.min_unc_frame = e.min_unc_frame.max(sup.min_unc_frame))
                .or_insert(sup);
        };

        // Uncontrollable faults: a line that can never be v hosts an
        // unactivatable stuck-at: 0-bar -> s-a-1, 1-bar -> s-a-0.
        for id in imp.mark_ids() {
            since_poll += 1;
            if since_poll >= VALIDATION_POLL_STRIDE {
                since_poll = 0;
                if cancel.is_cancelled() {
                    return None;
                }
            }
            let m = imp.mark(id);
            let stuck = match m.unc {
                Unc::Zero => StuckValue::One,
                Unc::One => StuckValue::Zero,
            };
            let fault = Fault::new(m.line, stuck);
            if self.config.validate && !validity.valid(self, imp, forced_cache, fault, m.frame, id)
            {
                metrics.incr("core.validation_rejects", 1);
                continue;
            }
            metrics.incr("core.validation_accepts", 1);
            add(
                &mut sets,
                fault,
                m.frame,
                Support {
                    min_unc_frame: m.min_frame,
                },
            );
        }

        // Unobservable faults: both stuck values, provided every blame
        // indicator survives in the faulty circuit. Iterated in sorted
        // (line, frame) order — the engine yields frame-major order, and
        // the validity cache's sweep cap means iteration order could
        // otherwise decide *which* candidates are conservatively dropped
        // once the cap is hit. Sorting makes the fault sets a pure
        // function of the process, which the deterministic-merge
        // guarantee rests on.
        let mut unobs: Vec<(LineId, Frame, &[MarkId])> = imp.unobs_iter().collect();
        unobs.sort_unstable_by_key(|&(line, frame, _)| (line, frame));
        for (line, frame, blame) in unobs {
            since_poll += 1;
            if since_poll >= VALIDATION_POLL_STRIDE {
                since_poll = 0;
                if cancel.is_cancelled() {
                    return None;
                }
            }
            metrics.observe("core.blame_set_size", blame.len() as u64);
            for stuck in [StuckValue::Zero, StuckValue::One] {
                let fault = Fault::new(line, stuck);
                if self.config.validate
                    && !blame
                        .iter()
                        .all(|&b| validity.valid(self, imp, forced_cache, fault, frame, b))
                {
                    metrics.incr("core.validation_rejects", 1);
                    continue;
                }
                metrics.incr("core.validation_accepts", 1);
                let min_unc_frame = blame
                    .iter()
                    .map(|&b| imp.min_frame_of(b))
                    .min()
                    .unwrap_or(frame);
                add(&mut sets, fault, frame, Support { min_unc_frame });
            }
        }
        Some(sets)
    }

    /// The set of lines whose value the fault pins to a constant, found by
    /// closing over same-net copies, single-input gates, controlling-value
    /// domination and flip-flop crossings. Returns `None` when the closure
    /// exceeds the cap: validation then rejects the fault outright, which
    /// sacrifices completeness on pathological fanout but never soundness.
    fn forced_lines(&self, fault: Fault) -> Option<HashMap<LineId, [bool; 2]>> {
        const CAP: usize = 512;
        let mut forced: HashMap<LineId, [bool; 2]> = HashMap::new();
        let mut stack = vec![(fault.line, fault.stuck.as_bool())];
        while let Some((l, v)) = stack.pop() {
            if forced.len() >= CAP {
                return None;
            }
            let entry = forced.entry(l).or_default();
            if entry[v as usize] {
                continue;
            }
            entry[v as usize] = true;
            let line = self.lines.line(l);
            for &b in line.branches() {
                stack.push((b, v));
            }
            if let Some((sink, _)) = line.sink_pin() {
                let kind = self.circuit.node(sink).kind();
                let out = self.lines.stem_of(sink);
                match kind {
                    GateKind::Buf => stack.push((out, v)),
                    GateKind::Not => stack.push((out, !v)),
                    GateKind::Dff => stack.push((out, v)),
                    GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor
                        if Some(v) == kind.controlling_value() =>
                    {
                        stack.push((out, v ^ kind.is_inverting()));
                    }
                    _ => {}
                }
            }
        }
        Some(forced)
    }
}

/// Run-wide cache of per-fault forced-line closures (they are
/// circuit-static, so they can be shared across every stem and process).
/// `None` = the closure overflowed its cap and the fault must be rejected
/// conservatively.
#[derive(Default)]
struct ForcedCache {
    map: HashMap<Fault, Option<ForcedLines>>,
}

/// A fault's forced-line closure: each line maps to the value(s) the fault
/// pins it to.
type ForcedLines = std::rc::Rc<HashMap<LineId, [bool; 2]>>;

impl ForcedCache {
    fn get(&mut self, fires: &Fires<'_>, fault: Fault) -> Option<ForcedLines> {
        self.map
            .entry(fault)
            .or_insert_with(|| fires.forced_lines(fault).map(std::rc::Rc::new))
            .clone()
    }
}

/// Per-process memo of Definition-6 validity.
///
/// Two tiers: a cheap memoized check whether *any* indicator in the
/// process contradicts the fault (almost always "no", making every
/// derivation trivially valid), and — only when one exists — a single
/// linear sweep over the derivation-ordered marks propagating invalidity
/// from the contradicting marks to every descendant.
#[derive(Default)]
struct ValidityCache {
    has_bad: HashMap<Fault, bool>,
    invalid: HashMap<(Fault, Frame), std::rc::Rc<Vec<bool>>>,
    sweeps: usize,
}

/// Upper bound on full invalidity sweeps per process. A sweep costs
/// O(marks); on pathological processes where thousands of distinct faults
/// each contradict some indicator, capping keeps the run polynomial —
/// candidates beyond the cap are conservatively rejected.
const SWEEP_CAP: usize = 512;

impl ValidityCache {
    #[allow(clippy::too_many_arguments)]
    fn valid(
        &mut self,
        fires: &Fires<'_>,
        imp: &Implications<'_>,
        forced_cache: &mut ForcedCache,
        fault: Fault,
        ref_frame: Frame,
        root: MarkId,
    ) -> bool {
        let Some(forced0) = forced_cache.get(fires, fault) else {
            return false; // closure overflow: reject conservatively
        };
        let has_bad = match self.has_bad.get(&fault) {
            Some(&b) => b,
            None => {
                let b = !bad_marks(imp, &forced0, Frame::MIN).is_empty()
                    || !cut_edge_marks(fires, imp, fault).is_empty();
                self.has_bad.insert(fault, b);
                b
            }
        };
        if !has_bad {
            return true;
        }
        // Under the default AnyFrame policy validity does not depend on
        // the reference frame; collapse the key so the sweep runs once per
        // fault.
        let key_frame = match fires.config.validation_policy {
            ValidationPolicy::AnyFrame => Frame::MIN,
            ValidationPolicy::EarlierFrames => ref_frame,
        };
        if !self.invalid.contains_key(&(fault, key_frame)) {
            if self.sweeps >= SWEEP_CAP {
                return false; // conservative: drop the candidate
            }
            self.sweeps += 1;
            let mut bad = bad_marks(imp, &forced0, key_frame);
            // Derivation steps that cross the faulty line against the
            // signal flow are unsound regardless of frame policy.
            bad.extend(cut_edge_marks(fires, imp, fault));
            let mut invalid = vec![false; imp.num_marks()];
            for id in bad {
                invalid[id.index()] = true;
            }
            for i in 0..invalid.len() {
                if !invalid[i]
                    && imp
                        .mark(MarkId::from_index(i))
                        .parents
                        .iter()
                        .any(|p| invalid[p.index()])
                {
                    invalid[i] = true;
                }
            }
            self.invalid
                .insert((fault, key_frame), std::rc::Rc::new(invalid));
        }
        !self.invalid[&(fault, key_frame)][root.index()]
    }
}

/// Marks derived by an inference that *crosses the faulty line backwards*:
/// from a constraint on the faulty line `m` to a constraint on the logic
/// that drives `m`. The fault disconnects `m` from its driver (the
/// consumer side sees the stuck constant), so the driving gate's function
/// no longer relates the two — every such step is invalid in the faulty
/// circuit, whatever the values involved.
///
/// Concretely these are marks `X` with a parent on `m` where `X` sits on
/// `m`'s driver side: the stem of `m`'s driving node when `m` is a branch,
/// or the driver's input lines when `m` is a stem.
fn cut_edge_marks(fires: &Fires<'_>, imp: &Implications<'_>, fault: Fault) -> Vec<MarkId> {
    use fires_netlist::LineKind;
    let driver_side: Vec<LineId> = match fires.lines.line(fault.line).kind() {
        LineKind::Branch { node, .. } => vec![fires.lines.stem_of(node)],
        LineKind::Stem { node } => fires.lines.in_lines(node).to_vec(),
    };
    if driver_side.is_empty() {
        return Vec::new(); // primary input or constant: no driver side
    }
    let mut cut = Vec::new();
    let window = imp.window();
    for &line in &driver_side {
        for frame in window.leftmost()..=window.rightmost() {
            for unc in [Unc::Zero, Unc::One] {
                let Some(id) = imp.unc_mark(line, frame, unc) else {
                    continue;
                };
                if imp
                    .mark(id)
                    .parents
                    .iter()
                    .any(|p| imp.mark(*p).line == fault.line)
                {
                    cut.push(id);
                }
            }
        }
    }
    cut
}

/// The indicators the fault falsifies: marks claiming a line cannot take
/// the very value the fault pins it to. With `key_frame != Frame::MIN`
/// (EarlierFrames policy) only frames before the reference count.
fn bad_marks(
    imp: &Implications<'_>,
    forced: &HashMap<LineId, [bool; 2]>,
    key_frame: Frame,
) -> Vec<MarkId> {
    let mut bad: Vec<MarkId> = Vec::new();
    let window = imp.window();
    // Two equivalent strategies; pick the cheaper one for this process.
    if forced.len() * window.len() * 2 < imp.num_marks() {
        for (&line, flags) in forced {
            for v in [false, true] {
                if !flags[v as usize] {
                    continue;
                }
                for frame in window.leftmost()..=window.rightmost() {
                    if key_frame != Frame::MIN && frame >= key_frame {
                        continue;
                    }
                    if let Some(id) = imp.unc_mark(line, frame, Unc::cannot_be(v)) {
                        bad.push(id);
                    }
                }
            }
        }
    } else {
        for id in imp.mark_ids() {
            let m = imp.mark(id);
            if key_frame != Frame::MIN && m.frame >= key_frame {
                continue;
            }
            if let Some(flags) = forced.get(&m.line) {
                if flags[m.unc.value() as usize] {
                    bad.push(id);
                }
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use fires_netlist::bench;

    use super::*;

    #[test]
    fn figure3_identifies_the_branch_fault_as_one_cycle() {
        let circuit =
            bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
                .unwrap();
        let fires = Fires::new(&circuit, FiresConfig::default());
        let report = fires.run();
        let names = report.display_faults();
        assert!(
            names
                .iter()
                .any(|n| n.contains("s-a-1") && n.contains("(c = 1)")),
            "expected the 1-cycle redundant c1 s-a-1, got {names:?}"
        );
    }

    #[test]
    fn combinational_conflict_is_zero_cycle() {
        // Classic FIRE example: stem a fans out; z needs a=0 and a=1.
        //   n = NOT(a); z = AND(a, n)  => z s-a-1 requires the conflict.
        let circuit = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let report = Fires::new(&circuit, FiresConfig::default()).run();
        assert!(!report.is_empty());
        assert!(report.redundant_faults().iter().all(|f| f.c == 0));
        // z is constant 0, so z s-a-0 has no effect: it must be identified.
        let names = report.display_faults();
        assert!(names.iter().any(|n| n.starts_with("z s-a-0")), "{names:?}");
    }

    #[test]
    fn irredundant_circuit_yields_nothing() {
        let circuit =
            bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(y)\nz = AND(a, b)\ny = OR(a, b)\n")
                .unwrap();
        let report = Fires::new(&circuit, FiresConfig::default()).run();
        assert!(report.is_empty(), "{:?}", report.display_faults());
    }

    #[test]
    fn without_validation_superset_of_with() {
        let circuit =
            bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
                .unwrap();
        let with = Fires::new(&circuit, FiresConfig::default()).run();
        let without = Fires::new(&circuit, FiresConfig::default().without_validation()).run();
        assert!(without.len() >= with.len());
        let without_set: Vec<_> = without.redundant_faults().iter().map(|f| f.fault).collect();
        for f in with.redundant_faults() {
            assert!(without_set.contains(&f.fault));
        }
    }

    #[test]
    fn validation_cuts_backward_steps_through_the_fault_site() {
        // Regression: ff1 converges to 1 (g6 = ff1 | !ff1), so "g0 cannot
        // be 1" holds from cycle 1 onward — but g0 s-a-0 corrupts the very
        // feedback that forces the convergence (faulty ff1 holds its
        // power-up value forever), so the fault is NOT c-cycle redundant
        // for any c. The derivation that suggested otherwise inferred
        // constraints on ff1 *backwards through the faulted NOT gate*;
        // validation must reject it.
        let circuit = bench::parse(
            "INPUT(pi0)\nOUTPUT(f3_0_c)\nOUTPUT(po0)\nOUTPUT(po1)\n\
             ff1 = DFF(g6)\ng0 = NOT(ff1)\ng6 = OR(ff1, g0)\n\
             g8 = NOT(g0)\ng9 = NOT(g8)\nf3_0_b = DFF(k1)\n\
             f3_0_c = DFF(ff1)\nf3_0_d = AND(f3_0_b, f3_0_c)\n\
             po0 = OR(g0, f3_0_d)\npo1 = BUFF(g9)\nk1 = CONST1()\n",
        )
        .unwrap();
        let report = Fires::new(&circuit, FiresConfig::with_max_frames(5)).run();
        let names = report.display_faults();
        for bad in ["g0 s-a-0", "ff1->g0.0 s-a-1", "g0->g6.1 s-a-0"] {
            assert!(
                !names.iter().any(|n| n.starts_with(bad)),
                "unsound claim {bad} present: {names:?}"
            );
        }
        // The genuinely redundant neighbours must survive the cut.
        for good in ["g8 s-a-1", "g9 s-a-0", "po1 s-a-0"] {
            assert!(
                names.iter().any(|n| n.starts_with(good)),
                "over-rejection: {good} missing from {names:?}"
            );
        }
    }

    #[test]
    fn threaded_run_matches_serial() {
        let circuit = bench::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(d)\nOUTPUT(c)\nOUTPUT(z)\n\
             q = DFF(a)\nbq = DFF(a)\nc = DFF(a)\nd = AND(bq, c)\n\
             n = NOT(b)\nz = AND(b, n)\nw = OR(q, z)\nOUTPUT(w)\n",
        )
        .unwrap();
        let fires = Fires::new(&circuit, FiresConfig::default());
        let serial = fires.run();
        for threads in [1, 2, 4] {
            let parallel = fires.run_threaded(threads);
            assert_eq!(parallel.display_faults(), serial.display_faults());
            assert_eq!(parallel.stems_processed(), serial.stems_processed());
        }
    }

    #[test]
    fn report_statistics_are_populated() {
        let circuit = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let (report, outcomes) = Fires::new(&circuit, FiresConfig::default()).run_detailed();
        assert_eq!(report.stems_processed(), 1); // only stem `a` fans out
        assert_eq!(outcomes.len(), 1);
        assert!(report.marks_created() > 0);
        assert!(report.max_frames_used() >= 1);
        assert!(report.to_string().contains("FIRES"));
    }

    /// Runs under both `cargo test` and `cargo test --no-default-features`:
    /// the identified faults must not depend on whether instrumentation is
    /// compiled in.
    #[test]
    fn results_do_not_depend_on_instrumentation_feature() {
        let circuit =
            bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
                .unwrap();
        let report = Fires::new(&circuit, FiresConfig::default()).run();
        let names = report.display_faults();
        assert!(names
            .iter()
            .any(|n| n.contains("s-a-1") && n.contains("(c = 1)")));
        assert_eq!(report.stems_processed(), 2); // stems `a` and `c` fan out
                                                 // elapsed() always works; it is the phase clock's total.
        assert!(report.elapsed() > std::time::Duration::ZERO);
    }

    #[cfg(feature = "tracing")]
    #[test]
    fn metrics_agree_with_report_on_example2() {
        let circuit =
            bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
                .unwrap();
        let report = Fires::new(&circuit, FiresConfig::default()).run();
        let m = report.metrics();
        assert_eq!(
            m.counter("core.stems_processed"),
            report.stems_processed() as u64
        );
        assert_eq!(
            m.counter("core.marks_created"),
            report.marks_created() as u64
        );
        assert_eq!(m.counter("core.identified_faults"), report.len() as u64);
        assert_eq!(
            m.maximum("core.max_frames_used"),
            report.max_frames_used() as u64
        );
        assert!(m.counter("core.validation_accepts") > 0);
        assert!(m.maximum("core.max_queue_depth") > 0);
        let marks = m.histogram("core.stem_marks").expect("per-stem histogram");
        assert_eq!(marks.count(), report.stems_processed() as u64);
        assert_eq!(marks.sum(), report.marks_created() as u64);
        // Per-stem cost histograms: one observation per stem, each.
        let stems = report.stems_processed() as u64;
        for name in [
            "core.stem_steps",
            "core.stem_queued",
            "core.stem_frames",
            "core.stem_micros",
        ] {
            let h = m
                .histogram(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(h.count(), stems, "{name}");
        }
        // Steps are real queue pops even with no budget configured, and
        // every enqueued implication is eventually popped (or dropped at
        // trip time — not here, unlimited budget), so steps ≥ stems and
        // the enqueued counter matches the per-stem histogram's mass.
        assert!(m.histogram("core.stem_steps").unwrap().sum() > 0);
        assert_eq!(
            m.counter("core.implications_enqueued"),
            m.histogram("core.stem_queued").unwrap().sum()
        );
        // Phase breakdown: all three phases present, attribution within
        // the total (single clock, serial run).
        let pt = report.phase_times();
        for name in [
            phase::IMPLICATION,
            phase::UNOBSERVABILITY,
            phase::VALIDATION,
        ] {
            assert!(pt.phases.iter().any(|(n, _)| n == name), "{name} missing");
        }
        let named: std::time::Duration = pt.phases.iter().map(|(_, d)| *d).sum();
        assert!(named <= pt.total);
        assert_eq!(report.elapsed(), pt.total);
    }

    #[cfg(feature = "tracing")]
    #[test]
    fn profile_attributes_steps_to_named_rules() {
        use fires_obs::ALL_RULES;
        let circuit = bench::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(d)\nOUTPUT(c)\nOUTPUT(z)\nOUTPUT(x)\n\
             q = DFF(a)\nbq = DFF(a)\nc = DFF(a)\nd = AND(bq, c)\n\
             n = NOT(b)\nz = AND(b, n)\nw = OR(q, z)\nOUTPUT(w)\n\
             x = XOR(b, n)\n",
        )
        .unwrap();
        let fires = Fires::new(&circuit, FiresConfig::default());
        let never = CancelToken::never();
        let mut ctx = StemCtx::new();
        let mut merged = fires_obs::RuleProfile::new();
        for s in fires.stems() {
            let f = fires.run_stem(s, &mut ctx, &never).unwrap().into_findings();
            assert!(!f.profile.is_empty(), "stem profile must not be empty");
            // The exported gate counters are exactly the profile's
            // deterministic step counts, nothing else.
            for rule in ALL_RULES {
                assert_eq!(
                    f.metrics.counter(&format!("core.rule.{}", rule.name())),
                    f.profile.steps(rule),
                    "{}",
                    rule.name()
                );
            }
            assert_eq!(
                f.metrics.counter("core.rule.unattributed"),
                f.profile.unattributed_steps()
            );
            merged.merge(&f.profile);
        }
        let total = merged.total_steps();
        let attributed = merged.attributed_steps();
        assert!(total > 0, "no steps recorded");
        // The acceptance bar: at least 95% of recorded implication steps
        // land in named (rule, gate type, direction) buckets.
        assert!(
            attributed * 100 >= total * 95,
            "only {attributed}/{total} steps attributed"
        );
        // Apportioned wall-clock never exceeds what was measured, and the
        // folded export carries every nonzero bucket.
        assert!(merged.total_nanos() > 0 || merged.entries().count() == 0);
        let folded = merged.folded_lines("stems");
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded shape");
            assert!(stack.starts_with("stems;"), "{line}");
            assert!(count.parse::<u64>().is_ok(), "{line}");
        }
        assert!(folded.lines().count() >= merged.entries().count());
        // The hit rate is undefined until the stem-merge side condition
        // first probes the cache; when defined it is a proper ratio.
        if let Some(rate) = merged.dist_hit_rate() {
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[cfg(feature = "tracing")]
    #[test]
    fn run_report_round_trips_through_json() {
        let circuit = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let report = Fires::new(&circuit, FiresConfig::default()).run();
        let rr = report.run_report("fires-core/test", "fire-example");
        let text = rr.to_json_string();
        let back = fires_obs::RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, rr);
        assert_eq!(
            back.extra
                .get("identified_faults")
                .and_then(fires_obs::Json::as_u64),
            Some(report.len() as u64)
        );
    }

    #[test]
    fn run_stem_assembles_to_the_same_report_as_run() {
        let circuit = bench::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(d)\nOUTPUT(c)\nOUTPUT(z)\n\
             q = DFF(a)\nbq = DFF(a)\nc = DFF(a)\nd = AND(bq, c)\n\
             n = NOT(b)\nz = AND(b, n)\nw = OR(q, z)\nOUTPUT(w)\n",
        )
        .unwrap();
        let fires = Fires::new(&circuit, FiresConfig::default());
        let whole = fires.run();
        let never = CancelToken::never();
        // Stem-granular with a shared context, in canonical order.
        let mut ctx = StemCtx::new();
        let findings: Vec<StemFindings> = fires
            .stems()
            .into_iter()
            .map(|s| {
                let outcome = fires.run_stem(s, &mut ctx, &never).unwrap();
                assert!(outcome.is_complete(), "unlimited budget never exhausts");
                outcome.into_findings()
            })
            .collect();
        let report = fires.assemble_report(findings);
        assert_eq!(report.display_faults(), whole.display_faults());
        assert_eq!(report.stems_processed(), whole.stems_processed());
        assert_eq!(report.marks_created(), whole.marks_created());
        assert_eq!(report.max_frames_used(), whole.max_frames_used());
        // Reversed order, fresh context per stem: identical merged result.
        let reversed: Vec<StemFindings> = fires
            .stems()
            .into_iter()
            .rev()
            .map(|s| {
                fires
                    .run_stem(s, &mut StemCtx::new(), &never)
                    .unwrap()
                    .into_findings()
            })
            .collect();
        let report2 = fires.assemble_report(reversed);
        assert_eq!(report2.redundant_faults(), report.redundant_faults());
    }

    #[test]
    fn run_stem_rejects_non_fanout_stems() {
        let circuit = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let fires = Fires::new(&circuit, FiresConfig::default());
        let never = CancelToken::never();
        let mut ctx = StemCtx::new();
        // `z` does not fan out; out-of-range ids are rejected too.
        let z = fires.lines().stem_of(circuit.find("z").unwrap());
        assert!(matches!(
            fires.run_stem(z, &mut ctx, &never),
            Err(crate::CoreError::NotAFanoutStem { .. })
        ));
        let bogus = LineId::new(10_000);
        assert!(matches!(
            fires.run_stem(bogus, &mut ctx, &never),
            Err(crate::CoreError::NotAFanoutStem { .. })
        ));
    }

    #[test]
    fn cancelled_token_interrupts_run_stem() {
        let circuit = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let fires = Fires::new(&circuit, FiresConfig::default());
        let stem = fires.stems()[0];
        let token = CancelToken::new();
        token.cancel();
        match fires.run_stem(stem, &mut StemCtx::new(), &token) {
            Err(crate::CoreError::Interrupted { stem: s }) => assert_eq!(s, stem),
            other => panic!(
                "expected interruption, got {:?}",
                other.map(|o| o.into_findings().faults)
            ),
        }
    }

    #[test]
    fn tiny_budget_exhausts_a_stem_and_keeps_partials() {
        // The counter-style feedback circuit generates enough fixpoint
        // steps to blow a deliberately tiny step budget.
        let circuit = bench::parse(
            "INPUT(en)\nOUTPUT(po)\nq0 = DFF(t0)\nt0 = AND(q0, en)\n\
             n0 = NOT(q0)\nq1 = DFF(t1)\nt1 = AND(q1, n0)\npo = OR(q0, q1)\n",
        )
        .unwrap();
        let fires = Fires::new(&circuit, FiresConfig::with_max_frames(8));
        let stem = fires.stems()[0];
        let never = CancelToken::never();
        let mut ctx = StemCtx::with_budget(Budget::unlimited().with_max_steps(3));
        let outcome = fires.run_stem(stem, &mut ctx, &never).unwrap();
        let StemOutcome::Exhausted { partial, reason } = outcome else {
            panic!("3-step budget must exhaust this stem");
        };
        assert_eq!(reason, ExhaustionReason::Steps);
        assert_eq!(partial.exhausted, Some(ExhaustionReason::Steps));
        assert!(partial.marks >= 2, "the two assumptions survive");
        // Same budget, fresh context: identical partial outcome.
        let mut ctx2 = StemCtx::with_budget(Budget::unlimited().with_max_steps(3));
        let again = fires.run_stem(stem, &mut ctx2, &never).unwrap();
        assert_eq!(again.exhaustion(), Some(ExhaustionReason::Steps));
        assert_eq!(again.findings().marks, partial.marks);
        assert_eq!(again.findings().faults, partial.faults);
        // A generous budget completes and reports no exhaustion.
        let mut ctx3 = StemCtx::with_budget(Budget::unlimited().with_max_steps(1_000_000));
        assert!(fires
            .run_stem(stem, &mut ctx3, &never)
            .unwrap()
            .is_complete());
    }

    #[test]
    fn exhausted_findings_never_contribute_to_the_report() {
        let circuit = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let fires = Fires::new(&circuit, FiresConfig::default());
        let never = CancelToken::never();
        let stem = fires.stems()[0];
        let complete = fires
            .run_stem(stem, &mut StemCtx::new(), &never)
            .unwrap()
            .into_findings();
        assert!(!complete.faults.is_empty(), "test needs identified faults");
        // Forge an exhausted copy of the same findings: the merge must
        // drop its faults but keep its statistics.
        let mut partial = complete.clone();
        partial.exhausted = Some(ExhaustionReason::Steps);
        let report = fires.assemble_report(vec![partial]);
        assert!(report.is_empty(), "{:?}", report.display_faults());
        assert_eq!(report.stems_processed(), 1);
        assert_eq!(report.marks_created(), complete.marks);
        // The complete findings still merge as before.
        let report = fires.assemble_report(vec![complete.clone()]);
        assert_eq!(report.len(), complete.faults.len());
    }

    #[test]
    fn try_new_rejects_bad_config() {
        let circuit = bench::parse("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n").unwrap();
        assert!(Fires::try_new(&circuit, FiresConfig::default()).is_ok());
        assert!(matches!(
            Fires::try_new(&circuit, FiresConfig::with_max_frames(0)),
            Err(crate::CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn progress_hook_fires_once_per_stem() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        static LAST_TOTAL: AtomicUsize = AtomicUsize::new(0);
        fn hook(e: ProgressEvent) {
            CALLS.fetch_add(1, Ordering::Relaxed);
            LAST_TOTAL.store(e.stems_total, Ordering::Relaxed);
            assert!(e.stems_done >= 1 && e.stems_done <= e.stems_total);
        }
        let circuit = bench::parse(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(w)\nn = NOT(a)\nz = AND(a, n)\n\
             m = NOT(b)\nw = AND(b, m)\n",
        )
        .unwrap();
        let config = FiresConfig::default().with_progress(hook);
        let fires = Fires::new(&circuit, config);
        let serial = fires.run();
        let serial_calls = CALLS.swap(0, Ordering::Relaxed);
        assert_eq!(serial_calls, serial.stems_processed());
        assert_eq!(LAST_TOTAL.load(Ordering::Relaxed), serial.stems_processed());
        // Threaded runs call the hook from workers, same count.
        let threaded = fires.run_threaded(2);
        assert_eq!(CALLS.swap(0, Ordering::Relaxed), threaded.stems_processed());
    }
}
