//! The combinational FIRE algorithm (paper Section 2) as a special case of
//! FIRES with a single time frame.

use fires_netlist::{Circuit, Fault};

use crate::{Fires, FiresConfig};

/// Result of a combinational FIRE run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FireReport {
    /// Faults that require a conflict for detection and are therefore
    /// combinationally redundant.
    pub redundant: Vec<Fault>,
}

impl FireReport {
    /// Number of redundant faults found.
    pub fn len(&self) -> usize {
        self.redundant.len()
    }

    /// Whether nothing was found.
    pub fn is_empty(&self) -> bool {
        self.redundant.is_empty()
    }
}

/// Runs combinational FIRE: for every fanout stem `s`, faults needing both
/// `s = 0` and `s = 1` for detection are redundant.
///
/// For a combinational circuit this is the original FIRE algorithm of
/// Iyer/Abramovici; for a sequential circuit it restricts FIRES to a single
/// time frame (indicators never cross flip-flops), so every reported fault
/// is a conventional (0-cycle) redundancy.
///
/// # Example
///
/// ```
/// use fires_core::fire;
/// use fires_netlist::bench;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // z = AND(a, NOT(a)) is constant 0; its s-a-1 needs a = 0 and a = 1.
/// let c = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n")?;
/// let report = fire(&c);
/// assert!(!report.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn fire(circuit: &Circuit) -> FireReport {
    let config = FiresConfig {
        max_frames: 1,
        ..FiresConfig::default()
    };
    let report = Fires::new(circuit, config).run();
    debug_assert!(report.redundant_faults().iter().all(|f| f.c == 0));
    FireReport {
        redundant: report.redundant_faults().iter().map(|f| f.fault).collect(),
    }
}

#[cfg(test)]
mod tests {
    use fires_netlist::bench;

    use super::*;

    #[test]
    fn finds_classic_reconvergence_redundancy() {
        // The textbook FIRE circuit: a fans out into complementary paths
        // that reconverge; the AND output can never be 1.
        let c = bench::parse("INPUT(a)\nOUTPUT(z)\nn = NOT(a)\nz = AND(a, n)\n").unwrap();
        let r = fire(&c);
        assert!(!r.is_empty());
    }

    #[test]
    fn irredundant_adder_bit_is_clean() {
        let c = bench::parse(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             s = XOR(a, b, cin)\n\
             ab = AND(a, b)\nac = AND(a, cin)\nbc = AND(b, cin)\n\
             cout = OR(ab, ac, bc)\n",
        )
        .unwrap();
        let r = fire(&c);
        assert!(r.is_empty(), "{:?}", r.redundant);
    }

    #[test]
    fn sequential_circuit_is_restricted_to_one_frame() {
        // The Figure-3 fault needs two frames; single-frame FIRE misses it.
        let c =
            bench::parse("INPUT(a)\nOUTPUT(d)\nOUTPUT(c)\nb = DFF(a)\nc = DFF(a)\nd = AND(b, c)\n")
                .unwrap();
        let r = fire(&c);
        assert!(r.is_empty());
    }
}
