//! The combinational-envelope comparators the paper positions FIRES
//! against (Section 1 and Example 3).
//!
//! FUNTEST (reference \[19\]) lifts combinational FIRE to sequential
//! circuits through the *single-fault theorem* of Agrawal/Chakradhar
//! (\[8\]\[9\]): a fault that is combinationally untestable in the model where
//! every flip-flop output is a free pseudo-input and every flip-flop data
//! pin a pseudo-output is sequentially untestable. [`funtest_like`]
//! implements exactly that: combinational FIRE on the
//! [`full_scan`](fires_netlist::transform::full_scan) envelope.
//!
//! Example 3 of the paper shows why FIRES subsumes this approach: of the
//! seven c-cycle redundancies FIRES finds in the Figure-7 circuit, FUNTEST
//! reports only one, because implications that cross time frames (and the
//! unobservability that flows backwards through flip-flops) are invisible
//! in the single-frame envelope.

use fires_netlist::{transform, Circuit, Fault, LineGraph, NetlistError};

use crate::{Fires, FiresConfig};

/// Faults found untestable by the envelope analysis, reported as
/// display-name strings of the *envelope* circuit (the envelope has its
/// own line numbering, but names are preserved by the transform, so names
/// are the stable cross-model currency).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnvelopeReport {
    /// `(display name, fault)` pairs over the envelope circuit.
    pub untestable: Vec<(String, Fault)>,
}

impl EnvelopeReport {
    /// Number of faults identified.
    pub fn len(&self) -> usize {
        self.untestable.len()
    }

    /// Whether nothing was identified.
    pub fn is_empty(&self) -> bool {
        self.untestable.is_empty()
    }

    /// Whether a fault with the given envelope display name was found.
    pub fn contains_name(&self, name: &str) -> bool {
        self.untestable.iter().any(|(n, _)| n == name)
    }
}

/// FUNTEST-style sequential untestability identification: combinational
/// FIRE over the full-scan envelope. Every reported fault is sequentially
/// untestable in the original circuit (single-fault theorem), but — unlike
/// FIRES' validated output — not necessarily redundant.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the envelope construction.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fires_netlist::NetlistError> {
/// // Figure 3: the envelope makes b and c independently controllable, so
/// // the conflict disappears and FUNTEST finds nothing — while FIRES
/// // identifies the 1-cycle redundancy.
/// let circuit = fires_circuits::figures::figure3();
/// let env = fires_core::funtest_like(&circuit)?;
/// assert!(env.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn funtest_like(circuit: &Circuit) -> Result<EnvelopeReport, NetlistError> {
    let envelope = transform::full_scan(circuit)?;
    let config = FiresConfig {
        max_frames: 1,
        ..FiresConfig::default()
    };
    let fires = Fires::new(&envelope, config);
    let report = fires.run();
    let lines = LineGraph::build(&envelope);
    Ok(EnvelopeReport {
        untestable: report
            .redundant_faults()
            .iter()
            .map(|f| (f.fault.display(&lines, &envelope), f.fault))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fires_netlist::bench;

    #[test]
    fn envelope_misses_figure3_but_fires_does_not() {
        let circuit = fires_circuits::figures::figure3();
        let env = funtest_like(&circuit).unwrap();
        assert!(env.is_empty(), "{:?}", env.untestable);
        let fires = Fires::new(&circuit, FiresConfig::default()).run();
        assert!(!fires.is_empty());
    }

    #[test]
    fn envelope_finds_combinational_redundancy() {
        // A purely combinational conflict survives the transform.
        let circuit =
            bench::parse("INPUT(a)\nOUTPUT(z)\nq = DFF(a)\nn = NOT(q)\nz = AND(q, n)\n").unwrap();
        let env = funtest_like(&circuit).unwrap();
        assert!(env.contains_name("z s-a-0"), "{:?}", env.untestable);
    }

    #[test]
    fn fires_subsumes_envelope_on_figure7() {
        // Example 3's comparison: FIRES finds strictly more.
        let circuit = fires_circuits::figures::figure7();
        let env = funtest_like(&circuit).unwrap();
        let fires = Fires::new(&circuit, FiresConfig::with_max_frames(3)).run();
        assert!(
            fires.len() > env.len(),
            "FIRES {} vs envelope {}",
            fires.len(),
            env.len()
        );
    }
}
